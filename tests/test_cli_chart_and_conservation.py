"""CLI chart flag and discrete-event conservation invariants."""

from __future__ import annotations

import pytest

from repro.baselines import warehouse_router
from repro.core.value import DiscountRates
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.workload.query import DSSQuery


class TestChartFlag:
    def test_load_with_chart_renders_bars(self, capsys, monkeypatch):
        from repro.experiments import cli
        from repro.experiments.config import TpchSetup
        from repro.experiments.load import LoadConfig, run_load_sweep

        def small_sweep():
            return run_load_sweep(
                LoadConfig(
                    setup=TpchSetup(scale=0.0005, seed=7),
                    interarrival_means=(2.0, 10.0),
                    approaches=("ivqp", "warehouse"),
                    rounds=1,
                )
            )

        monkeypatch.setitem(cli.EXPERIMENTS, "load", lambda: [small_sweep()])
        assert cli.main(["load", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "interarrival_min = " in out
        assert "|#" in out  # at least one bar rendered

    def test_chart_flag_ignored_for_non_text_formats(self, capsys):
        from repro.experiments import cli

        assert cli.main(["fig4", "--format", "csv", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "|#" not in out


class TestConservation:
    def test_local_server_busy_time_fits_in_makespan(self):
        """With capacity c, total local processing <= c x makespan."""
        capacity = 2
        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=10_000)],
            replicated=["a"],
            sync_mode="periodic",
            sync_mean_interval=3.0,
            rates=DiscountRates(0.05, 0.05),
            local_capacity=capacity,
            seed=9,
        )
        system = build_system(config, warehouse_router)
        for index in range(12):
            system.submit(
                DSSQuery(
                    query_id=index + 1, name=f"q{index}", tables=("a",),
                    base_work=15_000.0,
                ),
                at=1.0 + 0.1 * index,
            )
        system.run()
        outcomes = system.outcomes
        assert len(outcomes) == 12
        busy = sum(o.plan.cost.local_minutes for o in outcomes)
        makespan = max(o.completed_at for o in outcomes) - 1.0
        assert busy <= capacity * makespan + 1e-6

    def test_every_submission_produces_exactly_one_outcome(self):
        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=1_000)],
            replicated=["a"],
            rates=DiscountRates(0.01, 0.01),
        )
        system = build_system(config, warehouse_router)
        for index in range(7):
            system.submit(
                DSSQuery(query_id=index + 1, name=f"q{index}", tables=("a",)),
                at=float(index + 1),
            )
        system.run()
        names = sorted(o.query.name for o in system.outcomes)
        assert names == sorted(f"q{i}" for i in range(7))

    def test_queue_wait_is_nonnegative_everywhere(self):
        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=30_000)],
            replicated=["a"],
            rates=DiscountRates(0.05, 0.05),
            local_capacity=1,
            seed=2,
        )
        system = build_system(config, warehouse_router)
        for index in range(6):
            system.submit(
                DSSQuery(query_id=index + 1, name=f"q{index}", tables=("a",)),
                at=1.0,
            )
        system.run()
        assert all(o.queue_wait >= 0.0 for o in system.outcomes)
        # Somebody actually queued in this pile-up.
        assert max(o.queue_wait for o in system.outcomes) > 0.0
