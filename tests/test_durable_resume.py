"""Crash/resume equivalence: the durable layer's headline contract.

A journaled run killed at an arbitrary byte offset and resumed from disk
must finish with a decision log and IV ledger **bit-equal** to a run that
was never interrupted.  These tests drive the harness across crash
points, with and without snapshots, audit journals through both recovery
paths, and pin the committed golden journal fixture so schema drift is a
visible diff.

To regenerate the golden fixture after an *intentional* schema change
(bump ``SCHEMA_VERSION`` first)::

    PYTHONPATH=src python - <<'EOF'
    from tests.test_durable_resume import golden_scheduler, golden_workload
    from repro.durable import journaled_run
    journaled_run(golden_scheduler(), golden_workload(),
                  'tests/golden/durable.journal', snapshot_every=4)
    EOF
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.value import DiscountRates
from repro.durable import (
    SCHEMA_VERSION,
    crash_and_resume,
    journaled_run,
    read_journal,
    recover,
    runs_equivalent,
    verify_journal,
)
from repro.durable.journal import JournalWriter, encode_record
from repro.errors import DurabilityError
from repro.federation.costmodel import CostModel, CostParameters
from repro.mqo.ga import GAConfig
from repro.mqo.online import OnlineConfig, OnlineMQOScheduler
from repro.workload.query import DSSQuery, Workload

from tests.test_mqo_scheduling import build_catalog

GOLDEN = pathlib.Path(__file__).parent / "golden" / "durable.journal"


def golden_scheduler(generations: int = 4, seed: int = 7) -> OnlineMQOScheduler:
    """A fresh, deterministically-configured scheduler (one per recovery)."""
    catalog = build_catalog()
    return OnlineMQOScheduler(
        catalog,
        CostModel(catalog, params=CostParameters()),
        DiscountRates.symmetric(0.1),
        ga_config=GAConfig(generations=generations),
        seed=seed,
        config=OnlineConfig(window=1.0, max_pending=3, iv_floor=0.0),
    )


def golden_workload(count: int = 5) -> Workload:
    """Serializable (base-work) queries arriving in a tight burst."""
    workload = Workload()
    for index in range(count):
        tables = tuple(f"t{(index + j) % 6}" for j in range(3))
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}", tables=tables,
                base_work=8_000.0, business_value=1.0 + 0.5 * index,
            ),
            arrival=1.0 + 0.4 * index,
        )
    return workload


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted journaled run, shared across the module."""
    path = tmp_path_factory.mktemp("durable") / "reference.journal"
    run = journaled_run(golden_scheduler(), golden_workload(), path)
    return run, path


class TestJournaledRun:
    def test_reference_journal_is_clean_and_verifiable(self, reference):
        run, path = reference
        records = read_journal(path)
        kinds = [payload["kind"] for payload, _ in records]
        assert kinds[0] == "header"
        assert records[0][0]["schema"] == SCHEMA_VERSION
        assert kinds.count("arrival") == 5
        assert kinds.count("pop") == run.pops
        assert kinds.count("ledger") == len(run.ledgers)
        report = verify_journal(path, golden_scheduler)
        assert report["ok"], report["mismatches"]

    def test_recovery_of_a_complete_journal_matches_the_run(self, reference):
        run, path = reference
        recovered = recover(path, golden_scheduler())
        assert recovered.session.decisions == run.session.decisions
        assert [e.to_dict() for e in recovered.ledgers] == [
            e.to_dict() for e in run.ledgers
        ]
        assert not recovered.clock  # nothing left to pop

    def test_every_ledger_entry_recomputes_bit_equal(self, reference):
        run, _ = reference
        assert run.ledgers
        for entry in run.ledgers:
            assert entry.recompute_iv() == entry.reported_iv


class TestCrashAndResume:
    @pytest.mark.parametrize("fraction", [0.15, 0.4, 0.65, 0.9, 0.99])
    @pytest.mark.parametrize("snapshot_every", [0, 3])
    def test_kill_at_byte_offset_resumes_bit_equal(
        self, reference, tmp_path, fraction, snapshot_every
    ):
        run, path = reference
        size = path.stat().st_size
        resumed = crash_and_resume(
            golden_scheduler,
            golden_workload(),
            tmp_path / "crash.journal",
            crash_after_bytes=int(size * fraction),
            snapshot_every=snapshot_every,
        )
        report = runs_equivalent(run, resumed)
        assert report["equal"], report["differences"]
        assert resumed.resumed_at_pops is not None

    def test_crash_beyond_the_journal_runs_uninterrupted(
        self, reference, tmp_path
    ):
        run, path = reference
        resumed = crash_and_resume(
            golden_scheduler,
            golden_workload(),
            tmp_path / "crash.journal",
            crash_after_bytes=path.stat().st_size * 3,
        )
        assert resumed.resumed_at_pops is None
        assert runs_equivalent(run, resumed)["equal"]

    def test_resumed_journal_is_itself_verifiable(self, reference, tmp_path):
        # Crash-during-resume composes by induction: the continuation
        # journals too, so the merged journal must audit clean.
        run, path = reference
        crash_path = tmp_path / "crash.journal"
        crash_and_resume(
            golden_scheduler, golden_workload(), crash_path,
            crash_after_bytes=path.stat().st_size // 2,
            snapshot_every=3,
        )
        report = verify_journal(crash_path, golden_scheduler)
        assert report["ok"], report["mismatches"]

    def test_double_crash_still_converges(self, reference, tmp_path):
        run, path = reference
        crash_path = tmp_path / "crash.journal"
        size = path.stat().st_size
        # First crash + journaled resume...
        first = crash_and_resume(
            golden_scheduler, golden_workload(), crash_path,
            crash_after_bytes=size // 3,
        )
        # ...then tear the *resumed* journal and recover again.
        data = crash_path.read_bytes()
        crash_path.write_bytes(data[: len(data) - 7])
        recovered = recover(crash_path, golden_scheduler())
        writer = JournalWriter(crash_path, truncate_to=recovered.valid_bytes)
        from repro.durable import resume_run

        second = resume_run(recovered, writer)
        assert runs_equivalent(run, second)["equal"]


class TestRecoveryAudit:
    def test_tampered_decision_record_is_rejected_at_its_offset(
        self, reference, tmp_path
    ):
        _, path = reference
        records = read_journal(path)
        forged = tmp_path / "forged.journal"
        with open(forged, "wb") as handle:
            tampered_offset = None
            for payload, _ in records:
                if payload["kind"] == "decision" and tampered_offset is None:
                    payload = {
                        "kind": "decision",
                        "entry": ["shed", 999, 0.0],
                    }
                    tampered_offset = handle.tell()
                handle.write(encode_record(payload))
        assert tampered_offset is not None
        with pytest.raises(DurabilityError) as error:
            recover(forged, golden_scheduler())
        assert error.value.offset == tampered_offset

    def test_wrong_scheduler_config_cannot_silently_recover(
        self, reference
    ):
        # A scheduler with a different admission policy diverges from the
        # journal; the per-record audit must catch it (naming the record's
        # offset) rather than resume into a state the crashed run never
        # had.
        _, path = reference
        catalog = build_catalog()
        misconfigured = OnlineMQOScheduler(
            catalog,
            CostModel(catalog, params=CostParameters()),
            DiscountRates.symmetric(0.1),
            ga_config=GAConfig(generations=4),
            seed=7,
            config=OnlineConfig(window=1.0, max_pending=1, iv_floor=0.0),
        )
        with pytest.raises(DurabilityError) as error:
            recover(path, misconfigured)
        assert error.value.offset is not None

    def test_journal_without_header_is_rejected(self, tmp_path):
        path = tmp_path / "headless.journal"
        with open(path, "wb") as handle:
            handle.write(encode_record({"kind": "pop", "time": 0.0,
                                        "tag": "arrival", "payload": 1}))
        with pytest.raises(DurabilityError):
            recover(path, golden_scheduler())

    def test_unsupported_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.journal"
        with open(path, "wb") as handle:
            handle.write(encode_record(
                {"kind": "header", "schema": SCHEMA_VERSION + 1, "meta": {}}
            ))
        with pytest.raises(DurabilityError) as error:
            recover(path, golden_scheduler())
        assert "schema" in str(error.value)


class TestGoldenJournal:
    """The committed fixture pins schema v1's on-disk shape.

    Byte-exact comparison is impossible — window records and snapshots
    carry wall-clock ``reopt_seconds`` — so the pin is structural: the
    record-kind sequence, the full decision log and every ledger entry
    must recover exactly, through both recovery paths.
    """

    def test_golden_journal_parses_and_pins_the_schema(self):
        records = read_journal(GOLDEN)
        assert records[0][0]["kind"] == "header"
        assert records[0][0]["schema"] == SCHEMA_VERSION == 1
        kinds = {payload["kind"] for payload, _ in records}
        assert kinds == {
            "header", "arrival", "pop", "decision", "window", "ledger",
            "snapshot",
        }

    def test_golden_journal_recovers_and_verifies(self):
        report = verify_journal(GOLDEN, golden_scheduler)
        assert report["ok"], report["mismatches"]
        assert report["arrivals"] == 5
        assert report["snapshot_pops"] > 0
        assert report["tail_error"] is None

    def test_golden_journal_reproduces_todays_run(self):
        # The scheduler of record, run today, must still make the exact
        # decisions the fixture froze — GA determinism across versions.
        recovered = recover(GOLDEN, golden_scheduler())
        fresh = journaled_run(
            golden_scheduler(), golden_workload(),
            GOLDEN.parent / "_scratch.journal",
        )
        try:
            assert recovered.session.decisions == fresh.session.decisions
            assert [e.to_dict() for e in recovered.ledgers] == [
                e.to_dict() for e in fresh.ledgers
            ]
        finally:
            (GOLDEN.parent / "_scratch.journal").unlink()
