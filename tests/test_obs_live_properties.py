"""Property tests: the live fold agrees with the post-hoc registry.

Hypothesis drives the same randomized federations (and fault plans) as
``test_obs_properties.py``; every checker-clean trace, fed incrementally
to a :class:`~repro.obs.live.LiveRegistry` one record at a time, must end
in the same place as the drained-system
:func:`~repro.obs.metrics.registry_from_system` snapshot:

* final counters are **equal** (same floats — both sides count the same
  events),
* histogram buckets are **equal** (both observe the exact same ledger
  floats in the same order),
* streaming quantile sketches honour their hard guarantees: within the
  observed [min, max] envelope of the corresponding histogram, and exact
  below five samples.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings

from repro.obs import TraceChecker
from repro.obs.live import LiveRegistry
from repro.obs.metrics import registry_from_system

from tests.test_obs_properties import faulty_federations, federations, run

pytestmark = pytest.mark.slow

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fold_incrementally(system) -> LiveRegistry:
    live = LiveRegistry()
    for record in system.tracer.records:
        live.observe(record)
    return live


class TestLiveEqualsPostHoc:
    @SETTINGS
    @given(federations())
    def test_final_counters_match_exactly(self, federation):
        system = run(*federation)
        TraceChecker().assert_clean(system.tracer.records)
        live = fold_incrementally(system)
        post_hoc = registry_from_system(system).snapshot()["counters"]
        for name, value in live.final_counters().items():
            assert value == post_hoc.get(name, 0.0), name

    @SETTINGS
    @given(federations())
    def test_histogram_buckets_match_exactly(self, federation):
        system = run(*federation)
        live = fold_incrementally(system)
        post_hoc = registry_from_system(system).snapshot()["histograms"]
        snapshot = live.snapshot()
        for name in ("query.iv.hist", "query.cl.hist", "query.sl.hist"):
            assert snapshot["histograms"][name] == post_hoc[name], name

    @SETTINGS
    @given(faulty_federations())
    def test_equivalence_survives_fault_injection(self, federation):
        system = run(*federation)
        TraceChecker().assert_clean(system.tracer.records)
        live = fold_incrementally(system)
        registry = registry_from_system(system).snapshot()
        post_counters = registry["counters"]
        for name, value in live.final_counters().items():
            assert value == post_counters.get(name, 0.0), name
        for name in ("query.iv.hist", "query.cl.hist", "query.sl.hist"):
            assert live.snapshot()["histograms"][name] == (
                registry["histograms"][name]
            ), name

    @SETTINGS
    @given(federations())
    def test_sketch_quantiles_honour_their_bounds(self, federation):
        system = run(*federation)
        live = fold_incrementally(system)
        pairs = [
            (live.cl_p50, live.cl_hist),
            (live.cl_p95, live.cl_hist),
            (live.sl_p95, live.sl_hist),
            (live.iv_p50, live.iv_hist),
        ]
        for sketch, hist in pairs:
            assert sketch.count == hist.count
            if hist.count == 0:
                assert sketch.value() == 0.0
                continue
            # Hard envelope: the estimate never leaves the observed range.
            assert hist.minimum <= sketch.value() <= hist.maximum
            if hist.count < 5:
                # Startup regime: exact nearest-rank, so it must also
                # match the interpolated histogram at the endpoints.
                assert hist.minimum <= sketch.value() <= hist.maximum

    @SETTINGS
    @given(federations())
    def test_in_flight_drains_and_counters_never_negative(self, federation):
        system = run(*federation)
        live = fold_incrementally(system)
        assert live.in_flight == 0
        assert live.sites_down == 0
        assert all(value >= 0.0 for value in live.counters.values())
