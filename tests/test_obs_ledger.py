"""Unit tests: the IV audit ledger (recomputation, provenance, serialization)."""

from __future__ import annotations

import json

from repro.core.value import DiscountRates, information_value
from repro.obs.ledger import IVLedgerEntry, VersionProvenance


def make_entry(**overrides) -> IVLedgerEntry:
    """A realistic completed-query entry; override any field."""
    fields = dict(
        query="q1",
        query_id=7,
        business_value=1.0,
        lambda_cl=0.0321,
        lambda_sl=0.0123,
        submitted_at=10.0,
        started_at=10.5,
        remote_done_at=14.25,
        local_granted_at=15.0,
        local_done_at=17.75,
        completed_at=18.0,
        data_timestamp=12.5,
        queue_wait=0.75,
        remote_wait=1.5,
        retries=1,
        failovers=0,
        degraded=True,
        failed=False,
        reported_iv=0.0,
        versions=(
            VersionProvenance("a", "base", 1, 12.5, 12.5, None),
            VersionProvenance("b", "replica", None, 13.0, 14.0, 14.0),
        ),
    )
    fields.update(overrides)
    if "reported_iv" not in overrides and not fields["failed"]:
        # Report exactly what the formula yields for these floats.
        fields["reported_iv"] = information_value(
            fields["business_value"],
            fields["completed_at"] - fields["submitted_at"],
            max(0.0, fields["completed_at"] - fields["data_timestamp"]),
            DiscountRates(fields["lambda_cl"], fields["lambda_sl"]),
        )
    return IVLedgerEntry(**fields)


class TestPhaseDecomposition:
    def test_phase_properties_are_timestamp_differences(self):
        entry = make_entry()
        assert entry.scheduled_delay == 0.5
        assert entry.remote_phase == 3.75
        assert entry.processing == 2.75
        assert entry.transfer == 0.25
        assert entry.computational_latency == 8.0
        assert entry.synchronization_latency == 5.5

    def test_phase_sum_conserves_cl(self):
        entry = make_entry()
        assert abs(entry.phase_sum - entry.computational_latency) < 1e-9

    def test_sl_clamps_at_zero_for_future_data(self):
        entry = make_entry(data_timestamp=50.0)
        assert entry.synchronization_latency == 0.0


class TestIVRecomputation:
    def test_recompute_is_bit_identical(self):
        entry = make_entry()
        assert entry.recompute_iv() == entry.reported_iv

    def test_failed_entries_recompute_to_zero(self):
        entry = make_entry(failed=True, reported_iv=0.0)
        assert entry.recompute_iv() == 0.0

    def test_rates_round_trip(self):
        entry = make_entry()
        assert entry.rates == DiscountRates(0.0321, 0.0123)


class TestProvenance:
    def test_stalest_is_minimum_realized_freshness(self):
        entry = make_entry()
        assert entry.stalest is not None
        assert entry.stalest.table == "a"
        assert entry.stalest.realized_freshness == entry.data_timestamp

    def test_stalest_none_without_versions(self):
        entry = make_entry(versions=())
        assert entry.stalest is None

    def test_explain_names_every_version(self):
        text = make_entry().explain()
        assert "a[base]" in text and "b[replica]" in text
        assert "<- stalest" in text
        assert "degraded" in text

    def test_explain_marks_failed(self):
        text = make_entry(failed=True, reported_iv=0.0).explain()
        assert "FAILED" in text


class TestSerialization:
    def test_dict_round_trip_is_lossless(self):
        entry = make_entry()
        assert IVLedgerEntry.from_dict(entry.to_dict()) == entry

    def test_json_round_trip_preserves_float_bits(self):
        # Awkward floats whose repr must survive a JSON round-trip exactly.
        entry = make_entry(
            submitted_at=0.1 + 0.2,
            completed_at=10.0 / 3.0 + 7.0,
            data_timestamp=2.0 / 3.0,
        )
        revived = IVLedgerEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert revived == entry
        assert revived.recompute_iv() == entry.recompute_iv()

    def test_version_provenance_round_trip(self):
        version = VersionProvenance("t", "replica", None, 1.5, 2.5, 2.5)
        assert VersionProvenance.from_dict(version.to_dict()) == version
