"""EXT2 — information value under load (arrival-rate sweep).

The paper's computational latency *includes queuing time*, so information
value must degrade as the query arrival rate approaches the system's
service capacity — and the three routing approaches degrade differently:
the Data Warehouse funnels everything through the local server, Federation
spreads load over the remote sites, and IVQP can shift routes as queues
build (each submission re-optimizes against the current sync state, and
its realized IV absorbs whatever queueing materialises).

This extension sweeps the mean inter-arrival time from relaxed to
saturating on the TPC-H setup and reports mean realized IV and mean CL per
approach — the capacity story Section 1 motivates ("business intelligence
applications based on a centralized data warehouse cannot scale up").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.value import DiscountRates
from repro.experiments.config import TpchSetup, sync_interval_for_ratio
from repro.experiments.runner import run_stream
from repro.reporting.tables import ResultTable

__all__ = ["LoadConfig", "run_load_sweep"]


@dataclass
class LoadConfig:
    """Parameters of the EXT2 sweep."""

    setup: TpchSetup = field(default_factory=TpchSetup)
    #: Mean minutes between arrivals, fastest first (the paper's default
    #: stream uses 10.0).
    interarrival_means: tuple[float, ...] = (1.0, 2.0, 4.0, 10.0)
    lambda_both: float = 0.05
    ratio_multiplier: float = 10.0  # Fq:Fs = 1:10
    approaches: tuple[str, ...] = ("ivqp", "federation", "warehouse")
    rounds: int = 2
    arrival_seed: int = 3
    system_seed: int = 1


def run_load_sweep(config: LoadConfig | None = None) -> ResultTable:
    """Sweep the arrival rate and report IV/CL per approach."""
    config = config or LoadConfig()
    rates = DiscountRates.symmetric(config.lambda_both)
    interval = sync_interval_for_ratio(config.ratio_multiplier)
    queries = config.setup.queries()
    table = ResultTable(
        title="EXT2: information value under load (TPC-H stream)",
        headers=[
            "interarrival_min", "approach", "mean_iv", "mean_cl", "mean_sl",
        ],
    )
    for mean_interarrival in config.interarrival_means:
        for approach in config.approaches:
            system_config = config.setup.system_config(
                approach=approach,
                rates=rates,
                sync_mean_interval=interval,
                seed=config.system_seed,
            )
            result = run_stream(
                system_config,
                approach,
                queries,
                mean_interarrival=mean_interarrival,
                rounds=config.rounds,
                arrival_seed=config.arrival_seed,
            )
            table.add(
                mean_interarrival, approach,
                result.mean_iv, result.mean_cl, result.mean_sl,
            )
    return table
