"""The IV audit ledger — every reported IV, explainable and recomputable.

The paper's formula ``IV = BV × (1−λ_CL)^CL × (1−λ_SL)^SL`` compresses a
whole execution into two latencies.  An :class:`IVLedgerEntry` preserves
what the compression discards: the phase timestamps whose differences make
up CL (scheduled delay, remote phase, local queue wait, processing,
transfer) and the per-table-version provenance whose minimum realized
freshness decides SL.  The contract — asserted by
:class:`~repro.obs.checker.TraceChecker` and the property suite — is that
:meth:`IVLedgerEntry.recompute_iv` reproduces the reported IV
**bit-identically**, because it reapplies
:func:`repro.core.value.information_value` to the exact floats the
executor measured.

Entries serialize losslessly to JSON (floats round-trip through
``repr``-based encoding), so a ledger written to a JSONL trace can be
audited offline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.value import DiscountRates, information_value

__all__ = ["VersionProvenance", "IVLedgerEntry", "completion_ledger"]

#: Phase-conservation tolerance: the telescoping sum of float differences
#: may deviate from ``completed_at − submitted_at`` by a few ulps.
CONSERVATION_TOLERANCE = 1e-9


@dataclass(frozen=True)
class VersionProvenance:
    """Where one table version's freshness actually came from.

    Attributes
    ----------
    table, kind:
        The table and which copy was read (``"base"`` or ``"replica"``).
    site:
        The base table's site (``None`` for replicas, which are local).
    planned_freshness:
        What the plan *promised* — the published-schedule freshness the
        router bet on.
    realized_freshness:
        What execution *delivered* — leg start for base tables, last
        applied synchronization for replicas.  Fresher than planned when a
        sync landed while the query queued; staler under sync faults.
    last_sync_at:
        For replicas, the timestamp of the synchronization (or initial
        snapshot) that defines ``realized_freshness``; ``None`` for base
        tables.
    """

    table: str
    kind: str
    site: int | None
    planned_freshness: float
    realized_freshness: float
    last_sync_at: float | None

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VersionProvenance":
        """Inverse of :meth:`to_dict`."""
        return cls(
            table=data["table"],
            kind=data["kind"],
            site=data["site"],
            planned_freshness=data["planned_freshness"],
            realized_freshness=data["realized_freshness"],
            last_sync_at=data["last_sync_at"],
        )


@dataclass(frozen=True)
class IVLedgerEntry:
    """One query's complete IV decomposition.

    Timestamps delimit the execution phases (all in simulation minutes)::

        submitted_at ─ scheduled_delay ─ started_at ─ remote_phase ─
        remote_done_at ─ queue_wait ─ local_granted_at ─ processing ─
        local_done_at ─ transfer ─ completed_at

    For failed queries the local-phase timestamps all collapse onto
    ``completed_at`` and only the identity/IV fields are meaningful.
    """

    query: str
    query_id: int
    business_value: float
    lambda_cl: float
    lambda_sl: float
    submitted_at: float
    started_at: float
    remote_done_at: float
    local_granted_at: float
    local_done_at: float
    completed_at: float
    data_timestamp: float
    queue_wait: float
    remote_wait: float
    retries: int
    failovers: int
    degraded: bool
    failed: bool
    reported_iv: float
    versions: tuple[VersionProvenance, ...]

    # -- CL decomposition --------------------------------------------------

    @property
    def computational_latency(self) -> float:
        """Realized CL, exactly as the outcome reported it."""
        return self.completed_at - self.submitted_at

    @property
    def synchronization_latency(self) -> float:
        """Realized SL, exactly as the outcome reported it."""
        return max(0.0, self.completed_at - self.data_timestamp)

    @property
    def scheduled_delay(self) -> float:
        """Minutes spent waiting for the plan's start time (delayed execution)."""
        return self.started_at - self.submitted_at

    @property
    def remote_phase(self) -> float:
        """Minutes from execution start until every remote leg settled."""
        return self.remote_done_at - self.started_at

    @property
    def processing(self) -> float:
        """Minutes of local assembly at the federation server."""
        return self.local_done_at - self.local_granted_at

    @property
    def transfer(self) -> float:
        """Minutes shipping the result to the user."""
        return self.completed_at - self.local_done_at

    @property
    def phase_sum(self) -> float:
        """Sum of the five phases — conserves CL up to float telescoping."""
        return (
            self.scheduled_delay
            + self.remote_phase
            + self.queue_wait
            + self.processing
            + self.transfer
        )

    # -- SL provenance ----------------------------------------------------------

    @property
    def stalest(self) -> VersionProvenance | None:
        """The version whose realized freshness decided SL."""
        if not self.versions:
            return None
        return min(self.versions, key=lambda version: version.realized_freshness)

    # -- the audit ---------------------------------------------------------

    @property
    def rates(self) -> DiscountRates:
        """The discount rates the plan was valued under."""
        return DiscountRates(self.lambda_cl, self.lambda_sl)

    def recompute_iv(self) -> float:
        """Reapply the paper's formula to the ledger's own numbers.

        Bit-identical to :attr:`reported_iv` by construction: same floats,
        same :func:`~repro.core.value.information_value`.
        """
        if self.failed:
            return 0.0
        return information_value(
            self.business_value,
            self.computational_latency,
            self.synchronization_latency,
            self.rates,
        )

    def explain(self) -> str:
        """Multi-line human-readable audit of this entry."""
        lines = [
            f"{self.query} (id={self.query_id}): "
            f"IV={self.reported_iv!r} (recomputed {self.recompute_iv()!r})",
            f"  CL={self.computational_latency:.6f} = "
            f"delay {self.scheduled_delay:.6f} + remote {self.remote_phase:.6f}"
            f" + queue {self.queue_wait:.6f} + processing {self.processing:.6f}"
            f" + transfer {self.transfer:.6f}",
            f"  SL={self.synchronization_latency:.6f} "
            f"(data as of {self.data_timestamp:.6f})",
        ]
        stalest = self.stalest
        for version in self.versions:
            mark = "  <- stalest" if version is stalest else ""
            sync = (
                f" last_sync={version.last_sync_at:.6f}"
                if version.last_sync_at is not None
                else ""
            )
            lines.append(
                f"    {version.table}[{version.kind}] "
                f"planned={version.planned_freshness:.6f} "
                f"realized={version.realized_freshness:.6f}{sync}{mark}"
            )
        if self.failed:
            lines.append("  FAILED (no result delivered, IV 0)")
        elif self.degraded:
            lines.append(
                f"  degraded: retries={self.retries} failovers={self.failovers}"
            )
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready representation (lossless float round-trip)."""
        data = asdict(self)
        data["versions"] = [version.to_dict() for version in self.versions]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "IVLedgerEntry":
        """Inverse of :meth:`to_dict`."""
        fields = dict(data)
        fields["versions"] = tuple(
            VersionProvenance.from_dict(version) for version in data["versions"]
        )
        return cls(**fields)


def completion_ledger(
    query_name: str,
    query_id: int,
    business_value: float,
    rates: DiscountRates,
    submitted_at: float,
    begin: float,
    completed_at: float,
    data_timestamp: float,
) -> IVLedgerEntry:
    """The online serving path's ledger entry for one completion.

    One shared constructor for every driver of an online session — the
    live :class:`~repro.serve.service.QueryService`, the durable journal
    replay, and the crash/resume harness — so a recovered run's ledger is
    **bit-identical** to the live run's: same floats, same
    :func:`~repro.core.value.information_value` call, same field layout.
    The completion instant is the event's pop time (>= the analytic
    completion when dispatch ran late), matching the COMPLETE trace event.
    """
    started_at = max(begin, submitted_at)
    cl = completed_at - submitted_at
    sl = max(0.0, completed_at - data_timestamp)
    iv = information_value(business_value, cl, sl, rates)
    return IVLedgerEntry(
        query=query_name,
        query_id=query_id,
        business_value=business_value,
        lambda_cl=rates.computational,
        lambda_sl=rates.synchronization,
        submitted_at=submitted_at,
        started_at=started_at,
        remote_done_at=started_at,
        local_granted_at=started_at,
        local_done_at=completed_at,
        completed_at=completed_at,
        data_timestamp=data_timestamp,
        queue_wait=0.0,
        remote_wait=0.0,
        retries=0,
        failovers=0,
        degraded=False,
        failed=False,
        reported_iv=iv,
        versions=(),
    )
