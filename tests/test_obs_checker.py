"""Unit tests: the trace invariant checker catches exactly what it should."""

from __future__ import annotations

import pytest

from repro.baselines import ivqp_router
from repro.core.value import DiscountRates
from repro.errors import SimulationError
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.obs import TraceChecker, events
from repro.obs.ledger import IVLedgerEntry
from repro.sim.trace import TraceRecord
from repro.workload.query import DSSQuery


def traced_system(num_queries: int = 2):
    config = SystemConfig(
        tables=[
            TableSpec("a", site=0, row_count=1_000),
            TableSpec("b", site=1, row_count=2_000),
        ],
        replicated=["a"],
        sync_mode="periodic",
        sync_mean_interval=4.0,
        rates=DiscountRates(0.02, 0.02),
        trace=True,
        seed=2,
    )
    system = build_system(config, ivqp_router)
    for qid in range(num_queries):
        system.submit(
            DSSQuery(query_id=qid, name=f"q{qid}", tables=("a", "b")),
            at=3.0 * qid,
        )
    system.run()
    return system


def rules_of(violations) -> set[str]:
    return {violation.rule for violation in violations}


class TestCleanTraces:
    def test_real_run_is_clean(self):
        system = traced_system()
        checker = TraceChecker()
        assert checker.check(system.tracer.records) == []
        checker.assert_clean(system.tracer.records)  # must not raise

    def test_check_system_entry_point(self):
        system = traced_system()
        assert TraceChecker().check_system(system) == []

    def test_check_system_requires_a_tracer(self):
        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=100)], replicated=[]
        )
        system = build_system(config, ivqp_router)
        with pytest.raises(SimulationError):
            TraceChecker().check_system(system)

    def test_empty_trace_is_clean(self):
        assert TraceChecker().check([]) == []


class TestTamperedTraces:
    """Each corruption must be caught by the rule named for it."""

    def test_tampered_iv_caught(self):
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER:
                record.detail["reported_iv"] = record.detail["reported_iv"] + 0.1
        violations = TraceChecker().check(records)
        assert "iv-recompute" in rules_of(violations)
        assert "event-ledger-agree" in rules_of(violations)

    def test_tampered_timestamp_breaks_conservation(self):
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER:
                record.detail["local_done_at"] = (
                    record.detail["local_done_at"] + 0.5
                )
        violations = TraceChecker().check(records)
        # Shifting one boundary changes two phases in opposite directions —
        # conservation survives — but the IV and the phase ordering cannot
        # all stay consistent with the event stream.
        assert rules_of(violations) & {
            "cl-conservation", "phase-order", "iv-recompute", "queue-wait"
        }

    def test_tampered_queue_wait_caught(self):
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER:
                record.detail["queue_wait"] = record.detail["queue_wait"] + 1.0
        assert "queue-wait" in rules_of(TraceChecker().check(records))

    def test_tampered_provenance_caught(self):
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER and record.detail["versions"]:
                record.detail["versions"][0]["realized_freshness"] = -999.0
        assert "sl-provenance" in rules_of(TraceChecker().check(records))

    def test_time_going_backwards_caught(self):
        records = traced_system().tracer.records
        shuffled = [records[-1]] + records[:-1]
        assert "time-monotonic" in rules_of(TraceChecker().check(shuffled))

    def test_causal_disorder_caught(self):
        records = traced_system().tracer.records
        complete = next(r for r in records if r.kind == events.COMPLETE)
        submit_index = next(
            index for index, r in enumerate(records)
            if r.kind == events.SUBMIT
            and r.detail.get("qid") == complete.detail["qid"]
        )
        tampered = [
            TraceRecord(
                records[submit_index].time, complete.kind,
                complete.subject, dict(complete.detail),
            )
            if index == submit_index else record
            for index, record in enumerate(records)
        ]
        assert "causal-order" in rules_of(TraceChecker().check(tampered))

    def test_duplicate_ledger_caught(self):
        records = traced_system().tracer.records
        ledger = next(r for r in records if r.kind == events.LEDGER)
        assert "ledger-unique" in rules_of(TraceChecker().check(records + [ledger]))

    def test_malformed_ledger_caught(self):
        record = TraceRecord(1.0, events.LEDGER, "q", {"query": "q"})
        assert "ledger-well-formed" in rules_of(TraceChecker().check([record]))

    def test_missing_qid_caught(self):
        record = TraceRecord(1.0, events.SUBMIT, "q", {})
        assert "qid-present" in rules_of(TraceChecker().check([record]))

    def test_assert_clean_raises_with_listing(self):
        record = TraceRecord(1.0, events.SUBMIT, "q", {})
        with pytest.raises(SimulationError, match="qid-present"):
            TraceChecker().assert_clean([record])


class TestCompletenessAndFaults:
    def test_submitted_but_never_finished_caught(self):
        records = [
            record for record in traced_system().tracer.records
            if record.kind not in (events.COMPLETE, events.FAILED, events.LEDGER)
        ]
        rules = rules_of(TraceChecker().check(records))
        assert "query-completes" in rules
        assert "ledger-present" in rules

    def test_truncated_window_tolerated_when_opted_out(self):
        records = [
            record for record in traced_system().tracer.records
            if record.kind not in (events.COMPLETE, events.FAILED, events.LEDGER)
        ]
        checker = TraceChecker(require_complete=False)
        assert checker.check(records) == []

    def test_fault_alternation_enforced(self):
        down = TraceRecord(1.0, events.FAULT_DOWN, "site:1", {})
        up = TraceRecord(2.0, events.FAULT_UP, "site:1", {})
        assert TraceChecker().check([down, up]) == []
        again = TraceRecord(3.0, events.FAULT_DOWN, "site:1", {})
        assert "fault-alternation" in rules_of(
            TraceChecker().check([down, down, up, again])
        )

    def test_tolerance_validation(self):
        with pytest.raises(SimulationError):
            TraceChecker(tolerance=-1.0)


class TestLedgerEntryAgainstOutcomes:
    def test_ledger_mirrors_outcomes_exactly(self):
        system = traced_system(num_queries=3)
        assert len(system.ledger) == len(system.outcomes)
        by_qid = {entry.query_id: entry for entry in system.ledger}
        for outcome in system.outcomes:
            entry = by_qid[outcome.query.query_id]
            assert isinstance(entry, IVLedgerEntry)
            assert entry.reported_iv == outcome.information_value
            assert entry.recompute_iv() == outcome.information_value
            assert entry.computational_latency == outcome.computational_latency
            assert (
                entry.synchronization_latency == outcome.synchronization_latency
            )
