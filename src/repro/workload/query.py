"""DSS-level queries and workloads.

A :class:`DSSQuery` is what the decision-support user submits: the physical
tables a report reads, the report's business value, and (optionally) the
user's discount-rate preferences and an executable
:class:`~repro.engine.query.LogicalQuery` definition for the mini engine.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace

from repro.core.value import DiscountRates
from repro.engine.query import LogicalQuery
from repro.errors import WorkloadError

__all__ = ["DSSQuery", "Workload"]


@dataclass(frozen=True, eq=False)
class DSSQuery:
    """One decision-support report request.

    Queries compare (and hash) by *identity*: two distinct objects are
    different queries even with identical fields, so caches keyed on a
    query never collide across workloads that reuse ids.  (Field-based
    equality would also misbehave: ``logical`` holds expression trees whose
    ``==`` is overloaded to build predicates.)

    Attributes
    ----------
    query_id:
        Unique identifier within a workload.
    name:
        Human-readable label (e.g. ``"Q3"`` or ``"asset-exposure"``).
    tables:
        Names of the physical tables the report reads (LineItem partitions
        appear individually).
    business_value:
        The report's value to decision-making at zero latency.
    rates:
        Per-query discount preferences; ``None`` inherits the system default.
    logical:
        Optional engine-backed definition; when present the cost model
        calibrates this query's base work from the planner's estimate.
    base_work:
        Optional explicit work-units figure (used by synthetic workloads
        that have no logical definition).
    """

    query_id: int
    name: str
    tables: tuple[str, ...]
    business_value: float = 1.0
    rates: DiscountRates | None = None
    logical: LogicalQuery | None = None
    base_work: float | None = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise WorkloadError(f"query {self.name!r} reads no tables")
        if len(set(self.tables)) != len(self.tables):
            raise WorkloadError(f"query {self.name!r} lists a table twice")
        if self.business_value <= 0:
            raise WorkloadError(
                f"query {self.name!r} needs a positive business value"
            )
        if self.base_work is not None and self.base_work <= 0:
            raise WorkloadError(f"query {self.name!r} needs positive base work")

    def with_rates(self, rates: DiscountRates) -> "DSSQuery":
        """Copy of this query with explicit discount rates."""
        return replace(self, rates=rates)

    def with_value(self, business_value: float) -> "DSSQuery":
        """Copy of this query with a different business value."""
        return replace(self, business_value=business_value)

    def table_set(self) -> frozenset[str]:
        """The tables as a set (plans key on this)."""
        return frozenset(self.tables)


@dataclass
class Workload:
    """An ordered collection of queries with optional arrival times."""

    queries: list[DSSQuery] = field(default_factory=list)
    arrivals: dict[int, float] = field(default_factory=dict)
    #: Lazy ``query_id → DSSQuery`` index; rebuilt whenever it falls out of
    #: step with ``queries`` (e.g. after direct list mutation).
    _index: dict[int, DSSQuery] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len({query.query_id for query in self.queries}) != len(self.queries):
            raise WorkloadError("workload constructed with duplicate query ids")

    def _lookup(self) -> dict[int, DSSQuery]:
        index = self._index
        if index is None or len(index) != len(self.queries):
            index = {query.query_id: query for query in self.queries}
            if len(index) != len(self.queries):
                raise WorkloadError("workload contains duplicate query ids")
            self._index = index
        return index

    def add(self, query: DSSQuery, arrival: float | None = None) -> None:
        """Append a query, optionally fixing its arrival time."""
        index = self._lookup()
        if query.query_id in index:
            raise WorkloadError(f"duplicate query id {query.query_id}")
        self.queries.append(query)
        index[query.query_id] = query
        if arrival is not None:
            if arrival < 0:
                raise WorkloadError(f"arrival time must be >= 0, got {arrival}")
            self.arrivals[query.query_id] = arrival

    def arrival_of(self, query_id: int) -> float:
        """Arrival time of a query (0.0 when the query has none specified).

        Unknown ids raise :class:`WorkloadError` — a silent 0.0 here would
        disguise a wiring mistake as "arrived at t=0".
        """
        arrival = self.arrivals.get(query_id)
        if arrival is not None:
            return arrival
        if query_id not in self._lookup():
            raise WorkloadError(f"workload has no query id {query_id}")
        return 0.0

    def query(self, query_id: int) -> DSSQuery:
        """Look up a query by id."""
        try:
            return self._lookup()[query_id]
        except KeyError:
            raise WorkloadError(f"workload has no query id {query_id}") from None

    def tables_touched(self) -> set[str]:
        """Union of all tables any query reads."""
        touched: set[str] = set()
        for query in self.queries:
            touched.update(query.tables)
        return touched

    def sorted_by_arrival(self) -> list[DSSQuery]:
        """Queries ordered by arrival time (stable for ties)."""
        return sorted(self.queries, key=lambda q: self.arrival_of(q.query_id))

    def __iter__(self) -> Iterator[DSSQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    @classmethod
    def from_queries(
        cls,
        queries: Iterable[DSSQuery],
        arrivals: Sequence[float] | None = None,
    ) -> "Workload":
        """Build a workload from queries and optional parallel arrival list."""
        workload = cls()
        queries = list(queries)
        if arrivals is not None and len(arrivals) != len(queries):
            raise WorkloadError("arrivals must align one-to-one with queries")
        for index, query in enumerate(queries):
            workload.add(query, arrivals[index] if arrivals is not None else None)
        return workload
