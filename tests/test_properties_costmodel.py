"""Property tests: analytic cost model invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.federation.network import NetworkModel
from repro.sim.rng import RandomSource
from repro.workload.query import DSSQuery


def build_world(table_rows, sites, seed):
    catalog = Catalog()
    names = []
    rng = RandomSource(seed, "prop-cost")
    for index, rows in enumerate(table_rows):
        name = f"t{index}"
        names.append(name)
        site = rng.randint(0, max(sites - 1, 0))
        catalog.add_table(TableDef(name, site=site, row_count=rows))
        catalog.add_replica(name, FixedSyncSchedule([1.0], tail_period=5.0))
    query = DSSQuery(query_id=1, name="prop", tables=tuple(names))
    return catalog, query


@settings(max_examples=80, deadline=None)
@given(
    table_rows=st.lists(
        st.integers(min_value=1, max_value=100_000), min_size=1, max_size=6
    ),
    sites=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_all_combo_costs_are_finite_and_positive(table_rows, sites, seed):
    catalog, query = build_world(table_rows, sites, seed)
    model = CostModel(catalog)
    import itertools

    for r in range(len(query.tables) + 1):
        for subset in itertools.combinations(query.tables, r):
            cost = model.combo_cost(query, frozenset(subset))
            assert cost.processing > 0
            assert cost.total < float("inf")
            assert cost.local_minutes >= model.params.min_processing - 1e-12


@settings(max_examples=60, deadline=None)
@given(
    table_rows=st.lists(
        st.integers(min_value=100, max_value=50_000), min_size=2, max_size=5
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_adding_a_remote_table_never_reduces_total_cost(table_rows, seed):
    """Monotonicity: the default calibration makes remote strictly slower
    than local, so growing the remote set can't cheapen a combo.

    This holds when all tables share one remote site: there the remote legs
    accumulate.  (Across *different* sites legs run in parallel, and moving
    work off the local server onto an idle site can legitimately shave a
    sliver of time — so no cross-site monotonicity is claimed.)
    """
    catalog = Catalog()
    names = []
    for index, rows in enumerate(table_rows):
        name = f"t{index}"
        names.append(name)
        catalog.add_table(TableDef(name, site=0, row_count=rows))
    query = DSSQuery(query_id=1, name="mono", tables=tuple(names))
    model = CostModel(
        catalog,
        network=NetworkModel(coordination_overhead=0.0),
        params=CostParameters(assembly_per_site=0.0),
    )
    rng = RandomSource(seed, "mono")
    base = set(rng.sample(names, rng.randint(0, len(names) - 1)))
    extra = rng.choice([name for name in names if name not in base])
    smaller = model.combo_cost(query, frozenset(base))
    bigger = model.combo_cost(query, frozenset(base | {extra}))
    assert bigger.total >= smaller.total - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    rows=st.integers(min_value=100, max_value=100_000),
    work=st.floats(min_value=10.0, max_value=1e6),
)
def test_processing_scales_with_base_work(rows, work):
    catalog = Catalog()
    catalog.add_table(TableDef("t", site=0, row_count=rows))
    model = CostModel(catalog)
    small = DSSQuery(query_id=1, name="s", tables=("t",), base_work=work)
    large = DSSQuery(query_id=2, name="l", tables=("t",), base_work=2 * work)
    assert (
        model.combo_cost(large, frozenset({"t"})).total
        >= model.combo_cost(small, frozenset({"t"})).total
    )


def test_combo_cost_is_timestamp_independent(fig4_world):
    """Section 3.1: compilation happens once, independent of sync state."""
    catalog, provider, query, _rates = fig4_world
    model = CostModel(catalog)
    early = model.combo_cost(query, frozenset({"T1"}))
    # Consume schedule look-aheads (simulating time passing) ...
    catalog.replica("T1").freshness_at(500.0)
    late = model.combo_cost(query, frozenset({"T1"}))
    assert early is late  # the cache returns the very same compilation
