"""Trace invariant checking: replay any emitted trace and audit it.

:class:`TraceChecker` consumes a list of :class:`~repro.sim.trace.TraceRecord`
(live from a tracer or re-read from JSONL) and verifies, per query:

* **causal ordering** — lifecycle events appear in the only legal order
  (submit → plan → exec.start → leg events → remote.done → local.granted →
  local.done → complete), legs are granted before they finish, and global
  record time never decreases;
* **latency conservation** — the ledger's five phases sum to the reported
  CL (up to float telescoping), the local queue wait matches its
  timestamps, and the complete event agrees with the ledger bit-for-bit;
* **IV-ledger consistency** — recomputing IV from the audit ledger
  reproduces the reported IV **bit-identically**, SL equals the gap to the
  stalest realized version, and failed queries report IV 0.

Every failure is a :class:`Violation` naming the rule, the subject and
what went wrong; an empty list is the pass condition the regression and
property suites assert on.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.obs import events
from repro.obs.ledger import CONSERVATION_TOLERANCE, IVLedgerEntry
from repro.sim.trace import TraceRecord

__all__ = ["Violation", "TraceChecker"]

#: Causal rank of each lifecycle kind; equal ranks may interleave freely.
_RANK = {
    events.SUBMIT: 0,
    events.PLAN: 1,
    events.EXEC_START: 2,
    events.LEG_START: 3,
    events.LEG_BLOCKED: 3,
    events.LEG_GRANTED: 3,
    events.LEG_RETRY: 3,
    events.LEG_DONE: 3,
    events.LEG_EXHAUSTED: 3,
    events.FAILOVER: 3,
    events.REMOTE_DONE: 4,
    events.LOCAL_GRANTED: 5,
    events.LOCAL_DONE: 6,
    events.COMPLETE: 7,
    events.FAILED: 7,
    events.LEDGER: 8,
}


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    rule: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.subject}: {self.message}"


#: Rules that can fire *spuriously* when a bounded tracer evicted the oldest
#: records: they reason about events that precede retained ones (a granted
#: leg whose ``leg.start`` was dropped, a window ordering an admission that
#: fell off the front, an ``alert.close`` whose open is gone).  With
#: ``dropped > 0`` these are downgraded — suppressed rather than reported —
#: because the trace prefix, not the run, is what's missing.
PREFIX_SENSITIVE_RULES = frozenset({
    "leg-order",
    "window-order-admitted",
    "alert-alternation",
    "alert-window",
})


class TraceChecker:
    """Replays a trace and reports every invariant violation.

    Parameters
    ----------
    tolerance:
        Relative tolerance for phase-sum conservation (float telescoping);
        identity checks (IV recomputation, event/ledger agreement) are
        exact.
    require_complete:
        Whether a query that was submitted must also have completed within
        the trace — disable when checking a deliberately truncated window.
    """

    def __init__(
        self,
        tolerance: float = CONSERVATION_TOLERANCE,
        require_complete: bool = True,
    ) -> None:
        if tolerance < 0:
            raise SimulationError("tolerance must be >= 0")
        self.tolerance = tolerance
        self.require_complete = require_complete

    # -- entry points ----------------------------------------------------------

    def check(
        self, records: Sequence[TraceRecord], dropped: int = 0
    ) -> list[Violation]:
        """Audit a trace; returns all violations (empty = clean).

        ``dropped`` is the number of records a bounded tracer evicted
        before this trace was read (``tracer.dropped``).  When positive,
        :data:`PREFIX_SENSITIVE_RULES` are downgraded: the missing prefix
        makes them unverifiable, not violated.  Queries whose submit fell
        off the front are likewise excused from completeness rules.
        """
        violations: list[Violation] = []
        self._check_global_order(records, violations)
        lifecycles, ledgers = self._group(records, violations)
        for qid, query_records in sorted(lifecycles.items()):
            self._check_lifecycle(qid, query_records, violations)
        for qid, entry in sorted(ledgers.items()):
            self._check_ledger(entry, lifecycles.get(qid, []), violations)
        self._check_completeness(lifecycles, ledgers, violations)
        self._check_faults(records, violations)
        self._check_online(records, violations)
        self._check_alerts(records, violations)
        self._check_durability(records, violations)
        if dropped > 0:
            violations = [
                violation for violation in violations
                if violation.rule not in PREFIX_SENSITIVE_RULES
            ]
        return violations

    def check_system(self, system) -> list[Violation]:
        """Audit a live :class:`~repro.federation.system.FederatedSystem`.

        Passes the tracer's drop counter through, so capacity-bounded
        traces are audited with prefix-sensitive rules downgraded.
        """
        if system.tracer is None:
            raise SimulationError(
                "system has no tracer (build it with SystemConfig(trace=True))"
            )
        return self.check(system.tracer.records, dropped=system.tracer.dropped)

    def check_fleet(
        self, records: Sequence[TraceRecord], snapshot: dict
    ) -> list[Violation]:
        """Audit a merged multi-shard trace against its fleet snapshot.

        ``records`` is the :class:`~repro.obs.fleet.FleetCollector`'s merged
        trace (every detail tagged ``shard=k``); ``snapshot`` its fleet
        snapshot.  On top of re-running every single-process rule per shard
        (with that shard's ``dropped_events``), four cross-shard rules fire:

        * ``shard-tag`` — every record carries a well-formed (non-negative
          integer) shard tag;
        * ``shard-ownership`` — every query id appears on exactly one
          shard (conflict-group sharding must partition the stream);
        * ``fleet-dropped-surfaced`` — every shard present in the trace has
          a ``dropped_events`` entry in the snapshot's shard panels;
        * ``fleet-iv-conservation`` / ``fleet-cl-conservation`` — per-shard
          ledger IV/CL sums re-derived from the trace (left-to-right, trace
          order) must equal the snapshot's per-shard values **bit-exactly**,
          and their shard-order sum must equal the fleet totals
          (including ``total_iv`` when the shard summaries carry it)
          bit-exactly — the fleet aggregation may not lose or invent a
          single ulp.
        """
        violations: list[Violation] = []
        panels = {
            int(panel["shard"]): panel for panel in snapshot.get("shards", [])
        }
        fleet = snapshot.get("fleet", {})

        by_shard: dict[int, list[TraceRecord]] = defaultdict(list)
        for index, record in enumerate(records):
            shard = record.detail.get("shard")
            if isinstance(shard, bool) or not isinstance(shard, int) or shard < 0:
                violations.append(Violation(
                    "shard-tag", f"record[{index}]",
                    f"{record.kind} at t={record.time!r} carries a malformed "
                    f"shard tag {shard!r} (need an integer >= 0)",
                ))
                continue
            # Strip the tag: per-shard rules (ledger parsing in particular)
            # must see the record exactly as the shard emitted it.
            by_shard[shard].append(TraceRecord(
                time=record.time,
                kind=record.kind,
                subject=record.subject,
                detail={
                    key: value
                    for key, value in record.detail.items()
                    if key != "shard"
                },
            ))

        for shard, shard_records in sorted(by_shard.items()):
            panel = panels.get(shard)
            dropped = int(panel.get("dropped_events", 0)) if panel else 0
            for violation in self.check(shard_records, dropped=dropped):
                violations.append(Violation(
                    violation.rule,
                    f"shard{shard}:{violation.subject}",
                    violation.message,
                ))

        owners: dict[int, set[int]] = defaultdict(set)
        for shard, shard_records in by_shard.items():
            for record in shard_records:
                qid = record.detail.get("qid")
                if qid is None and record.kind == events.LEDGER:
                    qid = record.detail.get("query_id")
                if qid is not None:
                    owners[qid].add(shard)
        for qid, shards in sorted(owners.items()):
            if len(shards) > 1:
                violations.append(Violation(
                    "shard-ownership", f"query:{qid}",
                    f"query appears on shards {sorted(shards)}; sharding "
                    f"must assign each query to exactly one worker",
                ))

        for shard in sorted(by_shard):
            panel = panels.get(shard)
            if panel is None or "dropped_events" not in panel:
                violations.append(Violation(
                    "fleet-dropped-surfaced", f"shard{shard}",
                    "shard present in the trace but its dropped_events "
                    "counter is missing from the fleet snapshot",
                ))

        self._check_fleet_conservation(by_shard, panels, fleet, violations)
        return violations

    def _check_fleet_conservation(
        self,
        by_shard: dict[int, list[TraceRecord]],
        panels: dict[int, dict],
        fleet: dict,
        violations: list[Violation],
    ) -> None:
        """Trace → shard sums → fleet totals, every step ``==``-exact."""
        derived: dict[int, dict[str, float]] = {}
        for shard, shard_records in sorted(by_shard.items()):
            ledger_iv = 0.0
            ledger_cl = 0.0
            for record in shard_records:
                if record.kind != events.LEDGER:
                    continue
                detail = record.detail
                ledger_iv += detail.get("reported_iv", 0.0)
                ledger_cl += detail.get("completed_at", 0.0) - detail.get(
                    "submitted_at", 0.0
                )
            derived[shard] = {"ledger_iv": ledger_iv, "ledger_cl": ledger_cl}

        for key, rule in (
            ("ledger_iv", "fleet-iv-conservation"),
            ("ledger_cl", "fleet-cl-conservation"),
        ):
            total = 0.0
            for shard in sorted(by_shard):
                value = derived[shard][key]
                panel = panels.get(shard)
                if panel is not None and key in panel and panel[key] != value:
                    violations.append(Violation(
                        rule, f"shard{shard}",
                        f"snapshot reports {key}={panel[key]!r} but the "
                        f"shard's trace sums to {value!r} (must be bit-exact)",
                    ))
                total += value
            if key in fleet and fleet[key] != total:
                violations.append(Violation(
                    rule, "fleet",
                    f"fleet {key}={fleet[key]!r} but the shard-order sum of "
                    f"per-shard values is {total!r} (must be bit-exact)",
                ))

        if "total_iv" in fleet:
            shard_totals = [
                panels[shard]["total_iv"]
                for shard in sorted(panels)
                if "total_iv" in panels[shard]
            ]
            total = 0.0
            for value in shard_totals:
                total += value
            if shard_totals and fleet["total_iv"] != total:
                violations.append(Violation(
                    "fleet-iv-conservation", "fleet",
                    f"fleet total_iv={fleet['total_iv']!r} but the "
                    f"shard-order sum of per-shard totals is {total!r} "
                    f"(must be bit-exact)",
                ))

    def assert_clean(
        self, records: Sequence[TraceRecord], dropped: int = 0
    ) -> None:
        """Raise :class:`SimulationError` listing violations, if any."""
        violations = self.check(records, dropped=dropped)
        if violations:
            listing = "\n".join(str(violation) for violation in violations)
            raise SimulationError(
                f"trace failed {len(violations)} invariant check(s):\n{listing}"
            )

    def check_slo(
        self,
        records: Sequence[TraceRecord],
        rules: Sequence,
        window: float = 10.0,
        half_life: float = 10.0,
        qos_max_staleness: float | None = None,
    ) -> list[Violation]:
        """Audit SLO *coverage*: every breach the trace implies was alerted.

        Replays the non-alert records through a fresh
        :class:`~repro.obs.slo.SLOMonitor` (same rules and registry
        parameters as the live run) and compares the derived alert
        sequence against the ``alert.open`` / ``alert.close`` events the
        run actually emitted.  A breach with no matching open, an open
        with no corresponding breach, or mismatched open times are each a
        ``slo-coverage`` violation.
        """
        from repro.obs.slo import SLOMonitor

        expected = SLOMonitor.replay(
            records, rules, window=window, half_life=half_life,
            qos_max_staleness=qos_max_staleness,
        ).alerts
        actual_opens: dict[str, list[float]] = defaultdict(list)
        for record in records:
            if record.kind == events.ALERT_OPEN:
                actual_opens[record.detail.get("rule", "?")].append(record.time)
        violations: list[Violation] = []
        expected_by_rule: dict[str, list[float]] = defaultdict(list)
        for alert in expected:
            expected_by_rule[alert.rule].append(alert.opened_at)
        for rule_name in sorted(set(expected_by_rule) | set(actual_opens)):
            want = expected_by_rule.get(rule_name, [])
            got = actual_opens.get(rule_name, [])
            if want != got:
                violations.append(Violation(
                    "slo-coverage", f"slo:{rule_name}",
                    f"replay derives breaches opening at {want} but the "
                    f"trace alerted at {got}",
                ))
        return violations

    # -- grouping -----------------------------------------------------------

    def _group(
        self, records: Sequence[TraceRecord], violations: list[Violation]
    ) -> tuple[dict[int, list[TraceRecord]], dict[int, IVLedgerEntry]]:
        lifecycles: dict[int, list[TraceRecord]] = defaultdict(list)
        ledgers: dict[int, IVLedgerEntry] = {}
        for record in records:
            if record.kind not in events.QUERY_LIFECYCLE_KINDS:
                continue
            if record.kind == events.LEDGER:
                try:
                    entry = IVLedgerEntry.from_dict(record.detail)
                except (KeyError, TypeError):
                    violations.append(Violation(
                        "ledger-well-formed", record.subject,
                        "ledger record is missing required fields",
                    ))
                    continue
                if entry.query_id in ledgers:
                    violations.append(Violation(
                        "ledger-unique", record.subject,
                        f"duplicate ledger entry for qid {entry.query_id}",
                    ))
                ledgers[entry.query_id] = entry
                lifecycles[entry.query_id].append(record)
                continue
            qid = record.detail.get("qid")
            if qid is None:
                violations.append(Violation(
                    "qid-present", record.subject,
                    f"lifecycle event {record.kind!r} lacks a qid",
                ))
                continue
            lifecycles[qid].append(record)
        return dict(lifecycles), ledgers

    # -- rules ------------------------------------------------------------------

    def _check_global_order(
        self, records: Sequence[TraceRecord], violations: list[Violation]
    ) -> None:
        last = None
        for record in records:
            if last is not None and record.time < last:
                violations.append(Violation(
                    "time-monotonic", record.subject,
                    f"record at {record.time} after {last}",
                ))
            last = record.time

    def _check_lifecycle(
        self,
        qid: int,
        records: list[TraceRecord],
        violations: list[Violation],
    ) -> None:
        subject = records[0].subject if records else f"qid:{qid}"
        last_rank = -1
        last_kind = None
        counts: dict[str, int] = defaultdict(int)
        site_granted: dict[int, int] = defaultdict(int)
        site_started: dict[int, int] = defaultdict(int)
        for record in records:
            rank = _RANK[record.kind]
            counts[record.kind] += 1
            if rank < last_rank:
                violations.append(Violation(
                    "causal-order", subject,
                    f"{record.kind!r} (qid {qid}) after {last_kind!r}",
                ))
            last_rank = max(last_rank, rank)
            last_kind = record.kind
            site = record.detail.get("site")
            if record.kind == events.LEG_START and site is not None:
                site_started[site] += 1
            elif record.kind == events.LEG_GRANTED and site is not None:
                if site_started[site] == 0:
                    violations.append(Violation(
                        "leg-order", subject,
                        f"leg granted at site {site} before any leg.start",
                    ))
                site_granted[site] += 1
            elif record.kind == events.LEG_DONE and site is not None:
                if site_granted[site] == 0:
                    violations.append(Violation(
                        "leg-order", subject,
                        f"leg done at site {site} before any grant",
                    ))
        for kind in (events.SUBMIT, events.PLAN, events.COMPLETE, events.FAILED):
            if counts[kind] > 1:
                violations.append(Violation(
                    "event-unique", subject,
                    f"{counts[kind]} {kind!r} events for qid {qid}",
                ))
        if counts[events.COMPLETE] and counts[events.FAILED]:
            violations.append(Violation(
                "event-unique", subject,
                f"qid {qid} both completed and failed",
            ))

    def _check_ledger(
        self,
        entry: IVLedgerEntry,
        records: list[TraceRecord],
        violations: list[Violation],
    ) -> None:
        subject = f"{entry.query}#{entry.query_id}"

        # IV-ledger consistency: the headline bit-identity invariant.
        recomputed = entry.recompute_iv()
        if recomputed != entry.reported_iv:
            violations.append(Violation(
                "iv-recompute", subject,
                f"ledger recomputes IV {recomputed!r} but the run reported "
                f"{entry.reported_iv!r}",
            ))
        if entry.failed and entry.reported_iv != 0.0:
            violations.append(Violation(
                "iv-failed-zero", subject,
                f"failed query reported IV {entry.reported_iv!r}",
            ))

        # Timestamps delimit the phases in order.
        stamps = [
            ("submitted_at", entry.submitted_at),
            ("started_at", entry.started_at),
            ("remote_done_at", entry.remote_done_at),
            ("local_granted_at", entry.local_granted_at),
            ("local_done_at", entry.local_done_at),
            ("completed_at", entry.completed_at),
        ]
        for (earlier, t0), (later, t1) in zip(stamps, stamps[1:]):
            if t1 < t0:
                violations.append(Violation(
                    "phase-order", subject, f"{later} {t1} before {earlier} {t0}",
                ))

        cl = entry.computational_latency
        if not entry.failed:
            # Latency conservation: phases must sum back to CL.
            drift = abs(cl - entry.phase_sum)
            if drift > self.tolerance * max(1.0, abs(cl)):
                violations.append(Violation(
                    "cl-conservation", subject,
                    f"CL {cl!r} != phase sum {entry.phase_sum!r} "
                    f"(drift {drift:.3e})",
                ))
            queue_span = entry.local_granted_at - entry.remote_done_at
            if abs(entry.queue_wait - queue_span) > self.tolerance * max(
                1.0, abs(queue_span)
            ):
                violations.append(Violation(
                    "queue-wait", subject,
                    f"queue_wait {entry.queue_wait!r} but timestamps span "
                    f"{queue_span!r}",
                ))

        # SL provenance: the stalest realized version decides SL.
        if entry.versions:
            stalest = min(
                version.realized_freshness for version in entry.versions
            )
            if entry.data_timestamp != stalest:
                violations.append(Violation(
                    "sl-provenance", subject,
                    f"data_timestamp {entry.data_timestamp!r} != stalest "
                    f"realized freshness {stalest!r}",
                ))
            for version in entry.versions:
                if version.kind not in ("base", "replica"):
                    violations.append(Violation(
                        "sl-provenance", subject,
                        f"{version.table}: unknown version kind {version.kind!r}",
                    ))
                if version.realized_freshness > entry.completed_at:
                    violations.append(Violation(
                        "sl-provenance", subject,
                        f"{version.table}: realized freshness "
                        f"{version.realized_freshness!r} after completion",
                    ))
                if (
                    version.kind == "replica"
                    and version.last_sync_at is not None
                    and version.last_sync_at != version.realized_freshness
                ):
                    violations.append(Violation(
                        "sl-provenance", subject,
                        f"{version.table}: last_sync_at disagrees with "
                        f"realized freshness",
                    ))

        # The event stream and the ledger must tell the same story.
        by_kind = {record.kind: record for record in records}
        submit = by_kind.get(events.SUBMIT)
        if submit is not None and submit.time != entry.submitted_at:
            violations.append(Violation(
                "event-ledger-agree", subject,
                f"submit event at {submit.time!r} but ledger says "
                f"{entry.submitted_at!r}",
            ))
        complete = by_kind.get(events.COMPLETE)
        if complete is not None:
            if complete.time != entry.completed_at:
                violations.append(Violation(
                    "event-ledger-agree", subject,
                    f"complete event at {complete.time!r} but ledger says "
                    f"{entry.completed_at!r}",
                ))
            for key, expected in (
                ("iv", entry.reported_iv),
                ("cl", cl),
                ("sl", entry.synchronization_latency),
            ):
                observed = complete.detail.get(key)
                if observed is not None and observed != expected:
                    violations.append(Violation(
                        "event-ledger-agree", subject,
                        f"complete event {key}={observed!r} but ledger "
                        f"implies {expected!r}",
                    ))

    def _check_completeness(
        self,
        lifecycles: dict[int, list[TraceRecord]],
        ledgers: dict[int, IVLedgerEntry],
        violations: list[Violation],
    ) -> None:
        if not self.require_complete:
            return
        for qid, records in sorted(lifecycles.items()):
            kinds = {record.kind for record in records}
            subject = records[0].subject
            if events.SUBMIT in kinds and not (
                {events.COMPLETE, events.FAILED} & kinds
            ):
                violations.append(Violation(
                    "query-completes", subject,
                    f"qid {qid} was submitted but never completed or failed",
                ))
            if events.EXEC_START in kinds and qid not in ledgers:
                violations.append(Violation(
                    "ledger-present", subject,
                    f"qid {qid} executed without an audit ledger entry",
                ))

    def _check_online(
        self, records: Sequence[TraceRecord], violations: list[Violation]
    ) -> None:
        """Online-MQO invariants: window ordering and admission consistency.

        * **window-monotonic** — ``mqo.window`` indices strictly increase;
        * **admit-unique** / **shed-unique** — a query is admitted at most
          once per admission (re-queues are flagged ``requeued``) and shed
          at most once, never both;
        * **window-order-admitted** — every query a window orders was
          admitted before that window record;
        * **shed-no-exec** — a shed query never starts executing.
        """
        last_window = -1
        admitted: set[int] = set()
        shed: set[int] = set()
        executed: set[int] = set()
        for record in records:
            if record.kind == events.MQO_WINDOW:
                index = record.detail.get("index", -1)
                if index <= last_window:
                    violations.append(Violation(
                        "window-monotonic", record.subject,
                        f"window index {index} after {last_window}",
                    ))
                last_window = max(last_window, index)
                for qid in record.detail.get("order", []):
                    if qid not in admitted:
                        violations.append(Violation(
                            "window-order-admitted", record.subject,
                            f"window orders qid {qid} before its admission",
                        ))
            elif record.kind == events.MQO_ADMIT:
                qid = record.detail.get("qid")
                if qid in shed:
                    violations.append(Violation(
                        "admit-shed-exclusive", record.subject,
                        f"qid {qid} admitted after being shed",
                    ))
                if qid in admitted and not record.detail.get("requeued"):
                    violations.append(Violation(
                        "admit-unique", record.subject,
                        f"qid {qid} admitted twice",
                    ))
                admitted.add(qid)
            elif record.kind == events.MQO_SHED:
                qid = record.detail.get("qid")
                if qid in shed:
                    violations.append(Violation(
                        "shed-unique", record.subject,
                        f"qid {qid} shed twice",
                    ))
                if qid in admitted:
                    violations.append(Violation(
                        "admit-shed-exclusive", record.subject,
                        f"qid {qid} shed after being admitted",
                    ))
                shed.add(qid)
            elif record.kind in (events.EXEC_START, events.COMPLETE):
                qid = record.detail.get("qid")
                if qid is not None:
                    executed.add(qid)
        for qid in sorted(shed & executed):
            violations.append(Violation(
                "shed-no-exec", f"qid:{qid}",
                f"qid {qid} was shed by admission control but executed",
            ))

    def _check_alerts(
        self, records: Sequence[TraceRecord], violations: list[Violation]
    ) -> None:
        """SLO alert invariants.

        * **alert-alternation** — per rule subject, ``alert.open`` and
          ``alert.close`` strictly alternate starting with an open, and
          no alert is left open at end of trace (prefix-sensitive: a
          close whose open was evicted is excused when drops occurred);
        * **alert-well-formed** — every alert event names its rule,
          metric, value and thresholds;
        * **alert-window** — the windows reference real times inside the
          trace: an open's ``since`` is when the breach began (≤ the open
          time, within the trace span) and a close's ``opened_at`` equals
          the matching open event's time.
        """
        open_at: dict[str, float | None] = {}
        span_start = records[0].time if records else 0.0
        for record in records:
            if record.kind not in events.ALERT_KINDS:
                continue
            for key in ("rule", "metric", "value", "threshold", "clear"):
                if key not in record.detail:
                    violations.append(Violation(
                        "alert-well-formed", record.subject,
                        f"{record.kind!r} event lacks {key!r}",
                    ))
            previous = open_at.get(record.subject)
            if record.kind == events.ALERT_OPEN:
                if previous is not None:
                    violations.append(Violation(
                        "alert-alternation", record.subject,
                        f"alert opened at {record.time} while already open "
                        f"since {previous}",
                    ))
                open_at[record.subject] = record.time
                since = record.detail.get("since")
                if since is not None and not (
                    span_start <= since <= record.time
                ):
                    violations.append(Violation(
                        "alert-window", record.subject,
                        f"open at {record.time} references breach start "
                        f"{since} outside the trace window",
                    ))
            else:  # ALERT_CLOSE
                if previous is None:
                    violations.append(Violation(
                        "alert-alternation", record.subject,
                        f"alert closed at {record.time} without being open",
                    ))
                else:
                    opened_at = record.detail.get("opened_at")
                    if opened_at is not None and opened_at != previous:
                        violations.append(Violation(
                            "alert-window", record.subject,
                            f"close references open at {opened_at} but the "
                            f"open event was at {previous}",
                        ))
                open_at[record.subject] = None
        # A run must not end mid-breach: every open needs a matching close
        # (SLOMonitor.finalize emits audited final closes at shutdown).
        for subject in sorted(open_at):
            opened = open_at[subject]
            if opened is not None:
                violations.append(Violation(
                    "alert-alternation", subject,
                    f"alert opened at {opened} is still open at end of "
                    f"trace (missing alert.close — finalize() not called?)",
                ))

    def _check_durability(
        self, records: Sequence[TraceRecord], violations: list[Violation]
    ) -> None:
        """Checkpoint/resume invariants across a crash boundary.

        * **resume-pops-monotonic** — every ``durable.resume`` carries the
          pop count it recovered to; successive resumes (and the
          checkpoints between them) must advance strictly, or a resume
          silently rewound history;
        * **resume-covers-checkpoint** — a resume must have replayed at
          least to the last checkpoint journaled before the crash;
        * **resume-no-resurrection** — a query that completed before a
          crash boundary must not start, complete or re-enter the system
          after it: recovery replays history, it does not re-execute it.
        """
        last_resume_pops = -1
        last_checkpoint_pops = -1
        completed: set[int] = set()
        for record in records:
            if record.kind == events.CHECKPOINT:
                pops = record.detail.get("pops", -1)
                if pops < last_checkpoint_pops:
                    violations.append(Violation(
                        "resume-pops-monotonic", record.subject,
                        f"checkpoint at pop {pops} after one at "
                        f"{last_checkpoint_pops}",
                    ))
                last_checkpoint_pops = max(last_checkpoint_pops, pops)
            elif record.kind == events.RESUME:
                pops = record.detail.get("pops", -1)
                if pops <= last_resume_pops:
                    violations.append(Violation(
                        "resume-pops-monotonic", record.subject,
                        f"resume at pop {pops} after a resume at "
                        f"{last_resume_pops}",
                    ))
                if pops < last_checkpoint_pops:
                    violations.append(Violation(
                        "resume-covers-checkpoint", record.subject,
                        f"resume replayed to pop {pops} but a checkpoint "
                        f"was journaled at pop {last_checkpoint_pops}",
                    ))
                last_resume_pops = max(last_resume_pops, pops)
            elif record.kind in (events.COMPLETE, events.FAILED):
                qid = record.detail.get("qid")
                if qid is not None:
                    completed.add(qid)
            elif (
                record.kind in (events.SUBMIT, events.EXEC_START)
                and last_resume_pops >= 0
            ):
                qid = record.detail.get("qid")
                if qid is not None and qid in completed:
                    violations.append(Violation(
                        "resume-no-resurrection", record.subject,
                        f"qid {qid} completed before the resume boundary "
                        f"but {record.kind!r} reappears after it",
                    ))

    def _check_faults(
        self, records: Sequence[TraceRecord], violations: list[Violation]
    ) -> None:
        # Outage edges must alternate down/up per site.
        state: dict[str, str] = {}
        for record in records:
            if record.kind not in (events.FAULT_DOWN, events.FAULT_UP):
                continue
            previous = state.get(record.subject)
            if previous == record.kind:
                violations.append(Violation(
                    "fault-alternation", record.subject,
                    f"consecutive {record.kind!r} events",
                ))
            state[record.subject] = record.kind
