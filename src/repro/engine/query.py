"""Logical query representation for the mini engine.

A :class:`LogicalQuery` is a select-project-join-aggregate block: a set of
aliased tables, a conjunctive predicate list (equi-join terms are detected
automatically), optional grouping/aggregation, projection, ordering and a
limit.  It deliberately covers exactly the shape of the TPC-H workload the
paper evaluates — multi-way equi-joins with filters and aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expr import Col, Compare, Expr
from repro.engine.ops import AggSpec
from repro.errors import EngineError

__all__ = ["LogicalQuery", "QueryBuilder"]


@dataclass(frozen=True)
class LogicalQuery:
    """An SPJA query block over aliased tables."""

    name: str
    tables: tuple[tuple[str, str], ...]  # (alias, table_name)
    predicates: tuple[Expr, ...] = ()
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggSpec, ...] = ()
    projections: tuple[tuple[str, Expr], ...] = ()
    order_by: tuple[str, ...] = ()
    descending: bool = False
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise EngineError(f"query {self.name!r} references no tables")
        aliases = [alias for alias, _name in self.tables]
        if len(set(aliases)) != len(aliases):
            raise EngineError(f"query {self.name!r} has duplicate aliases")
        if self.aggregates and self.projections:
            raise EngineError(
                f"query {self.name!r}: use aggregates or projections, not both"
            )

    @property
    def aliases(self) -> tuple[str, ...]:
        """All table aliases in declaration order."""
        return tuple(alias for alias, _name in self.tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        """All referenced base-table names (with duplicates removed)."""
        seen: list[str] = []
        for _alias, name in self.tables:
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def table_for_alias(self, alias: str) -> str:
        """The base-table name behind an alias."""
        for candidate, name in self.tables:
            if candidate == alias:
                return name
        raise EngineError(f"query {self.name!r} has no alias {alias!r}")

    def join_terms(self) -> list[Compare]:
        """The equi-join predicates among :attr:`predicates`."""
        return [
            pred
            for pred in self.predicates
            if isinstance(pred, Compare) and pred.is_equi_join
        ]

    def filter_terms(self) -> list[Expr]:
        """Predicates that are not equi-joins (single-table filters etc.)."""
        joins = set(map(id, self.join_terms()))
        return [pred for pred in self.predicates if id(pred) not in joins]

    def filters_for_alias(self, alias: str) -> list[Expr]:
        """Filter terms that reference only the given alias."""
        selected = []
        for pred in self.filter_terms():
            referenced = {qualified.split(".", 1)[0] for qualified in pred.columns()}
            if referenced == {alias}:
                selected.append(pred)
        return selected


@dataclass
class QueryBuilder:
    """Fluent builder for :class:`LogicalQuery`.

    Example::

        query = (
            QueryBuilder("revenue_by_nation")
            .table("orders", alias="o")
            .table("customer", alias="c")
            .where(Col("o.o_custkey") == Col("c.c_custkey"))
            .group("c.c_nationkey")
            .agg("sum", Col("o.o_totalprice"), "revenue")
            .build()
        )
    """

    name: str
    _tables: list[tuple[str, str]] = field(default_factory=list)
    _predicates: list[Expr] = field(default_factory=list)
    _group_by: list[str] = field(default_factory=list)
    _aggregates: list[AggSpec] = field(default_factory=list)
    _projections: list[tuple[str, Expr]] = field(default_factory=list)
    _order_by: list[str] = field(default_factory=list)
    _descending: bool = False
    _limit: int | None = None

    def table(self, table_name: str, alias: str | None = None) -> "QueryBuilder":
        """Add a table under an optional alias (defaults to its own name)."""
        self._tables.append((alias or table_name, table_name))
        return self

    def where(self, predicate: Expr) -> "QueryBuilder":
        """Add one conjunctive predicate."""
        self._predicates.append(predicate)
        return self

    def join(self, left: str, right: str) -> "QueryBuilder":
        """Shorthand for ``where(Col(left) == Col(right))``."""
        return self.where(Col(left) == Col(right))

    def group(self, *columns: str) -> "QueryBuilder":
        """Group by qualified columns."""
        self._group_by.extend(columns)
        return self

    def agg(self, func: str, expr: Expr | None, out: str) -> "QueryBuilder":
        """Add an aggregate output."""
        self._aggregates.append(AggSpec(func, expr, out))
        return self

    def select(self, out: str, expr: Expr) -> "QueryBuilder":
        """Add a plain projection output."""
        self._projections.append((out, expr))
        return self

    def order(self, *columns: str, descending: bool = False) -> "QueryBuilder":
        """Order the result."""
        self._order_by.extend(columns)
        self._descending = descending
        return self

    def take(self, n: int) -> "QueryBuilder":
        """Limit the result to ``n`` rows."""
        self._limit = n
        return self

    def build(self) -> LogicalQuery:
        """Freeze into an immutable :class:`LogicalQuery`."""
        return LogicalQuery(
            name=self.name,
            tables=tuple(self._tables),
            predicates=tuple(self._predicates),
            group_by=tuple(self._group_by),
            aggregates=tuple(self._aggregates),
            projections=tuple(self._projections),
            order_by=tuple(self._order_by),
            descending=self._descending,
            limit=self._limit,
        )
