"""Benchmark regression gate: re-run the committed snapshots and diff.

The repo commits point-in-time benchmark snapshots (``BENCH_mqo.json``,
``BENCH_faults.json``, ``BENCH_online.json``, ``BENCH_serve.json``,
``BENCH_scale.json``) written by the ``benchmarks/*_snapshot.py`` scripts.  ``python -m repro bench-gate``
re-runs those same workloads now, compares the fresh numbers against the
committed baselines, appends one JSONL line per snapshot to
``BENCH_history.jsonl`` (an append-only local record of how this machine
has been trending), and exits non-zero when anything *regressed*:

* **wall-clock metrics** (``*wall_seconds``, ``reopt_seconds``,
  ``*_ms``) regress when the fresh value exceeds ``baseline x
  wall_tolerance``.  Wall time is machine- and load-dependent, so the
  default tolerance is generous (:data:`DEFAULT_WALL_TOLERANCE`) and
  overridable via ``--wall-tolerance`` / the ``BENCH_GATE_TOLERANCE``
  environment variable;
* **throughput metrics** (``*_per_sec``) are wall-clock rates where
  *higher* is better: they regress when the fresh value drops below
  ``baseline / wall_tolerance``.  This is the scale sweep's ratchet —
  committing a faster ``BENCH_scale.json`` raises the floor;
* **memory metrics** (``*_rss_mb``) regress like wall time when the
  fresh peak exceeds ``baseline x wall_tolerance``;
* **IV metrics** (``best_fitness``, ``mean_iv``, everything under
  ``total_iv``) are produced by seeded, deterministic simulations —
  higher is better and any drop beyond a tiny relative ``iv_tolerance``
  is a correctness-grade regression, not noise.

Only those families gate; counter-style metrics (cache hits, realize
calls, …) are recorded in the history but deliberately not compared, so
legitimate algorithm changes don't trip the gate on bookkeeping.

A *schema* mismatch also fails the gate: when a gated metric exists on
only one side (a snapshot script grew or lost a field without its
committed baseline being refreshed), the verdict names the added/removed
keys and the ``make bench-<name>`` command that refreshes the baseline —
instead of silently gating a shrinking intersection of keys.
"""

from __future__ import annotations

import importlib.util
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError

__all__ = [
    "DEFAULT_WALL_TOLERANCE",
    "DEFAULT_IV_TOLERANCE",
    "Regression",
    "GateResult",
    "flatten_metrics",
    "classify",
    "key_mismatch",
    "compare",
    "run_gate",
    "render_gate",
]

#: Fresh wall time may be up to this multiple of the committed baseline.
DEFAULT_WALL_TOLERANCE = 3.0
#: Relative slack for deterministic IV metrics (catches real regressions,
#: forgives representation-level churn like JSON rounding).
DEFAULT_IV_TOLERANCE = 1e-6

#: Snapshot name -> (committed baseline, generating script).
SNAPSHOTS = {
    "mqo": ("BENCH_mqo.json", "benchmarks/mqo_snapshot.py"),
    "faults": ("BENCH_faults.json", "benchmarks/faults_snapshot.py"),
    "online": ("BENCH_online.json", "benchmarks/online_snapshot.py"),
    "serve": ("BENCH_serve.json", "benchmarks/serve_snapshot.py"),
    "scale": ("BENCH_scale.json", "benchmarks/scale_snapshot.py"),
}


@dataclass(frozen=True)
class Regression:
    """One gated metric that got worse."""

    snapshot: str
    metric: str       #: dotted path into the snapshot JSON
    kind: str         #: "wall", "throughput", "mem" or "iv"
    baseline: float
    current: float

    def __str__(self) -> str:
        direction = {"wall": "slower", "mem": "larger"}.get(self.kind, "lower")
        return (
            f"[{self.snapshot}] {self.metric}: {self.current:g} vs "
            f"baseline {self.baseline:g} ({direction})"
        )


@dataclass
class GateResult:
    """Outcome of gating one snapshot."""

    name: str
    baseline: dict
    current: dict
    regressions: list[Regression] = field(default_factory=list)
    added: list[str] = field(default_factory=list)     #: gated keys only in fresh
    removed: list[str] = field(default_factory=list)   #: gated keys only in baseline
    wall_seconds: float = 0.0    #: time spent re-running the benchmark

    @property
    def passed(self) -> bool:
        """Every gated metric held *and* baseline/fresh keys agree."""
        return not (self.regressions or self.added or self.removed)


def flatten_metrics(data: dict, prefix: str = "") -> dict[str, float]:
    """All numeric leaves of a snapshot as ``dotted.path -> value``."""
    flat: dict[str, float] = {}
    items = (
        data.items()
        if isinstance(data, dict)
        else enumerate(data)  # lists (e.g. the faults cells)
    )
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, (dict, list)):
            flat.update(flatten_metrics(value, path))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


def classify(path: str) -> str | None:
    """Which gate family a metric path belongs to (None = not gated)."""
    leaf = path.rsplit(".", 1)[-1]
    if "wall_seconds" in leaf or leaf == "reopt_seconds" or leaf.endswith("_ms"):
        return "wall"
    if leaf.endswith("_per_sec"):
        return "throughput"
    if leaf.endswith("_rss_mb"):
        return "mem"
    if leaf in ("best_fitness", "mean_iv") or "total_iv." in path:
        return "iv"
    return None


def key_mismatch(baseline: dict, current: dict) -> tuple[list[str], list[str]]:
    """Gated metric paths present on only one side: ``(added, removed)``.

    ``added`` keys exist only in the fresh snapshot (the generating script
    grew a field), ``removed`` only in the committed baseline (the script
    lost one).  Either way the baseline no longer describes what the
    script measures — the gate reports the drift explicitly instead of
    quietly comparing the shrinking intersection (or worse, blowing up
    with a raw ``KeyError`` in ad-hoc diff scripts).
    """
    base_flat = flatten_metrics(baseline)
    current_flat = flatten_metrics(current)
    added = sorted(
        path for path in current_flat
        if path not in base_flat and classify(path) is not None
    )
    removed = sorted(
        path for path in base_flat
        if path not in current_flat and classify(path) is not None
    )
    return added, removed


def compare(
    name: str,
    baseline: dict,
    current: dict,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    iv_tolerance: float = DEFAULT_IV_TOLERANCE,
) -> list[Regression]:
    """Diff two snapshots; every gated metric that got worse is returned.

    Wall and memory metrics regress when ``current > baseline *
    wall_tolerance``; throughput metrics (rates, higher is better) when
    ``current < baseline / wall_tolerance``; IV metrics when ``current <
    baseline * (1 - iv_tolerance)`` (higher is always better for the
    gated IV family).  Metrics present on only one side are not
    value-compared — :func:`key_mismatch` reports them and
    :attr:`GateResult.passed` fails on any drift.
    """
    if wall_tolerance < 1.0:
        raise ConfigError(
            f"wall tolerance must be >= 1.0 (a slowdown multiple), "
            f"got {wall_tolerance}"
        )
    if iv_tolerance < 0.0:
        raise ConfigError(f"iv tolerance must be >= 0, got {iv_tolerance}")
    base_flat = flatten_metrics(baseline)
    current_flat = flatten_metrics(current)
    regressions: list[Regression] = []
    for path in sorted(base_flat):
        if path not in current_flat:
            continue
        kind = classify(path)
        if kind is None:
            continue
        base_value = base_flat[path]
        current_value = current_flat[path]
        if kind in ("wall", "mem"):
            if current_value > base_value * wall_tolerance:
                regressions.append(Regression(
                    name, path, kind, base_value, current_value
                ))
        elif kind == "throughput":
            if current_value < base_value / wall_tolerance:
                regressions.append(Regression(
                    name, path, "throughput", base_value, current_value
                ))
        elif current_value < base_value * (1.0 - iv_tolerance):
            regressions.append(Regression(
                name, path, "iv", base_value, current_value
            ))
    return regressions


def _load_snapshot_callable(script: Path):
    """Import a ``benchmarks/*_snapshot.py`` script and return ``snapshot``."""
    spec = importlib.util.spec_from_file_location(script.stem, script)
    if spec is None or spec.loader is None:  # pragma: no cover - fs corruption
        raise ConfigError(f"cannot import snapshot script {script}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "snapshot"):
        raise ConfigError(f"{script} does not define snapshot()")
    return module.snapshot


def run_gate(
    names: list[str] | None = None,
    root: str | Path = ".",
    wall_tolerance: float | None = None,
    iv_tolerance: float = DEFAULT_IV_TOLERANCE,
    history_path: str | Path | None = "BENCH_history.jsonl",
) -> list[GateResult]:
    """Re-run the named snapshots (default: all) and gate each one.

    ``wall_tolerance`` falls back to the ``BENCH_GATE_TOLERANCE``
    environment variable and then :data:`DEFAULT_WALL_TOLERANCE`.  When
    ``history_path`` is set, one JSONL line per snapshot is appended with
    the fresh metrics and any regressions.
    """
    root = Path(root)
    if wall_tolerance is None:
        wall_tolerance = float(
            os.environ.get("BENCH_GATE_TOLERANCE", DEFAULT_WALL_TOLERANCE)
        )
    names = list(SNAPSHOTS) if names is None else names
    results: list[GateResult] = []
    for name in names:
        try:
            baseline_file, script = SNAPSHOTS[name]
        except KeyError:
            raise ConfigError(
                f"unknown snapshot {name!r}; expected one of {sorted(SNAPSHOTS)}"
            )
        baseline_file = root / baseline_file
        if not baseline_file.exists():
            raise ConfigError(
                f"committed baseline {baseline_file} is missing; run the "
                f"matching `make bench-{name}` first"
            )
        baseline = json.loads(baseline_file.read_text())
        build = _load_snapshot_callable(root / script)
        started = time.perf_counter()
        current = build()
        elapsed = time.perf_counter() - started
        added, removed = key_mismatch(baseline, current)
        result = GateResult(
            name=name,
            baseline=baseline,
            current=current,
            regressions=compare(
                name, baseline, current,
                wall_tolerance=wall_tolerance, iv_tolerance=iv_tolerance,
            ),
            added=added,
            removed=removed,
            wall_seconds=elapsed,
        )
        results.append(result)
        if history_path is not None:
            _append_history(root / history_path, result, wall_tolerance)
    return results


def _append_history(
    path: Path, result: GateResult, wall_tolerance: float
) -> None:
    line = {
        "at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "snapshot": result.name,
        "wall_tolerance": wall_tolerance,
        "passed": result.passed,
        "metrics": flatten_metrics(result.current),
        "regressions": [str(regression) for regression in result.regressions],
        "added": result.added,
        "removed": result.removed,
    }
    with open(path, "a") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")


def render_gate(results: list[GateResult]) -> str:
    """Human-readable gate report (one section per snapshot)."""
    lines: list[str] = []
    for result in results:
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(
            f"== bench-gate {result.name}: {verdict} "
            f"(re-ran in {result.wall_seconds:.1f}s) =="
        )
        base_flat = flatten_metrics(result.baseline)
        current_flat = flatten_metrics(result.current)
        for path in sorted(base_flat):
            kind = classify(path)
            if kind is None or path not in current_flat:
                continue
            base_value, current_value = base_flat[path], current_flat[path]
            ratio = (
                current_value / base_value if base_value else float("inf")
            )
            lines.append(
                f"  {kind:<4} {path:<44} {base_value:>12.4f} -> "
                f"{current_value:>12.4f}  (x{ratio:.2f})"
            )
        for path in result.added:
            lines.append(
                f"  MISMATCH +{path} (in fresh snapshot, not in baseline)"
            )
        for path in result.removed:
            lines.append(
                f"  MISMATCH -{path} (in baseline, not in fresh snapshot)"
            )
        if result.added or result.removed:
            baseline_file, script = SNAPSHOTS.get(
                result.name, (f"BENCH_{result.name}.json", "its snapshot script")
            )
            lines.append(
                f"  baseline {baseline_file} is out of sync with {script}; "
                f"refresh it via `make bench-{result.name}` and commit the "
                f"result"
            )
        for regression in result.regressions:
            lines.append(f"  REGRESSION {regression}")
    return "\n".join(lines)
