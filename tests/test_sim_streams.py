"""Unit and property tests: random variate streams."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.rng import RandomSource
from repro.sim.streams import (
    DeterministicStream,
    EmpiricalStream,
    ErlangStream,
    ExponentialStream,
    HyperExponentialStream,
    NormalStream,
    UniformStream,
)


def make_source(seed=1):
    return RandomSource(seed, "streams")


class TestValidation:
    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ConfigError):
            ExponentialStream(0.0, make_source())

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ConfigError):
            UniformStream(5.0, 1.0, make_source())

    def test_uniform_rejects_negative_bounds(self):
        with pytest.raises(ConfigError):
            UniformStream(-1.0, 1.0, make_source())

    def test_erlang_rejects_zero_stages(self):
        with pytest.raises(ConfigError):
            ErlangStream(1.0, 0, make_source())

    def test_hyperexp_rejects_bad_probability(self):
        with pytest.raises(ConfigError):
            HyperExponentialStream(1.0, 2.0, 1.5, make_source())

    def test_deterministic_rejects_negative(self):
        with pytest.raises(ConfigError):
            DeterministicStream(-1.0)

    def test_empirical_rejects_empty(self):
        with pytest.raises(ConfigError):
            EmpiricalStream([], make_source())


class TestDistributions:
    def test_exponential_mean_converges(self):
        stream = ExponentialStream(4.0, make_source())
        samples = [stream.sample() for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(4.0, rel=0.05)

    def test_uniform_bounds_respected(self):
        stream = UniformStream(2.0, 5.0, make_source())
        samples = [stream.sample() for _ in range(2_000)]
        assert all(2.0 <= s <= 5.0 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(3.5, rel=0.05)

    def test_normal_truncates_at_zero(self):
        stream = NormalStream(1.0, 3.0, make_source())
        samples = [stream.sample() for _ in range(5_000)]
        assert all(s >= 0 for s in samples)

    def test_erlang_mean_and_lower_variance(self):
        source = make_source()
        erlang = ErlangStream(4.0, 4, source.spawn("erl"))
        expo = ExponentialStream(4.0, source.spawn("exp"))
        erl_samples = [erlang.sample() for _ in range(10_000)]
        exp_samples = [expo.sample() for _ in range(10_000)]
        erl_mean = sum(erl_samples) / len(erl_samples)
        assert erl_mean == pytest.approx(4.0, rel=0.05)

        def variance(xs):
            mean = sum(xs) / len(xs)
            return sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)

        assert variance(erl_samples) < variance(exp_samples)

    def test_hyperexponential_mean(self):
        stream = HyperExponentialStream(1.0, 10.0, 0.7, make_source())
        assert stream.mean == pytest.approx(0.7 * 1.0 + 0.3 * 10.0)
        samples = [stream.sample() for _ in range(30_000)]
        assert sum(samples) / len(samples) == pytest.approx(stream.mean, rel=0.07)

    def test_deterministic_is_constant(self):
        stream = DeterministicStream(2.5)
        assert [stream.sample() for _ in range(5)] == [2.5] * 5

    def test_empirical_draws_from_sample(self):
        values = [1.0, 2.0, 3.0]
        stream = EmpiricalStream(values, make_source())
        assert all(stream.sample() in values for _ in range(100))
        assert stream.mean == pytest.approx(2.0)

    def test_count_tracks_draws(self):
        stream = ExponentialStream(1.0, make_source())
        for _ in range(7):
            stream.sample()
        assert stream.count == 7

    def test_iteration_protocol(self):
        stream = DeterministicStream(1.0)
        iterator = iter(stream)
        assert [next(iterator) for _ in range(3)] == [1.0, 1.0, 1.0]


class TestReproducibility:
    def test_same_seed_same_sequence(self):
        a = ExponentialStream(2.0, RandomSource(9, "x"))
        b = ExponentialStream(2.0, RandomSource(9, "x"))
        assert [a.sample() for _ in range(10)] == [b.sample() for _ in range(10)]

    def test_different_substreams_are_independent(self):
        root = RandomSource(9)
        a = ExponentialStream(2.0, root.spawn("a"))
        b = ExponentialStream(2.0, root.spawn("b"))
        assert [a.sample() for _ in range(5)] != [b.sample() for _ in range(5)]

    def test_spawn_is_cached(self):
        root = RandomSource(1)
        assert root.spawn("child") is root.spawn("child")

    def test_adding_stream_does_not_perturb_existing(self):
        root1 = RandomSource(4)
        a1 = ExponentialStream(1.0, root1.spawn("a"))
        first = [a1.sample() for _ in range(5)]

        root2 = RandomSource(4)
        _extra = ExponentialStream(1.0, root2.spawn("zzz"))
        a2 = ExponentialStream(1.0, root2.spawn("a"))
        assert [a2.sample() for _ in range(5)] == first


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=0.01, max_value=1000.0),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_exponential_samples_are_nonnegative_and_finite(mean, seed):
    stream = ExponentialStream(mean, RandomSource(seed, "prop"))
    for _ in range(20):
        value = stream.sample()
        assert value >= 0.0
        assert math.isfinite(value)


@settings(max_examples=50, deadline=None)
@given(
    low=st.floats(min_value=0.0, max_value=100.0),
    span=st.floats(min_value=0.0, max_value=100.0),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_uniform_samples_stay_in_bounds(low, span, seed):
    stream = UniformStream(low, low + span, RandomSource(seed, "prop"))
    for _ in range(20):
        value = stream.sample()
        assert low <= value <= low + span + 1e-9
