"""Replay routing: execute precomputed plans verbatim.

A :class:`ReplayRouter` hands the executor plans chosen earlier — by the
MQO scheduler, a routing table, or a recorded run — instead of optimizing
at submission time.  This is how an MQO decision (an analytic schedule) is
realized inside the discrete-event simulation, and how the tests
cross-validate the analytic evaluator against the DES.
"""

from __future__ import annotations

import typing

from repro.core.plan import QueryPlan
from repro.errors import PlanError

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery

__all__ = ["ReplayRouter"]


class ReplayRouter:
    """Routes each query to a fixed, precomputed plan."""

    def __init__(self, plans: dict["DSSQuery", QueryPlan]) -> None:
        for query, plan in plans.items():
            if plan.query is not query:
                raise PlanError(
                    f"plan for {query.name!r} was built for a different "
                    "query object"
                )
        self._plans = dict(plans)

    @classmethod
    def from_assignments(
        cls, assignments, enforce_schedule: bool = False
    ) -> "ReplayRouter":
        """Build from MQO :class:`~repro.mqo.evaluator.Assignment` objects.

        With ``enforce_schedule=True`` each plan's start time is lifted to
        the assignment's scheduled ``begin``, so a discrete-event run
        honours the decided execution *order* instead of racing queries
        into the server queues at their arrival instants.  Without it, the
        recorded plans keep their own (possibly earlier) start times.
        """
        import dataclasses

        plans: dict = {}
        for assignment in assignments:
            plan = assignment.plan
            if enforce_schedule and assignment.begin > plan.start_time:
                plan = dataclasses.replace(plan, start_time=assignment.begin)
            plans[assignment.query] = plan
        return cls(plans)

    def choose_plan(self, query: "DSSQuery", submitted_at: float) -> QueryPlan:
        """The recorded plan; submission must not precede the plan's."""
        plan = self._plans.get(query)
        if plan is None:
            raise PlanError(f"no recorded plan for query {query.name!r}")
        if submitted_at > plan.start_time + 1e-9:
            raise PlanError(
                f"replaying {query.name!r} at t={submitted_at} but its plan "
                f"starts at t={plan.start_time}"
            )
        return plan
