"""Unit tests: the simulation tracer and its system integration."""

from __future__ import annotations

import pytest

from repro.core.value import DiscountRates
from repro.errors import SimulationError
from repro.sim.trace import TraceRecord, Tracer


class TestTracer:
    def make(self, capacity=None):
        clock = [0.0]
        tracer = Tracer(lambda: clock[0], capacity=capacity)
        return clock, tracer

    def test_emit_records_time_and_detail(self):
        clock, tracer = self.make()
        clock[0] = 3.5
        tracer.emit("submit", "Q1", priority=2)
        record = tracer.records[0]
        assert record.time == 3.5
        assert record.kind == "submit"
        assert record.subject == "Q1"
        assert record.detail == {"priority": 2}

    def test_disabled_tracer_records_nothing(self):
        _clock, tracer = self.make()
        tracer.enabled = False
        tracer.emit("x", "y")
        assert len(tracer) == 0

    def test_capacity_evicts_oldest(self):
        clock, tracer = self.make(capacity=2)
        for index in range(4):
            clock[0] = float(index)
            tracer.emit("tick", str(index))
        assert len(tracer) == 2
        assert tracer.dropped == 2
        assert [record.subject for record in tracer.records] == ["2", "3"]

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Tracer(lambda: 0.0, capacity=0)

    def test_filter_by_kind_subject_and_window(self):
        clock, tracer = self.make()
        for time, kind, subject in (
            (1.0, "submit", "Q1"),
            (2.0, "complete", "Q1"),
            (3.0, "submit", "Q2"),
        ):
            clock[0] = time
            tracer.emit(kind, subject)
        assert len(list(tracer.filter(kind="submit"))) == 2
        assert len(list(tracer.filter(subject="Q1"))) == 2
        assert len(list(tracer.filter(since=2.0, until=3.0))) == 2
        assert len(list(tracer.filter(kind="submit", subject="Q2"))) == 1

    def test_timeline_renders_lines(self):
        clock, tracer = self.make()
        clock[0] = 1.25
        tracer.emit("sync", "orders", at=1.25)
        text = tracer.timeline()
        assert "sync" in text
        assert "orders" in text
        assert "at=1.25" in text

    def test_timeline_notes_drops(self):
        clock, tracer = self.make(capacity=1)
        tracer.emit("a", "1")
        tracer.emit("b", "2")
        assert "dropped" in tracer.timeline()

    def test_clear(self):
        _clock, tracer = self.make()
        tracer.emit("x", "y")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_record_format(self):
        record = TraceRecord(2.0, "plan", "Q3", {"remote": "a,b"})
        text = record.format()
        assert "plan" in text
        assert "remote=a,b" in text


class TestSystemTracing:
    def test_traced_system_records_lifecycle(self):
        from repro.baselines import ivqp_router
        from repro.federation.system import (
            SystemConfig,
            TableSpec,
            build_system,
        )
        from repro.workload.query import DSSQuery

        config = SystemConfig(
            tables=[
                TableSpec("a", site=0, row_count=1_000),
                TableSpec("b", site=1, row_count=2_000),
            ],
            replicated=["a"],
            sync_mode="periodic",
            sync_mean_interval=4.0,
            rates=DiscountRates(0.02, 0.02),
            trace=True,
            seed=2,
        )
        system = build_system(config, ivqp_router)
        system.submit(DSSQuery(query_id=1, name="q", tables=("a", "b")), at=9.0)
        system.run()

        tracer = system.tracer
        assert tracer is not None
        kinds = [record.kind for record in tracer.records]
        assert "submit" in kinds
        assert "plan" in kinds
        assert "complete" in kinds
        assert "sync" in kinds
        # Causal ordering for the query's own lifecycle.
        q_events = list(tracer.filter(subject="q"))
        assert [record.kind for record in q_events] == [
            "submit", "plan", "complete",
        ]
        times = [record.time for record in q_events]
        assert times == sorted(times)

    def test_untraced_system_has_no_tracer(self):
        from repro.baselines import federation_router
        from repro.federation.system import (
            SystemConfig,
            TableSpec,
            build_system,
        )

        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=100)],
            replicated=[],
        )
        system = build_system(config, federation_router)
        assert system.tracer is None
