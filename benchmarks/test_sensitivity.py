"""EXT1 — routing-decision sensitivity (the paper's Figures 1–2, measured).

Asserts the qualitative flips the paper argues for:

* Figure 1 scenario (stale replicas, no imminent rescue): small λ_CL with
  large λ_SL routes to remote base tables; the reverse routes to replicas.
* Figure 2 scenario (synchronization imminent): larger λ_SL than λ_CL makes
  the delayed plan win; the reverse executes immediately from replicas.
"""

from __future__ import annotations

from repro.experiments.sensitivity import SensitivityConfig, run_sensitivity


def _grid(table, scenario):
    return {
        (row[1], row[2]): row[3]
        for row in table.rows
        if row[0] == scenario
    }


def test_sensitivity_phase_diagram(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_sensitivity(SensitivityConfig()), rounds=1, iterations=1
    )
    show(table.render())

    fig1 = _grid(table, "fig1")
    fig2 = _grid(table, "fig2")

    # Figure 1's trade-off: freshness-hungry users go remote, latency-hungry
    # users use the replicas.
    assert fig1[(0.005, 0.2)] == "all-remote"
    assert fig1[(0.2, 0.005)] == "all-replica"
    # The boundary is monotone along the diagonal: once λ_CL dominates,
    # increasing it further never flips back to remote.
    for rate_sl in (0.005, 0.01, 0.02):
        kinds = [fig1[(rate_cl, rate_sl)] for rate_cl in (0.005, 0.05, 0.2)]
        if "all-replica" in kinds:
            first = kinds.index("all-replica")
            assert all(kind == "all-replica" for kind in kinds[first:])

    # Figure 2's trade-off: an imminent sync is worth waiting for exactly
    # when synchronization decay outweighs computational decay.
    assert fig2[(0.005, 0.2)] == "delayed"
    assert fig2[(0.2, 0.005)] == "all-replica"

    # Every decision in the sweep is one of the four known kinds.
    for kind in list(fig1.values()) + list(fig2.values()):
        assert kind in {"all-remote", "all-replica", "mixed", "delayed"}
