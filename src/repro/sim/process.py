"""Generator-based simulation processes.

A process wraps a Python generator.  Each ``yield``-ed value must be an
:class:`~repro.sim.event.Event`; the process suspends until that event fires
and resumes with the event's value (or the event's exception thrown into the
generator, allowing ``try/except`` around waits).

A :class:`Process` is itself an event that fires when the generator returns,
so processes can wait on each other — the idiom the federation executor uses
to join the per-site legs of a distributed query.
"""

from __future__ import annotations

import typing
from collections.abc import Generator

from repro.errors import ProcessError
from repro.sim.event import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process that another entity interrupted."""

    def __init__(self, cause=None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation activity driven by a generator."""

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not isinstance(generator, Generator):
            raise ProcessError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name or generator.__name__)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick the process off at the current instant.
        bootstrap = Event(sim, name=f"init:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        waited = self._waiting_on
        if waited is not None and not waited.triggered:
            # Detach from the event we were waiting on; it may still fire
            # later but must no longer resume us.
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        poke = Event(self.sim, name=f"interrupt:{self.name}")
        poke.callbacks.append(lambda _e: self._step(Interrupt(cause), throw=True))
        poke.succeed()

    # -- generator driving -------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            event.defuse()
            self._step(event.exception, throw=True)

    def _step(self, payload, throw: bool) -> None:
        if self.triggered:  # pragma: no cover - interrupted-after-finish guard
            return
        try:
            if throw:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(payload)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return

        if not isinstance(target, Event):
            error = ProcessError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (timeout, resource request, ...)"
            )
            self._generator.close()
            self.fail(error)
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(ProcessError("process yielded an event from another simulator"))
            return

        self._waiting_on = target
        if target.triggered:
            # Already fired: resume on the next delivery cycle to preserve
            # causal ordering with other callbacks of that instant.
            bounce = Event(self.sim, name=f"bounce:{self.name}")
            bounce.callbacks.append(lambda _e: self._resume(target))
            bounce.succeed()
        else:
            target.callbacks.append(self._resume)
