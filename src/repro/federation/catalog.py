"""Catalog: base tables, replicas and their synchronization schedules.

The paper's hybrid architecture keeps base tables ``T1..Tn`` at remote
servers and "a set of periodically synchronized replicas" at the local DSS
server.  Synchronizations are *pre-scheduled* (Figure 1: "multiple
pre-scheduled synchronization cycles"), which is what lets the optimizer
explore plans at *future* synchronization points.  A :class:`SyncSchedule`
is therefore a lazily-extended, deterministic timeline of completion
instants that both the optimizer (look-ahead) and the simulation (actual
sync events) share.
"""

from __future__ import annotations

import bisect
import itertools

from repro.errors import CatalogError
from repro.sim.streams import DeterministicStream, RandomStream

__all__ = [
    "TableDef",
    "SyncSchedule",
    "StreamSyncSchedule",
    "FixedSyncSchedule",
    "SharedSyncFeed",
    "Replica",
    "Catalog",
]


class TableDef:
    """A base table living at one remote site."""

    def __init__(
        self,
        name: str,
        site: int,
        row_count: int,
        row_bytes: int = 64,
    ) -> None:
        if row_count < 0:
            raise CatalogError(f"table {name!r} has negative row count")
        if row_bytes <= 0:
            raise CatalogError(f"table {name!r} needs positive row bytes")
        if site < 0:
            raise CatalogError(f"table {name!r} has invalid site {site}")
        self.name = name
        self.site = site
        self.row_count = int(row_count)
        self.row_bytes = int(row_bytes)

    @property
    def size_bytes(self) -> int:
        """Approximate table size."""
        return self.row_count * self.row_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TableDef({self.name!r}, site={self.site}, rows={self.row_count})"


class SyncSchedule:
    """A monotone timeline of synchronization completion instants.

    Subclasses fill :meth:`_extend_to`; the public API answers the two
    questions the optimizer asks: what was the last completion at or before
    ``t``, and when is the next one after ``t``.
    """

    #: How far past the queried time the lazy extension reaches, so repeated
    #: nearby queries rarely re-extend.
    EXTEND_SLACK = 1.0

    def __init__(self) -> None:
        self._times: list[float] = []
        self._horizon = 0.0

    # -- subclass hook ---------------------------------------------------

    def _extend_to(self, horizon: float) -> None:
        """Append completion instants so the timeline covers ``horizon``."""
        raise NotImplementedError

    def _append(self, time: float) -> None:
        if self._times and time < self._times[-1]:
            raise CatalogError("sync schedule times must be non-decreasing")
        self._times.append(time)
        self._horizon = max(self._horizon, time)

    def _ensure(self, time: float) -> None:
        if time == float("inf"):
            raise CatalogError("cannot extend a sync schedule to infinity")
        if time + self.EXTEND_SLACK > self._horizon:
            self._extend_to(time + self.EXTEND_SLACK)

    # -- queries -----------------------------------------------------------

    def last_completion_at_or_before(self, time: float) -> float | None:
        """Most recent completion ≤ ``time``, or ``None`` if none yet."""
        self._ensure(time)
        index = bisect.bisect_right(self._times, time)
        if index == 0:
            return None
        return self._times[index - 1]

    def next_completion_after(self, time: float) -> float:
        """First completion strictly after ``time``."""
        self._ensure(time)
        index = bisect.bisect_right(self._times, time)
        while index >= len(self._times):
            self._ensure(self._horizon + max(self.EXTEND_SLACK, 1.0))
            index = bisect.bisect_right(self._times, time)
        return self._times[index]

    def completions_between(self, start: float, end: float) -> list[float]:
        """All completions in ``(start, end]``."""
        if end < start:
            raise CatalogError(f"bad interval ({start}, {end}]")
        self._ensure(end)
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return self._times[lo:hi]

    def completions_through(self, time: float) -> list[float]:
        """Materialise the timeline through ``time``; return the live list.

        The returned list is the schedule's internal sorted array.  It is
        append-only — callers may hold the reference and ``bisect`` it
        directly for any instant ≤ ``time``, which is what lets the MQO
        fast path resolve replica freshness with pure array arithmetic
        instead of per-call catalog lookups.  Callers must not mutate it.
        """
        self._ensure(time)
        return self._times


class StreamSyncSchedule(SyncSchedule):
    """Independent schedule: gaps drawn from a random stream (or periodic).

    With a :class:`~repro.sim.streams.DeterministicStream` this is the
    classic fixed synchronization cycle of Figure 4; with an
    ``ExponentialStream`` it matches the paper's simulation setup.
    """

    def __init__(self, stream: RandomStream, offset: float = 0.0) -> None:
        super().__init__()
        if offset < 0:
            raise CatalogError(f"offset must be >= 0, got {offset}")
        self._stream = stream
        self._next = offset if offset > 0 else stream.sample()

    @classmethod
    def periodic(cls, period: float, offset: float | None = None) -> "StreamSyncSchedule":
        """Fixed-cycle schedule: completions at offset, offset+period, ..."""
        if period <= 0:
            raise CatalogError(f"period must be > 0, got {period}")
        return cls(DeterministicStream(period), offset=offset if offset else period)

    def _extend_to(self, horizon: float) -> None:
        while self._horizon <= horizon:
            self._append(self._next)
            gap = self._stream.sample()
            self._next += max(gap, 1e-9)  # zero gaps would stall extension


class FixedSyncSchedule(SyncSchedule):
    """An explicit, finite list of completion times (repeating the last gap).

    Used by worked examples (Figure 4's hand-specified timelines) and tests.
    """

    def __init__(self, times: list[float], tail_period: float | None = None) -> None:
        super().__init__()
        if not times:
            raise CatalogError("FixedSyncSchedule needs at least one time")
        ordered = sorted(set(times))  # same-instant syncs collapse to one
        if ordered[0] < 0:
            raise CatalogError("sync times must be >= 0")
        self._fixed = ordered
        if tail_period is not None and tail_period <= 0:
            raise CatalogError("tail_period must be > 0")
        if tail_period is None:
            gaps = [b - a for a, b in zip(ordered, ordered[1:])]
            tail_period = gaps[-1] if gaps and gaps[-1] > 0 else max(ordered[-1], 1.0)
        self._tail_period = tail_period
        for time in ordered:
            self._append(time)

    def _extend_to(self, horizon: float) -> None:
        while self._horizon <= horizon:
            self._append(self._times[-1] + self._tail_period)


class SharedSyncFeed:
    """A system-wide synchronization budget shared by many replicas.

    Each global sync event (gaps drawn from ``stream``) refreshes exactly
    one member replica, round-robin.  This models a replication manager
    whose total throughput — not each table's — is fixed, and is the Fq:Fs
    interpretation under which the paper's Figure 5 crossover (Data
    Warehouse overtaking Federation only at 1:20) is reproducible; see
    DESIGN.md.
    """

    class _MemberSchedule(SyncSchedule):
        def __init__(self, feed: "SharedSyncFeed") -> None:
            super().__init__()
            self._feed = feed

        def _extend_to(self, horizon: float) -> None:
            self._feed._pump(self, horizon)

        def _feed_append(self, time: float) -> None:
            self._append(time)

    def __init__(self, stream: RandomStream) -> None:
        self._stream = stream
        self._members: list[SharedSyncFeed._MemberSchedule] = []
        self._turn = itertools.cycle([])  # replaced when members register
        self._clock = 0.0
        self._started = False

    def member(self) -> SyncSchedule:
        """Register and return one member replica's schedule."""
        if self._started:
            raise CatalogError("cannot add members after the feed started")
        schedule = SharedSyncFeed._MemberSchedule(self)
        self._members.append(schedule)
        return schedule

    def _pump(self, requester: "SharedSyncFeed._MemberSchedule", horizon: float) -> None:
        if not self._started:
            self._turn = itertools.cycle(self._members)
            self._started = True
        # Extend globally until the *requesting* member covers the horizon;
        # every member advances together so look-aheads stay consistent.
        guard = 0
        while requester._horizon <= horizon:
            self._clock += max(self._stream.sample(), 1e-9)
            target = next(self._turn)
            target._feed_append(self._clock)
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - runaway guard
                raise CatalogError("shared sync feed failed to reach horizon")


class Replica:
    """A local replica of a base table with its synchronization schedule."""

    def __init__(
        self,
        table: TableDef,
        schedule: SyncSchedule,
        initial_timestamp: float = 0.0,
    ) -> None:
        if initial_timestamp < 0:
            raise CatalogError("initial timestamp must be >= 0")
        self.table = table
        self.schedule = schedule
        self.initial_timestamp = float(initial_timestamp)
        self.sync_count = 0  # maintained by the replication manager
        # Runtime-applied sync record (fault injection).  ``None`` means the
        # published schedule *is* reality — the default, bit-identical to
        # the pre-fault-injection behaviour.  A replication manager running
        # under a fault injector enables tracking and records the syncs
        # that actually land, which may skip or trail the schedule.
        self._applied: list[float] | None = None

    @property
    def name(self) -> str:
        """The replicated table's name."""
        return self.table.name

    @property
    def runtime_tracking(self) -> bool:
        """Whether applied syncs (not the schedule) define realized freshness."""
        return self._applied is not None

    def enable_runtime_tracking(self) -> None:
        """Start recording actually-applied syncs (fault-injection mode)."""
        if self._applied is None:
            self._applied = []

    def record_applied_sync(self, time: float) -> None:
        """Record one synchronization that actually landed at ``time``."""
        if self._applied is None:
            raise CatalogError(
                f"replica {self.name!r} is not tracking applied syncs; "
                "call enable_runtime_tracking() first"
            )
        if self._applied and time < self._applied[-1]:
            raise CatalogError("applied syncs must be recorded in time order")
        self._applied.append(time)

    def freshness_at(self, time: float) -> float:
        """Timestamp of the replica's data as of ``time``.

        This is the *published-schedule* answer — what a planner betting on
        the replication manager's promises should assume.  Use
        :meth:`realized_freshness_at` for what the replica actually holds.
        """
        last = self.schedule.last_completion_at_or_before(time)
        if last is None:
            return self.initial_timestamp
        return last

    def realized_freshness_at(self, time: float) -> float:
        """Timestamp of the data the replica *actually* holds at ``time``.

        Identical to :meth:`freshness_at` unless runtime tracking is on,
        in which case only syncs the replication manager really applied
        (none skipped, delays honoured) count.
        """
        if self._applied is None:
            return self.freshness_at(time)
        index = bisect.bisect_right(self._applied, time)
        if index == 0:
            return self.initial_timestamp
        return self._applied[index - 1]

    def next_sync_after(self, time: float) -> float:
        """When the next synchronization of this replica completes."""
        return self.schedule.next_completion_after(time)

    def staleness_at(self, time: float) -> float:
        """How old the replica's data is at ``time``."""
        return max(0.0, time - self.freshness_at(time))

    def realized_staleness_at(self, time: float) -> float:
        """How old the data the replica *actually holds* is at ``time``."""
        return max(0.0, time - self.realized_freshness_at(time))

    def divergence_at(self, time: float) -> float:
        """Published-minus-realized freshness gap at ``time``.

        Zero when the replica holds exactly what the schedule promises;
        positive when skipped or delayed syncs left its content trailing
        the published schedule — the signal a divergence-aware replica
        chooser (Fedra-style) weighs against raw sync age.  Always 0.0
        without runtime tracking, where the schedule *defines* reality.
        """
        return max(
            0.0, self.freshness_at(time) - self.realized_freshness_at(time)
        )

    def completions_through(self, time: float) -> list[float]:
        """The schedule's materialised sorted completion array through ``time``.

        See :meth:`SyncSchedule.completions_through` — the list is live and
        append-only; ``bisect`` it for any instant ≤ ``time``.
        """
        return self.schedule.completions_through(time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Replica({self.name!r})"


class Catalog:
    """All tables and replicas known to the DSS."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}
        self._replicas: dict[str, Replica] = {}

    # -- registration --------------------------------------------------------

    def add_table(self, table: TableDef) -> TableDef:
        """Register a base table."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        return table

    def add_replica(
        self,
        table_name: str,
        schedule: SyncSchedule,
        initial_timestamp: float = 0.0,
    ) -> Replica:
        """Register a replica of an existing base table."""
        table = self.table(table_name)
        if table_name in self._replicas:
            raise CatalogError(f"replica of {table_name!r} already registered")
        replica = Replica(table, schedule, initial_timestamp)
        self._replicas[table_name] = replica
        return replica

    # -- lookups ---------------------------------------------------------------

    def table(self, name: str) -> TableDef:
        """A base table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"catalog has no table {name!r}")

    def replica(self, name: str) -> Replica | None:
        """The replica of a table, or ``None`` if not replicated."""
        return self._replicas.get(name)

    def has_replica(self, name: str) -> bool:
        """Whether a table has a local replica."""
        return name in self._replicas

    @property
    def table_names(self) -> list[str]:
        """All base tables, sorted."""
        return sorted(self._tables)

    @property
    def replicated_tables(self) -> list[str]:
        """All replicated tables, sorted."""
        return sorted(self._replicas)

    @property
    def replicas(self) -> list[Replica]:
        """All replicas, sorted by table name."""
        return [self._replicas[name] for name in self.replicated_tables]

    def sites_of(self, table_names) -> set[int]:
        """Distinct remote sites hosting the given tables."""
        return {self.table(name).site for name in table_names}

    def validate_query_tables(self, table_names) -> None:
        """Raise if any of the given tables is unknown."""
        for name in table_names:
            self.table(name)
