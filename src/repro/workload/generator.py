"""Random workload generation for the synthetic experiments.

Section 4.1: "A set of 120 random queries are generated and the number of
tables a query accesses is randomly generated from [1, 10]."  Queries here
are grown along the synthetic schema's foreign-key edges so multi-table
queries remain joinable; queries without a logical definition carry an
explicit ``base_work`` derived from the row counts of the tables they read.

For the MQO experiments (Section 4.4) :func:`overlapping_workload` builds
workloads with a controlled *overlap rate*: that fraction of queries arrives
in tight bursts whose candidate execution ranges overlap, while the rest are
spread out.
"""

from __future__ import annotations

from repro.data.synthetic import SyntheticInstance
from repro.errors import WorkloadError
from repro.sim.rng import RandomSource
from repro.workload.query import DSSQuery, Workload

__all__ = ["random_queries", "overlapping_workload", "WORK_PER_ROW"]

#: Work units charged per row read when a query has no logical definition.
WORK_PER_ROW = 1.0


def _connected_table_set(
    instance: SyntheticInstance,
    size: int,
    rng: RandomSource,
) -> list[str]:
    """Grow a table set of ``size`` preferring foreign-key neighbours."""
    tables = list(instance.table_names)
    chosen = [rng.choice(tables)]
    chosen_set = set(chosen)
    # Undirected FK adjacency.
    neighbours: dict[str, set[str]] = {name: set() for name in tables}
    for child, (parent, _column) in instance.foreign_keys.items():
        neighbours[child].add(parent)
        neighbours[parent].add(child)
    while len(chosen) < size:
        frontier = sorted(
            {
                other
                for table in chosen
                for other in neighbours[table]
                if other not in chosen_set
            }
        )
        if frontier:
            pick = rng.choice(frontier)
        else:
            candidates = [name for name in tables if name not in chosen_set]
            if not candidates:
                break
            pick = rng.choice(candidates)
        chosen.append(pick)
        chosen_set.add(pick)
    return chosen


def random_queries(
    instance: SyntheticInstance,
    count: int = 120,
    max_tables: int = 10,
    seed: int = 23,
    business_value: float = 1.0,
    work_per_row: float = WORK_PER_ROW,
) -> list[DSSQuery]:
    """Generate ``count`` random queries over a synthetic instance."""
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if max_tables < 1:
        raise WorkloadError(f"max_tables must be >= 1, got {max_tables}")
    rng = RandomSource(seed, "workload")
    structure = rng.spawn("structure")
    queries = []
    limit = min(max_tables, len(instance.table_names))
    for query_id in range(1, count + 1):
        size = structure.randint(1, limit)
        tables = _connected_table_set(instance, size, structure)
        work = work_per_row * sum(instance.row_counts[name] for name in tables)
        queries.append(
            DSSQuery(
                query_id=query_id,
                name=f"rq{query_id:03d}",
                tables=tuple(tables),
                business_value=business_value,
                base_work=max(work, 1.0),
            )
        )
    return queries


def overlapping_workload(
    queries: list[DSSQuery],
    overlap_rate: float,
    seed: int = 31,
    burst_window: float = 2.0,
    spread_gap: float = 30.0,
    burst_size: int = 4,
) -> Workload:
    """Assign arrival times so ``overlap_rate`` of queries contend.

    Parameters
    ----------
    queries:
        The queries to schedule (order is preserved for ids).
    overlap_rate:
        Fraction (0–1) of queries placed into bursts; a burst's queries all
        arrive within ``burst_window`` minutes and therefore have overlapping
        candidate execution ranges.
    burst_window:
        Width of one burst in minutes.
    spread_gap:
        Gap between consecutive non-overlapping arrivals (and bursts), sized
        so spread queries do not contend.
    burst_size:
        How many queries share one burst.
    """
    if not 0.0 <= overlap_rate <= 1.0:
        raise WorkloadError(f"overlap_rate must be in [0, 1], got {overlap_rate}")
    if not queries:
        raise WorkloadError("overlapping_workload needs at least one query")
    rng = RandomSource(seed, "overlap")
    ids = list(range(len(queries)))
    rng.shuffle(ids)
    n_overlap = int(round(overlap_rate * len(queries)))
    burst_members, spread_members = ids[:n_overlap], ids[n_overlap:]

    arrivals: dict[int, float] = {}
    clock = 0.0
    # Bursts first: groups of burst_size inside one window each.
    for start in range(0, len(burst_members), burst_size):
        group = burst_members[start:start + burst_size]
        for index in group:
            arrivals[index] = clock + rng.uniform(0.0, burst_window)
        clock += spread_gap
    # Then the spread-out remainder.
    for index in spread_members:
        arrivals[index] = clock
        clock += spread_gap

    workload = Workload()
    for position, query in enumerate(queries):
        workload.add(query, arrival=arrivals[position])
    return workload
