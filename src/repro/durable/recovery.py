"""Crash recovery: rebuild an exact :class:`OnlineSession` from a journal.

Recovery is a *literal replay*.  The journal records, in true order, every
event the crashed run acted on: each arrival push (with its heap position)
and each popped event.  Because the online scheduler is a deterministic
function of that event sequence (the Clock-seam contract proven by
``tests/test_clock_equivalence.py``), feeding the recorded sequence back
through a fresh session reconstructs the pending queue, the committed
server state, the decision log and the IV ledger **bit-for-bit** — there
is no "approximately recovered" state.

Snapshots short-circuit the replay: the last valid ``snapshot`` record
restores the session (:meth:`OnlineSession.restore_state`) and the event
heap (:meth:`Timeline.restore`, sequence numbers preserved so same-time
ties keep their order), and only the journal *tail* replays.  A journal
with no snapshot recovers from the beginning; the result is identical
either way, which :func:`verify_journal` checks directly.

While replaying, every journaled ``decision``, ``window`` and ``ledger``
record is compared against the value the replay just recomputed; any
disagreement is a :class:`~repro.errors.DurabilityError` naming the byte
offset of the lying record.  Recovery therefore doubles as an audit: a
journal that recovers silently is a journal whose recorded history is
bit-consistent with what the scheduler would actually have done.
"""

from __future__ import annotations

import typing
from dataclasses import asdict, dataclass, field

from repro.durable.journal import (
    SCHEMA_VERSION,
    JournalWriter,
    scan_journal,
)
from repro.errors import DurabilityError
from repro.mqo.online import (
    ArrivalRecord,
    OnlineSession,
    _decode_decision,
    _encode_decision,
)
from repro.obs.ledger import IVLedgerEntry, completion_ledger
from repro.sim.clocks import SimClock
from repro.sim.timeline import Timeline
from repro.workload.query import DSSQuery, Workload
from repro.workload.serialize import query_from_dict, query_to_dict

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.mqo.online import OnlineMQOScheduler

__all__ = [
    "header_record",
    "arrival_record",
    "pop_record",
    "decision_record",
    "window_record",
    "ledger_record",
    "snapshot_record",
    "stop_record",
    "RecoveredRun",
    "recover",
    "reconcile",
    "verify_journal",
]


# -- record constructors (the journal's schema, version 1) ------------------

def header_record(meta: dict | None = None) -> dict:
    """The mandatory first record: schema version + driver metadata."""
    return {"kind": "header", "schema": SCHEMA_VERSION, "meta": meta or {}}


def arrival_record(query: DSSQuery, time: float, pops_before: int) -> dict:
    """One arrival push: who, when, and at which heap position."""
    return {
        "kind": "arrival",
        "qid": query.query_id,
        "time": time,
        "pops_before": pops_before,
        "query": query_to_dict(query),
    }


def pop_record(time: float, tag: str, payload: object) -> dict:
    """One popped clock event — journal order *is* the event order."""
    return {"kind": "pop", "time": time, "tag": tag, "payload": payload}


def decision_record(entry: tuple) -> dict:
    """One decision-log tuple (admit/shed/defer/requeue/window/start)."""
    return {"kind": "decision", "entry": _encode_decision(entry)}


def window_record(record) -> dict:
    """One re-optimization pass's :class:`WindowRecord`."""
    data = asdict(record)
    data["order"] = list(record.order)
    return {"kind": "window", "record": data}


def ledger_record(entry: IVLedgerEntry) -> dict:
    """One completed query's IV audit ledger entry."""
    return {"kind": "ledger", "entry": entry.to_dict()}


def snapshot_record(
    session: OnlineSession,
    timeline: Timeline,
    pops: int,
    ledgers: list[IVLedgerEntry],
    extra: dict | None = None,
) -> dict:
    """A full checkpoint: session + event heap + ledger so far.

    ``extra`` carries driver-private state (the serving layer stores its
    logical clock and trace there) — recovery hands it back verbatim.
    """
    return {
        "kind": "snapshot",
        "pops": pops,
        "session": session.capture_state(),
        "timeline": timeline.capture(),
        "ledgers": [entry.to_dict() for entry in ledgers],
        "extra": extra or {},
    }


def stop_record(pops: int) -> dict:
    """The driver stopped accepting submissions after this many pops."""
    return {"kind": "stop", "pops": pops}


# -- recovery ---------------------------------------------------------------

@dataclass
class RecoveredRun:
    """Everything :func:`recover` reconstructs from a journal."""

    meta: dict
    session: OnlineSession
    clock: SimClock
    timeline: Timeline
    pops: int                       #: total pops replayed (snapshot + tail)
    ledgers: list[IVLedgerEntry]
    arrivals: list[ArrivalRecord]   #: every journaled arrival, in order
    stop_pops: int | None
    valid_bytes: int                #: prefix length that validated
    tail_error: DurabilityError | None  #: torn/corrupt tail, if any
    snapshot_pops: int              #: pops at the restored snapshot (0 = none)
    snapshot_extra: dict = field(default_factory=dict)
    #: How many decision/window/ledger records the valid journal already
    #: contains — a resuming writer re-journals anything the replay
    #: recomputed beyond these counts (records lost to the torn tail).
    journaled_decisions: int = 0
    journaled_windows: int = 0
    journaled_ledgers: int = 0


def recover(
    path,
    scheduler: "OnlineMQOScheduler",
    use_snapshot: bool = True,
    on_session: "Callable[[OnlineSession], None] | None" = None,
    on_restore: "Callable[[dict, int], None] | None" = None,
    on_event: "Callable[[float, str, object], None] | None" = None,
    on_pop: "Callable[[float, str, object, str | None, IVLedgerEntry | None], None] | None" = None,
) -> RecoveredRun:
    """Rebuild the crashed run's exact state from its journal.

    ``scheduler`` must be configured identically to the crashed run's
    (same seeds, GA config, federation) — determinism of the rebuild is
    what makes replay exact.  Four driver hooks let a caller rebuild its
    *own* bookkeeping alongside the session: ``on_session(session)``
    fires as soon as the fresh session exists (before anything replays);
    ``on_restore(extra, pops)`` after a snapshot restore;
    ``on_event(now, tag, payload)`` before each tail event is handled
    (the serving layer stamps its logical clock here, so trace records
    emitted *inside* the handler carry the right time); and
    ``on_pop(now, tag, payload, outcome, entry)`` after each tail event
    replays (``entry`` is the recomputed ledger entry on completion
    pops) — the serving layer re-emits its lifecycle trace through it.

    Raises :class:`~repro.errors.DurabilityError` on a missing/invalid
    header, a schema mismatch, or any journaled decision, window or
    ledger record that disagrees with the replayed one (offset included).
    A torn *tail* does not raise — it is truncation damage, reported via
    :attr:`RecoveredRun.tail_error`.
    """
    records, valid_bytes, tail_error = scan_journal(path)
    if not records:
        raise DurabilityError(
            f"journal {path} has no valid records", offset=0
        )
    header, header_offset = records[0]
    if header.get("kind") != "header":
        raise DurabilityError(
            f"journal {path} does not start with a header record",
            offset=header_offset,
        )
    if header.get("schema") != SCHEMA_VERSION:
        raise DurabilityError(
            f"unsupported journal schema {header.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})",
            offset=header_offset,
        )
    meta = header.get("meta", {})

    # The workload is the union of every journaled arrival; extra (future)
    # queries never influence decisions over the pending set.
    workload = Workload()
    arrivals: list[ArrivalRecord] = []
    stop_pops: int | None = None
    snapshot = None
    snapshot_index = 0
    for index, (record, _offset) in enumerate(records):
        kind = record["kind"]
        if kind == "arrival":
            workload.add(
                query_from_dict(record["query"]), arrival=record["time"]
            )
            arrivals.append(ArrivalRecord(
                record["qid"], record["time"], record["pops_before"]
            ))
        elif kind == "stop":
            stop_pops = record["pops"]
        elif kind == "snapshot" and use_snapshot:
            snapshot = record
            snapshot_index = index

    timeline = Timeline()
    clock = SimClock(timeline)
    session = scheduler.session(workload, clock)
    session.arrivals_expected = int(meta.get("arrivals_expected", 0))
    session.accepting = bool(meta.get("accepting", False))
    if on_session is not None:
        on_session(session)
    ledgers: list[IVLedgerEntry] = []
    pops = 0
    snapshot_pops = 0
    snapshot_extra: dict = {}
    start = 1  # skip the header
    if snapshot is not None:
        timeline.restore(snapshot["timeline"])
        session.restore_state(snapshot["session"])
        ledgers = [
            IVLedgerEntry.from_dict(entry) for entry in snapshot["ledgers"]
        ]
        pops = snapshot_pops = int(snapshot["pops"])
        snapshot_extra = snapshot.get("extra", {})
        start = snapshot_index + 1
        if on_restore is not None:
            on_restore(snapshot_extra, pops)

    # Verification cursors start at the counts the replayed prefix (or the
    # restored snapshot) already accounts for.
    decision_cursor = sum(
        1 for record, _ in records[:start] if record["kind"] == "decision"
    )
    window_cursor = sum(
        1 for record, _ in records[:start] if record["kind"] == "window"
    )
    ledger_cursor = sum(
        1 for record, _ in records[:start] if record["kind"] == "ledger"
    )

    for record, offset in records[start:]:
        kind = record["kind"]
        if kind == "arrival":
            clock.push(record["time"], "arrival", record["qid"])
        elif kind == "pop":
            if not clock:
                raise DurabilityError(
                    f"journal pops an event at offset {offset} but the "
                    f"replayed heap is empty",
                    offset=offset,
                )
            now, tag, payload = clock.pop()
            if (now, tag, payload) != (
                record["time"], record["tag"], record["payload"]
            ):
                raise DurabilityError(
                    f"journal diverges at offset {offset}: recorded pop "
                    f"({record['time']!r}, {record['tag']!r}, "
                    f"{record['payload']!r}) but replay pops "
                    f"({now!r}, {tag!r}, {payload!r})",
                    offset=offset,
                )
            pops += 1
            if on_event is not None:
                on_event(now, tag, payload)
            outcome = session.handle(now, tag, payload)
            entry = None
            if tag == "completion":
                entry = _completion_entry(
                    session, typing.cast(int, payload), now
                )
                ledgers.append(entry)
            if on_pop is not None:
                on_pop(now, tag, payload, outcome, entry)
        elif kind == "decision":
            if decision_cursor >= len(session.decisions):
                raise DurabilityError(
                    f"journal records a decision at offset {offset} the "
                    f"replay never made",
                    offset=offset,
                )
            expected = session.decisions[decision_cursor]
            if _decode_decision(record["entry"]) != expected:
                raise DurabilityError(
                    f"decision mismatch at offset {offset}: journal says "
                    f"{record['entry']!r}, replay decided {expected!r}",
                    offset=offset,
                )
            decision_cursor += 1
        elif kind == "window":
            windows = session.decision.windows
            if window_cursor >= len(windows):
                raise DurabilityError(
                    f"journal records a window pass at offset {offset} "
                    f"the replay never ran",
                    offset=offset,
                )
            expected_window = asdict(windows[window_cursor])
            expected_window["order"] = list(windows[window_cursor].order)
            recorded = dict(record["record"])
            # Re-optimization time is wall-clock — the one field replay
            # legitimately recomputes differently.
            recorded.pop("reopt_seconds", None)
            expected_window.pop("reopt_seconds", None)
            if recorded != expected_window:
                raise DurabilityError(
                    f"window record mismatch at offset {offset}",
                    offset=offset,
                )
            window_cursor += 1
        elif kind == "ledger":
            if ledger_cursor >= len(ledgers):
                raise DurabilityError(
                    f"journal records a ledger entry at offset {offset} "
                    f"for a completion the replay never reached",
                    offset=offset,
                )
            if record["entry"] != ledgers[ledger_cursor].to_dict():
                raise DurabilityError(
                    f"ledger entry at offset {offset} is not bit-equal "
                    f"to the replayed one",
                    offset=offset,
                )
            ledger_cursor += 1
        elif kind == "stop":
            session.accepting = False
        elif kind == "snapshot":
            continue  # superseded by the one we restored (or scratch mode)
        elif kind == "header":
            raise DurabilityError(
                f"unexpected second header at offset {offset}",
                offset=offset,
            )
        else:
            raise DurabilityError(
                f"unknown record kind {kind!r} at offset {offset}",
                offset=offset,
            )

    return RecoveredRun(
        meta=meta,
        session=session,
        clock=clock,
        timeline=timeline,
        pops=pops,
        ledgers=ledgers,
        arrivals=arrivals,
        stop_pops=stop_pops,
        valid_bytes=valid_bytes,
        tail_error=tail_error,
        snapshot_pops=snapshot_pops,
        snapshot_extra=snapshot_extra,
        journaled_decisions=decision_cursor,
        journaled_windows=window_cursor,
        journaled_ledgers=ledger_cursor,
    )


def _completion_entry(
    session: OnlineSession, qid: int, completed_at: float
) -> IVLedgerEntry:
    """The ledger entry for one replayed completion (shared constructor)."""
    assignment = session.started[qid]
    query = session.workload.query(qid)
    return completion_ledger(
        query.name,
        qid,
        query.business_value,
        assignment.plan.rates,
        submitted_at=session.workload.arrival_of(qid),
        begin=assignment.begin,
        completed_at=completed_at,
        data_timestamp=assignment.data_timestamp,
    )


def reconcile(run: RecoveredRun, writer: JournalWriter) -> int:
    """Re-journal records the torn tail lost; returns how many.

    A crash can land between a ``pop`` record and the decision/window/
    ledger records its handling produced.  The replay recomputed them, so
    appending the missing suffix restores the invariant every verifier
    relies on: the journal's decision/window/ledger streams are complete
    prefixes of the session's.
    """
    appended = 0
    for entry in run.session.decisions[run.journaled_decisions:]:
        writer.append(decision_record(entry))
        appended += 1
    for record in run.session.decision.windows[run.journaled_windows:]:
        writer.append(window_record(record))
        appended += 1
    for ledger_entry in run.ledgers[run.journaled_ledgers:]:
        writer.append(ledger_record(ledger_entry))
        appended += 1
    run.journaled_decisions = len(run.session.decisions)
    run.journaled_windows = len(run.session.decision.windows)
    run.journaled_ledgers = len(run.ledgers)
    return appended


def verify_journal(path, make_scheduler) -> dict:
    """Audit a journal end-to-end; the CLI's ``resume-verify`` backend.

    Recovers the journal twice — once ignoring snapshots (pure replay
    from the first record) and once through the last snapshot — and
    requires both paths to agree bit-for-bit on the decision log, the IV
    ledger and the admission counters.  Together with the per-record
    verification :func:`recover` already performs (journaled decisions/
    windows/ledgers vs. replayed ones), a passing report means the
    journal, its snapshots and the scheduler's determinism are mutually
    consistent.

    ``make_scheduler`` is a zero-argument factory returning a scheduler
    configured like the journaled run's (each recovery needs a fresh
    one).  Returns a report dict; ``report["ok"]`` is the verdict.
    """
    scratch = recover(path, make_scheduler(), use_snapshot=False)
    via_snapshot = recover(path, make_scheduler(), use_snapshot=True)
    mismatches: list[str] = []
    if scratch.session.decisions != via_snapshot.session.decisions:
        mismatches.append(
            "decision log differs between scratch replay and snapshot "
            "recovery"
        )
    if [entry.to_dict() for entry in scratch.ledgers] != [
        entry.to_dict() for entry in via_snapshot.ledgers
    ]:
        mismatches.append(
            "IV ledger differs between scratch replay and snapshot recovery"
        )
    for entry in scratch.ledgers:
        if entry.recompute_iv() != entry.reported_iv:
            mismatches.append(
                f"ledger entry for qid {entry.query_id} does not recompute "
                f"bit-equal"
            )
    scratch_stats = asdict(scratch.session.stats)
    snapshot_stats = asdict(via_snapshot.session.stats)
    scratch_stats.pop("reopt_seconds")
    snapshot_stats.pop("reopt_seconds")
    if scratch_stats != snapshot_stats:
        mismatches.append("admission counters differ between recovery paths")
    return {
        "ok": not mismatches,
        "pops": scratch.pops,
        "decisions": len(scratch.session.decisions),
        "ledgers": len(scratch.ledgers),
        "arrivals": len(scratch.arrivals),
        "snapshot_pops": via_snapshot.snapshot_pops,
        "valid_bytes": scratch.valid_bytes,
        "tail_error": (
            str(scratch.tail_error) if scratch.tail_error else None
        ),
        "mismatches": mismatches,
    }
