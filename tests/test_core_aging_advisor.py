"""Unit tests: starvation-prevention aging and the placement advisor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aging import AgingPolicy
from repro.core.advisor import PlacementAdvisor
from repro.core.value import DiscountRates, discount_factor
from repro.errors import ConfigError, OptimizationError


class TestAgingPolicy:
    def test_zero_wait_zero_boost(self):
        assert AgingPolicy(beta=0.2).boost(1.0, 0.0) == 0.0

    def test_boost_grows_with_wait(self):
        policy = AgingPolicy(beta=0.2)
        assert policy.boost(1.0, 10.0) > policy.boost(1.0, 5.0) > 0.0

    def test_boost_scales_with_business_value(self):
        policy = AgingPolicy(beta=0.2)
        assert policy.boost(10.0, 5.0) == pytest.approx(
            10 * policy.boost(1.0, 5.0)
        )

    def test_grace_period_delays_boost(self):
        policy = AgingPolicy(beta=0.2, grace_period=5.0)
        assert policy.boost(1.0, 5.0) == 0.0
        assert policy.boost(1.0, 6.0) > 0.0

    def test_exponential_formula(self):
        policy = AgingPolicy(beta=0.5)
        assert policy.boost(2.0, 3.0) == pytest.approx(2.0 * (1.5**3 - 1.0))

    def test_priority_adds_boost_to_iv(self):
        policy = AgingPolicy(beta=0.2)
        assert policy.priority(0.5, 1.0, 4.0) == pytest.approx(
            0.5 + policy.boost(1.0, 4.0)
        )

    def test_validate_against_requires_beta_above_rates(self):
        policy = AgingPolicy(beta=0.05)
        with pytest.raises(ConfigError):
            policy.validate_against(DiscountRates(0.01, 0.1))
        policy.validate_against(DiscountRates(0.01, 0.04))  # ok

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            AgingPolicy(beta=0.0)
        with pytest.raises(ConfigError):
            AgingPolicy(beta=0.1, grace_period=-1.0)
        with pytest.raises(ConfigError):
            AgingPolicy(beta=0.1).boost(-1.0, 1.0)
        with pytest.raises(ConfigError):
            AgingPolicy(beta=0.1).boost(1.0, -1.0)


@settings(max_examples=100, deadline=None)
@given(
    beta=st.floats(min_value=0.11, max_value=0.9),
    rate=st.floats(min_value=0.001, max_value=0.1),
    wait=st.floats(min_value=1.0, max_value=60.0),
)
def test_boost_eventually_outpaces_decay(beta, rate, wait):
    """Section 3.3's requirement: the boost grows faster than IV decays,
    so boosted priority at a long wait exceeds the un-aged IV at no wait."""
    policy = AgingPolicy(beta=beta)
    decayed_iv = discount_factor(rate, wait)  # BV=1 discounted by waiting
    priority = policy.priority(decayed_iv, 1.0, wait)
    assert priority >= 1.0 - 1e-9 or policy.boost(1.0, wait) > 1.0 - decayed_iv


class TestPlacementAdvisor:
    def test_budget_validation(self):
        with pytest.raises(OptimizationError):
            PlacementAdvisor(["a"], lambda s: 0.0, budget=2)
        with pytest.raises(OptimizationError):
            PlacementAdvisor(["a"], lambda s: 0.0, budget=-1)
        with pytest.raises(OptimizationError):
            PlacementAdvisor(["a", "a"], lambda s: 0.0, budget=1)

    def test_greedy_picks_additive_best(self):
        values = {"a": 0.3, "b": 0.5, "c": 0.1}

        def evaluate(replicas: frozenset) -> float:
            return sum(values[name] for name in replicas)

        advisor = PlacementAdvisor(["a", "b", "c"], evaluate, budget=2)
        result = advisor.recommend()
        assert result.replicas == frozenset({"a", "b"})
        assert result.expected_value == pytest.approx(0.8)

    def test_stops_early_when_nothing_improves(self):
        def evaluate(replicas: frozenset) -> float:
            return 1.0 - 0.1 * len(replicas)  # every replica hurts

        advisor = PlacementAdvisor(["a", "b", "c"], evaluate, budget=3)
        result = advisor.recommend()
        assert result.replicas == frozenset()
        assert result.expected_value == pytest.approx(1.0)

    def test_swap_escapes_greedy_trap(self):
        """Greedy picks a first (best alone); the optimum is {b, c}."""

        def evaluate(replicas: frozenset) -> float:
            scores = {
                frozenset(): 0.0,
                frozenset("a"): 0.5,
                frozenset("b"): 0.4,
                frozenset("c"): 0.1,
                frozenset("ab"): 0.55,
                frozenset("ac"): 0.52,
                frozenset("bc"): 0.9,
            }
            return scores.get(replicas, 0.6)

        greedy_only = PlacementAdvisor(
            ["a", "b", "c"], evaluate, budget=2, swap_passes=0
        ).recommend()
        assert greedy_only.replicas == frozenset("ab")

        with_swaps = PlacementAdvisor(
            ["a", "b", "c"], evaluate, budget=2, swap_passes=2
        ).recommend()
        assert with_swaps.replicas == frozenset("bc")
        assert with_swaps.expected_value == pytest.approx(0.9)

    def test_history_records_improvements(self):
        def evaluate(replicas: frozenset) -> float:
            return float(len(replicas))

        result = PlacementAdvisor(["a", "b"], evaluate, budget=2).recommend()
        assert len(result.history) == 2
        assert "replicas" in result.describe()

    def test_zero_budget(self):
        result = PlacementAdvisor(
            ["a"], lambda replicas: float(len(replicas)), budget=0
        ).recommend()
        assert result.replicas == frozenset()
