"""Failure-injection and extreme-parameter tests.

The system must stay correct (not merely fast) when replicas go quiet,
servers saturate, discounts are brutal, or workloads degenerate.
"""

from __future__ import annotations

import pytest

from repro.baselines import federation_router, ivqp_router, warehouse_router
from repro.core.value import DiscountRates
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.mqo.scheduler import WorkloadScheduler
from repro.workload.query import DSSQuery, Workload


class TestDeadReplicas:
    """A replica whose next sync is effectively never."""

    def make_catalog(self):
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=5_000))
        catalog.add_table(TableDef("b", site=1, row_count=5_000))
        # Synced once at t=1, then silence for ~forever.
        catalog.add_replica("a", FixedSyncSchedule([1.0], tail_period=1e6))
        catalog.add_replica("b", FixedSyncSchedule([1.0], tail_period=1e6))
        return catalog

    def test_ivqp_abandons_dead_replicas(self):
        from repro.core.optimizer import IVQPOptimizer

        catalog = self.make_catalog()
        model = CostModel(catalog)
        rates = DiscountRates(computational=0.01, synchronization=0.2)
        optimizer = IVQPOptimizer(catalog, model, rates)
        query = DSSQuery(query_id=1, name="q", tables=("a", "b"))
        plan = optimizer.choose_plan(query, submitted_at=500.0)
        assert plan.remote_tables == frozenset({"a", "b"})
        assert not plan.delayed

    def test_warehouse_still_answers_with_ancient_data(self):
        catalog = self.make_catalog()
        model = CostModel(catalog)
        rates = DiscountRates(0.01, 0.05)
        router = warehouse_router(catalog, model, rates)
        plan = router.choose_plan(
            DSSQuery(query_id=1, name="q", tables=("a",)), 500.0
        )
        assert plan.synchronization_latency > 400.0
        assert plan.information_value < 1e-6  # honestly worthless


class TestSaturation:
    def test_single_server_absorbs_a_simultaneous_storm(self):
        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=10_000)],
            replicated=["a"],
            sync_mode="periodic",
            sync_mean_interval=2.0,
            rates=DiscountRates(0.05, 0.05),
            local_capacity=1,
            seed=1,
        )
        system = build_system(config, warehouse_router)
        for index in range(25):
            system.submit(
                DSSQuery(query_id=index + 1, name=f"q{index}", tables=("a",)),
                at=1.0,  # all at the same instant
            )
        system.run()
        assert len(system.outcomes) == 25
        completions = [outcome.completed_at for outcome in system.outcomes]
        assert completions == sorted(completions)
        # The last query waited for the 24 before it.
        assert system.outcomes[-1].computational_latency > (
            20 * system.outcomes[0].computational_latency
        )

    def test_realized_iv_degrades_under_contention_but_stays_valid(self):
        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=50_000)],
            replicated=[],
            rates=DiscountRates(0.1, 0.1),
            remote_capacity=1,
            seed=1,
        )
        system = build_system(config, federation_router)
        for index in range(10):
            system.submit(
                DSSQuery(query_id=index + 1, name=f"q{index}", tables=("a",)),
                at=1.0,
            )
        system.run()
        values = [outcome.information_value for outcome in system.outcomes]
        assert all(0.0 <= value <= 1.0 for value in values)
        assert min(values) < max(values)  # later arrivals decayed


class TestExtremeDiscounts:
    def test_near_total_decay_still_produces_finite_plans(self):
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=1_000))
        catalog.add_replica("a", FixedSyncSchedule([1.0], tail_period=2.0))
        model = CostModel(catalog)
        rates = DiscountRates(0.99, 0.99)
        from repro.core.optimizer import IVQPOptimizer

        plan = IVQPOptimizer(catalog, model, rates).choose_plan(
            DSSQuery(query_id=1, name="q", tables=("a",)), 10.0
        )
        assert 0.0 <= plan.information_value < 1e-3

    def test_zero_discounts_mean_full_value_always(self):
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=1_000))
        model = CostModel(catalog)
        rates = DiscountRates(0.0, 0.0)
        from repro.core.optimizer import IVQPOptimizer

        plan = IVQPOptimizer(catalog, model, rates).choose_plan(
            DSSQuery(query_id=1, name="q", tables=("a",)), 10.0
        )
        assert plan.information_value == pytest.approx(1.0)


class TestDegenerateWorkloads:
    def test_single_query_workload_schedules(self):
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=1_000))
        catalog.add_replica("a", FixedSyncSchedule([1.0], tail_period=3.0))
        scheduler = WorkloadScheduler(
            catalog, CostModel(catalog), DiscountRates(0.05, 0.05)
        )
        workload = Workload()
        workload.add(DSSQuery(query_id=1, name="solo", tables=("a",)), 2.0)
        decision = scheduler.schedule(workload)
        assert decision.permutation == [1]
        assert decision.ga_results == []

    def test_identical_queries_burst(self):
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=20_000))
        catalog.add_replica("a", FixedSyncSchedule([1.0], tail_period=2.0))
        scheduler = WorkloadScheduler(
            catalog,
            CostModel(catalog, params=CostParameters(local_throughput=2_000.0)),
            DiscountRates(0.15, 0.15),
        )
        workload = Workload()
        for index in range(6):
            workload.add(
                DSSQuery(query_id=index + 1, name=f"same{index}",
                         tables=("a",)),
                arrival=1.0,
            )
        mqo = scheduler.schedule(workload)
        fifo = scheduler.fifo(workload)
        # Identical queries: ordering cannot help, but must not hurt.
        assert mqo.total_information_value == pytest.approx(
            fifo.total_information_value, rel=0.05
        )

    def test_zero_row_table(self):
        config = SystemConfig(
            tables=[TableSpec("empty", site=0, row_count=0)],
            replicated=[],
            rates=DiscountRates(0.01, 0.01),
        )
        system = build_system(config, federation_router)
        system.submit(DSSQuery(query_id=1, name="q", tables=("empty",)), at=1.0)
        system.run()
        assert system.outcomes[0].information_value > 0.9


class TestIvqpNeverWorseThanBaselines:
    """IVQP's estimate dominates both baselines under arbitrary states."""

    @pytest.mark.parametrize("submit", [3.0, 7.5, 19.0, 42.0])
    def test_dominance_at_various_instants(self, submit):
        catalog = Catalog()
        for index, name in enumerate(("x", "y", "z")):
            catalog.add_table(TableDef(name, site=index, row_count=4_000))
            catalog.add_replica(
                name, FixedSyncSchedule([2.0 + index], tail_period=6.0 + index)
            )
        model = CostModel(catalog)
        rates = DiscountRates(0.04, 0.08)
        query = DSSQuery(query_id=1, name="q", tables=("x", "y", "z"))
        ivqp = ivqp_router(catalog, model, rates).choose_plan(query, submit)
        fed = federation_router(catalog, model, rates).choose_plan(query, submit)
        wh = warehouse_router(catalog, model, rates).choose_plan(query, submit)
        assert ivqp.information_value >= fed.information_value - 1e-12
        assert ivqp.information_value >= wh.information_value - 1e-12
