"""The live query service: OnlineSession under a WallClock.

:class:`QueryService` is the serving counterpart of
:meth:`~repro.mqo.online.OnlineMQOScheduler.run`: the same clock-agnostic
:class:`~repro.mqo.online.OnlineSession` handles every event, but events
come from a :class:`~repro.sim.clocks.WallClock` — arrivals are pushed by
live submissions, window closes fire when their wall deadline is really
due, and completions resolve the submitters' futures.

Contracts the simulations already enforce carry over unchanged:

* **Checker-clean trace.**  Every admitted query gets the full lifecycle
  (``submit → plan → exec.start → complete → ledger``) with an
  :class:`~repro.obs.ledger.IVLedgerEntry` whose ``recompute_iv`` is
  bit-identical to the reported IV; shed queries get ``mqo.shed`` and no
  ``submit`` (they never enter the system).  ``TraceChecker().check``
  passes on a drained service's trace — ``serve-smoke`` asserts it.
* **Deterministic replay.**  The service records every arrival as an
  :class:`~repro.mqo.online.ArrivalRecord` (stamp + heap position);
  :meth:`QueryService.replay` re-runs the trace through a
  :class:`~repro.sim.clocks.SimClock` and reproduces the live
  ``decisions`` log exactly (the clock-equivalence property).
* **Live telemetry.**  A :class:`~repro.obs.live.LiveRegistry` and
  :class:`~repro.obs.slo.SLOMonitor` subscribe to the same tracer; the
  HTTP layer serves their snapshot as ``/metrics`` and the dashboard
  renderer as ``/status``.  Shutdown finalizes the monitor so no alert
  dangles open.

Stream time is in minutes (``WallClock.seconds_per_minute`` compresses
it); the service's *logical* clock — what the tracer stamps — is the
event time of the latest popped event, so trace times are exactly the
times the scheduling decisions were made at.
"""

from __future__ import annotations

import asyncio
import typing
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.durable.journal import JournalWriter
from repro.durable.recovery import (
    arrival_record,
    decision_record,
    header_record,
    ledger_record,
    pop_record,
    reconcile,
    recover,
    snapshot_record,
    stop_record,
    window_record,
)
from repro.errors import WorkloadError
from repro.experiments.fig9 import Fig9Config, build_mqo_scheduler
from repro.mqo.ga import GAConfig
from repro.mqo.online import (
    ArrivalRecord,
    OnlineConfig,
    OnlineMQOScheduler,
    OnlineSession,
    replay_decisions,
)
from repro.obs import events
from repro.obs.checker import TraceChecker, Violation
from repro.obs.ledger import IVLedgerEntry, completion_ledger
from repro.obs.live import LiveRegistry
from repro.obs.slo import SLOMonitor, default_slo_rules
from repro.sim.clocks import WallClock
from repro.sim.trace import Tracer
from repro.workload.generator import random_queries
from repro.workload.query import DSSQuery, Workload

__all__ = [
    "ServeConfig",
    "QueryService",
    "journal_serve_config",
    "build_serve_scheduler",
]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one service instance."""

    #: Wall seconds per stream minute (1.0 = compressed; 60.0 = honest
    #: real time; benches go much smaller).
    seconds_per_minute: float = 1.0
    #: Rolling re-optimization window (stream minutes).
    window: float = 2.0
    #: Pending-queue bound; overflow defers to the next window.
    max_pending: int = 16
    #: Admission floor (shed below this IV upper bound).
    iv_floor: float = 0.0
    #: Optimize immediately on arrival to an idle system.
    eager_start: bool = True
    #: How many query templates the catalog workload exposes.
    num_templates: int = 12
    #: Seed for the synthetic federation and the GA.
    seed: int = 11
    #: GA generations per group (serving favors low re-optimization cost).
    ga_generations: int = 20
    #: Tracer retention (None = unbounded; a long-lived service bounds it).
    trace_capacity: int | None = None
    #: Attach the stock SLO rule set.
    slo: bool = True
    #: With a journal: checkpoint every N pops (0 = explicit ``/checkpoint``
    #: requests only; the journal alone already suffices for exact resume —
    #: snapshots just shorten the replayed tail).
    snapshot_every: int = 0
    #: Journal fsync cadence (1 = every record reaches stable storage).
    journal_fsync_every: int = 1


def build_serve_scheduler(
    config: ServeConfig, tracer: Tracer | None = None
) -> tuple[OnlineMQOScheduler, list[DSSQuery]]:
    """The service's scheduler + template catalog, from one config.

    Shared by :class:`QueryService` and the ``resume-verify`` audit: any
    consumer that must replay a serve journal bit-exactly needs *this*
    construction (same federation seed, same GA config, same templates),
    nothing else.
    """
    base, setup = build_mqo_scheduler(Fig9Config(seed=config.seed))
    templates = random_queries(
        setup.instance, count=config.num_templates, seed=config.seed + 1000,
    )
    scheduler = OnlineMQOScheduler(
        base.catalog,
        base.cost_provider,
        base.default_rates,
        ga_config=GAConfig(generations=config.ga_generations),
        seed=base.seed,
        max_candidates=base.max_candidates,
        tracer=tracer,
        config=OnlineConfig(
            window=config.window,
            max_pending=config.max_pending,
            iv_floor=config.iv_floor,
            eager_start=config.eager_start,
        ),
    )
    return scheduler, templates


def journal_serve_config(path: str | Path) -> ServeConfig:
    """Read the :class:`ServeConfig` a journal's header was written under.

    Resume *must* reconstruct the scheduler with the crashed run's exact
    configuration — seeds, GA generations, window — or the deterministic
    replay diverges.  The header record carries it, so ``serve --resume``
    and ``resume-verify`` never trust the command line over the journal.
    """
    from repro.durable.journal import scan_journal

    records, _valid, _error = scan_journal(path)
    if not records or records[0][0].get("kind") != "header":
        raise WorkloadError(
            f"journal {path} has no readable header to resume from"
        )
    meta = records[0][0].get("meta", {})
    config = meta.get("serve_config")
    if not isinstance(config, dict):
        raise WorkloadError(
            f"journal {path} was not written by the serving layer "
            f"(no serve_config in header)"
        )
    return ServeConfig(**config)


class QueryService:
    """Accepts live query submissions and schedules them in real time.

    Drive it from asyncio: start :meth:`run` as a task, call
    :meth:`submit` from request handlers, await the returned futures,
    and finish with :meth:`begin_shutdown` (the run task then drains and
    returns).  All methods are event-loop-internal — no locking, exactly
    like the single-threaded sim loop this mirrors.

    With ``journal`` set, every record the durable layer defines —
    arrivals, pops, decisions, windows, ledgers — is appended (and
    fsync'd) as the loop runs, so a killed process can be resurrected
    with ``resume=True``: recovery replays the journal through a fresh
    scheduler (:func:`repro.durable.recovery.recover`), rebuilds the
    trace/results/futures bookkeeping through the recovery hooks, and
    transplants the restored event heap under a new
    :class:`~repro.sim.clocks.WallClock` anchored at the crashed run's
    stream frontier — overdue events pop immediately, new submissions
    continue the same qid sequence, and the decision log is bit-equal to
    a run that never died.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        journal: str | Path | None = None,
        resume: bool = False,
    ) -> None:
        self.config = config or ServeConfig()
        self._logical_now = 0.0
        self.tracer = Tracer(
            lambda: self._logical_now, capacity=self.config.trace_capacity
        )
        self.registry = LiveRegistry().attach(self.tracer)
        self.monitor: SLOMonitor | None = None
        if self.config.slo:
            self.monitor = SLOMonitor(
                default_slo_rules(), self.registry
            ).attach(self.tracer)
        self.scheduler, self.templates = build_serve_scheduler(
            self.config, tracer=self.tracer
        )
        self._template_by_name = {
            template.name: template for template in self.templates
        }
        self.workload = Workload()
        self.clock = WallClock(
            seconds_per_minute=self.config.seconds_per_minute
        )
        self.session: OnlineSession = self.scheduler.session(
            self.workload, self.clock
        )
        self.session.accepting = True
        self._next_qid = 0
        self._pops = 0
        self._decision_cursor = 0
        self._stop_pops: int | None = None
        self.arrival_log: list[ArrivalRecord] = []
        self.results: dict[int, dict] = {}
        self.ledgers: list[IVLedgerEntry] = []
        self._decision_futures: dict[int, asyncio.Future] = {}
        self._result_futures: dict[int, asyncio.Future] = {}
        self._finished = asyncio.Event()
        self._journal: JournalWriter | None = None
        self._journal_path = Path(journal) if journal is not None else None
        self._journal_decisions = 0
        self._journal_windows = 0
        self.resumed_at_pops: int | None = None
        if self._journal_path is not None:
            if resume and self._journal_path.exists():
                self._resume_from_journal()
            else:
                self._journal = JournalWriter(
                    self._journal_path,
                    fsync_every=self.config.journal_fsync_every,
                )
                self._journal.append(header_record({
                    "driver": "serve",
                    "accepting": True,
                    "arrivals_expected": 0,
                    "serve_config": asdict(self.config),
                }))

    # -- submissions ---------------------------------------------------------

    @property
    def accepting(self) -> bool:
        """Whether new submissions are currently admitted."""
        return self.session.accepting

    def _resolve_template(self, template: object) -> DSSQuery:
        if isinstance(template, int) or (
            isinstance(template, str) and template.lstrip("-").isdigit()
        ):
            index = int(template)
            if not 0 <= index < len(self.templates):
                raise WorkloadError(
                    f"template index {index} out of range "
                    f"0..{len(self.templates) - 1}"
                )
            return self.templates[index]
        if template in self._template_by_name:
            return self._template_by_name[typing.cast(str, template)]
        raise WorkloadError(
            f"unknown template {template!r}; expected an index or one of "
            f"{sorted(self._template_by_name)}"
        )

    def submit(
        self,
        template: object,
        business_value: float | None = None,
    ) -> tuple[int, asyncio.Future, asyncio.Future]:
        """Submit one query; returns ``(qid, decision, result)`` futures.

        ``decision`` resolves to ``"admitted" | "deferred" | "shed"`` once
        the scheduling loop handles the arrival; ``result`` resolves to
        the result payload (with the IV ledger entry) at completion — or
        immediately to a shed notice.  Raises
        :class:`~repro.errors.WorkloadError` on an unknown template or a
        service that is shutting down.
        """
        if not self.session.accepting:
            raise WorkloadError("service is shutting down; not accepting")
        query = self._resolve_template(template)
        qid = self._next_qid
        self._next_qid += 1
        query = replace(query, query_id=qid)
        if business_value is not None:
            query = query.with_value(business_value)
        stamp = self.clock.now
        loop = asyncio.get_running_loop()
        decision: asyncio.Future = loop.create_future()
        result: asyncio.Future = loop.create_future()
        self._decision_futures[qid] = decision
        self._result_futures[qid] = result
        self.workload.add(query, arrival=stamp)
        # The heap position (pops_before) is the half of the arrival's
        # identity a timestamp can't carry — see ArrivalRecord.
        self.arrival_log.append(ArrivalRecord(qid, stamp, self._pops))
        if self._journal is not None:
            # Journal *before* push: once the arrival can influence a
            # decision it must already be durable.
            self._journal.append(arrival_record(query, stamp, self._pops))
        self.clock.push(stamp, "arrival", qid)
        return qid, decision, result

    # -- the serving loop ----------------------------------------------------

    async def run(self) -> None:
        """Pop clock events until shutdown drains the last one."""
        drained = False
        while True:
            item = await self.clock.wait_pop()
            if item is None:
                if not drained:
                    drained = True
                    self.session.drain()
                    if self.clock:  # pragma: no cover - drain is a no-op
                        continue    # when windows did their job
                break
            now, tag, payload = item
            if self._journal is not None:
                self._journal.append(pop_record(now, tag, payload))
            self._pops += 1
            self._logical_now = max(self._logical_now, now)
            outcome = self.session.handle(now, tag, payload)
            if tag == "arrival":
                self._on_arrival(typing.cast(int, payload), outcome)
            self._emit_new_starts()
            self._journal_records()
            if tag == "completion":
                self._on_completion(typing.cast(int, payload), now)
            if (
                self._journal is not None
                and self.config.snapshot_every
                and self._pops % self.config.snapshot_every == 0
            ):
                self.checkpoint()
        self._journal_records()
        if self._journal is not None:
            self._journal.close()
        if self.monitor is not None:
            self.monitor.finalize(self._logical_now)
        self._finished.set()

    def begin_shutdown(self) -> None:
        """Stop accepting and let :meth:`run` drain and return."""
        if self._stop_pops is None:
            self._stop_pops = self._pops
            if self._journal is not None:
                self._journal.append(stop_record(self._pops))
        self.session.accepting = False
        self.clock.stop()

    async def wait_finished(self) -> None:
        """Block until :meth:`run` has fully drained."""
        await self._finished.wait()

    # -- durability ----------------------------------------------------------

    def _journal_records(self) -> None:
        """Journal decision-log and window entries not yet written."""
        if self._journal is None:
            return
        for entry in self.session.decisions[self._journal_decisions:]:
            self._journal.append(decision_record(entry))
        for record in self.session.decision.windows[self._journal_windows:]:
            self._journal.append(window_record(record))
        self._journal_decisions = len(self.session.decisions)
        self._journal_windows = len(self.session.decision.windows)

    def checkpoint(self) -> dict:
        """Journal a full session snapshot; returns a small report.

        The snapshot carries the serving layer's private state in the
        record's ``extra`` — logical clock, next qid, finished results
        and the full trace — so :meth:`_resume_from_journal` can rebuild
        the observable service, not just the scheduler.  Raises
        :class:`~repro.errors.WorkloadError` when journaling is off.
        """
        if self._journal is None or self._journal.closed:
            raise WorkloadError(
                "journaling is disabled or already closed; start the "
                "service with a journal path to checkpoint"
            )
        self._journal_records()
        self.tracer.emit(events.CHECKPOINT, "journal", pops=self._pops)
        extra = {
            "logical_now": self._logical_now,
            "next_qid": self._next_qid,
            "results": {
                str(qid): payload for qid, payload in self.results.items()
            },
            "trace": [
                [record.time, record.kind, record.subject, record.detail]
                for record in self.tracer.records
            ],
        }
        offset = self._journal.append(snapshot_record(
            self.session, self.clock._timeline, self._pops,
            self.ledgers, extra=extra,
        ))
        self._journal.sync()
        return {
            "ok": True,
            "pops": self._pops,
            "offset": offset,
            "journal_bytes": self._journal.bytes_written,
        }

    def _resume_from_journal(self) -> None:
        """Rebuild this service's exact state from its crashed journal.

        Recovery replays the journal through the (identically seeded)
        fresh scheduler; the hooks rebuild the serving bookkeeping
        alongside: ``on_session`` redirects ``self.session``/``workload``
        so the trace emitters observe the recovering state,
        ``on_restore`` re-emits the checkpointed trace (alert events
        excluded — the attached SLO monitor regenerates them from the
        stream, which also rebuilds its open-alert state), and
        ``on_event``/``on_pop`` mirror the live loop's per-pop
        bookkeeping.  Afterwards the restored heap is transplanted under
        a wall clock anchored at the crashed run's stream frontier.
        """
        assert self._journal_path is not None
        recovered = recover(
            self._journal_path,
            self.scheduler,
            on_session=self._adopt_session,
            on_restore=self._restore_extra,
            on_event=self._replay_event,
            on_pop=self._replay_pop,
        )
        self.ledgers = recovered.ledgers
        self._pops = recovered.pops
        self.arrival_log = list(recovered.arrivals)
        if recovered.arrivals:
            self._next_qid = max(
                self._next_qid,
                max(record.query_id for record in recovered.arrivals) + 1,
            )
        self._decision_cursor = len(self.session.decisions)
        # Stream time continues from the crashed run's frontier; restored
        # events already behind ``now`` are overdue and pop in a burst.
        self._logical_now = max(self._logical_now, recovered.timeline.now)
        self.clock = WallClock(
            seconds_per_minute=self.config.seconds_per_minute,
            start_at=self._logical_now,
            timeline=recovered.timeline,
        )
        self.session.clock = self.clock
        self.session.accepting = True
        self._stop_pops = None
        self._journal = JournalWriter(
            self._journal_path,
            fsync_every=self.config.journal_fsync_every,
            truncate_to=recovered.valid_bytes,
        )
        self._journal_decisions = recovered.journaled_decisions
        self._journal_windows = recovered.journaled_windows
        reconcile(recovered, self._journal)
        self._journal_decisions = len(self.session.decisions)
        self._journal_windows = len(self.session.decision.windows)
        self.resumed_at_pops = recovered.pops
        self.tracer.emit(events.RESUME, "journal", pops=recovered.pops)
        self._journal.sync()

    def _adopt_session(self, session: OnlineSession) -> None:
        self.session = session
        self.workload = session.workload

    def _restore_extra(self, extra: dict, pops: int) -> None:
        self._next_qid = int(extra.get("next_qid", self._next_qid))
        for qid, payload in extra.get("results", {}).items():
            self.results[int(qid)] = payload
        for time, kind, subject, detail in extra.get("trace", []):
            if kind in events.ALERT_KINDS:
                continue  # the monitor regenerates alerts from the stream
            self._logical_now = time
            self.tracer.emit(kind, subject, **detail)
        self._logical_now = float(extra.get("logical_now", self._logical_now))
        self._decision_cursor = len(self.session.decisions)

    def _replay_event(self, now: float, tag: str, payload: object) -> None:
        # Mirrors the live loop's pre-handle stamp, so trace records the
        # scheduler emits *inside* handle() carry the pop's time.
        self._logical_now = max(self._logical_now, now)

    def _replay_pop(
        self,
        now: float,
        tag: str,
        payload: object,
        outcome: str | None,
        entry: IVLedgerEntry | None,
    ) -> None:
        if tag == "arrival":
            self._on_arrival(typing.cast(int, payload), outcome)
        self._emit_new_starts()
        if tag == "completion" and entry is not None:
            self._emit_completion(typing.cast(int, payload), entry)

    # -- event bookkeeping ---------------------------------------------------

    def _on_arrival(self, qid: int, outcome: str | None) -> None:
        query = self.workload.query(qid)
        decision = self._decision_futures.pop(qid, None)
        if decision is not None and not decision.done():
            decision.set_result(outcome)
        if outcome == "shed":
            # No submit event: a shed query never enters the system, so
            # the lifecycle checker must not expect a completion.
            self._finish(qid, {
                "qid": qid, "query": query.name, "outcome": "shed",
            })
            return
        self.tracer.emit(events.SUBMIT, query.name, qid=qid)
        self.tracer.emit(
            events.PLAN, query.name,
            qid=qid, est_iv=self.session.evaluator.upper_bound(qid),
        )

    def _emit_new_starts(self) -> None:
        decisions = self.session.decisions
        for entry in decisions[self._decision_cursor:]:
            if entry[0] == "start":
                qid = entry[1]
                self.tracer.emit(
                    events.EXEC_START, self.workload.query(qid).name,
                    qid=qid, begin=entry[2],
                )
        self._decision_cursor = len(decisions)

    def _on_completion(self, qid: int, completed_at: float) -> None:
        assignment = self.session.started[qid]
        query = self.workload.query(qid)
        # The event's pop time is the completion instant the service
        # observed (>= the analytic completion when dispatch ran late);
        # using it keeps COMPLETE's trace time and the ledger bit-equal.
        # The shared constructor is the exact one recovery replays
        # through, so a resumed service's ledger matches bit-for-bit.
        entry = completion_ledger(
            query.name,
            qid,
            query.business_value,
            assignment.plan.rates,
            submitted_at=self.workload.arrival_of(qid),
            begin=assignment.begin,
            completed_at=completed_at,
            data_timestamp=assignment.data_timestamp,
        )
        self.ledgers.append(entry)
        if self._journal is not None:
            self._journal.append(ledger_record(entry))
        self._emit_completion(qid, entry)

    def _emit_completion(self, qid: int, entry: IVLedgerEntry) -> None:
        """Trace + results bookkeeping for one completion (live or replayed)."""
        cl = entry.completed_at - entry.submitted_at
        sl = max(0.0, entry.completed_at - entry.data_timestamp)
        self.tracer.emit(
            events.COMPLETE, entry.query,
            qid=qid, iv=entry.reported_iv, cl=cl, sl=sl,
        )
        self.tracer.emit(events.LEDGER, entry.query, **entry.to_dict())
        self._finish(qid, {
            "qid": qid,
            "query": entry.query,
            "outcome": "completed",
            "iv": entry.reported_iv,
            "cl": cl,
            "sl": sl,
            "submitted_at": entry.submitted_at,
            "completed_at": entry.completed_at,
            "ledger": entry.to_dict(),
        })

    def _finish(self, qid: int, payload: dict) -> None:
        self.results[qid] = payload
        future = self._result_futures.pop(qid, None)
        if future is not None and not future.done():
            future.set_result(payload)

    # -- introspection -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The live registry's snapshot at the current logical time."""
        return self.registry.snapshot(self._logical_now)

    def metrics_prometheus(self) -> str:
        """The same snapshot in Prometheus text exposition format 0.0.4."""
        from repro.obs.metrics import to_prometheus

        return to_prometheus(self.metrics_snapshot())

    def status_html(self) -> str:
        """The live status page (dashboard renderer over the registry)."""
        from repro.reporting.dashboard import live_report_html

        alerts = self.monitor.alerts if self.monitor is not None else []
        return live_report_html(
            [self.metrics_snapshot()], alerts,
            title="repro serve — live status",
        )

    def check_trace(self) -> list[Violation]:
        """Run the TraceChecker over everything traced so far."""
        return TraceChecker().check(self.tracer.records)

    def replay(self) -> OnlineSession:
        """Re-run the recorded arrival trace under a :class:`SimClock`.

        Builds a fresh tracer-less scheduler over the same federation and
        a workload carrying the recorded arrival stamps, then replays the
        arrival log at its recorded heap positions.  The returned
        session's ``decisions`` must equal this service's — the
        clock-equivalence contract behind the whole Clock seam.
        """
        scheduler = OnlineMQOScheduler(
            self.scheduler.catalog,
            self.scheduler.cost_provider,
            self.scheduler.default_rates,
            ga_config=self.scheduler.ga_config,
            seed=self.scheduler.seed,
            max_candidates=self.scheduler.max_candidates,
            tracer=None,
            config=self.scheduler.config,
        )
        workload = Workload()
        for record in self.arrival_log:
            workload.add(
                self.workload.query(record.query_id), arrival=record.time
            )
        return replay_decisions(
            scheduler, workload, self.arrival_log,
            stop_accepting_at=self._stop_pops,
        )
