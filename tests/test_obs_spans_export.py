"""Unit tests: span trees and the JSONL / chrome trace exporters."""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.obs import (
    build_query_spans,
    events,
    from_jsonl,
    ledger_from_records,
    normalize,
    read_jsonl,
    render_span,
    to_chrome_trace,
    to_jsonl,
    write_jsonl,
)
from repro.obs.export import record_from_dict, record_to_dict
from repro.sim.trace import TraceRecord

from tests.test_obs_checker import traced_system


class TestSpans:
    def test_one_root_span_per_query(self):
        system = traced_system(num_queries=3)
        spans = build_query_spans(system.tracer.records)
        assert len(spans) == 3
        for span, entry in zip(spans, system.ledger):
            assert span.start == entry.submitted_at
            assert span.end == entry.completed_at
            assert span.attrs["iv"] == entry.reported_iv

    def test_children_cover_ledger_phases(self):
        system = traced_system()
        span = build_query_spans(system.tracer.records)[0]
        names = [child.name for child in span.children]
        assert "processing" in names
        for child in span.walk():
            assert child.duration >= 0.0
            assert span.start <= child.start and child.end <= span.end

    def test_leg_spans_nest_under_remote_phase(self):
        system = traced_system()
        records = system.tracer.records
        has_legs = any(record.kind == events.LEG_DONE for record in records)
        if not has_legs:
            pytest.skip("scenario routed everything to replicas")
        span = build_query_spans(records)[0]
        remote = next(c for c in span.children if c.name == "remote")
        assert remote.children
        assert all(child.name.startswith("leg@site") for child in remote.children)

    def test_render_is_one_line_per_span(self):
        system = traced_system()
        span = build_query_spans(system.tracer.records)[0]
        text = render_span(span)
        assert len(text.splitlines()) == sum(1 for _ in span.walk())
        assert span.name in text

    def test_traces_without_ledger_build_no_spans(self):
        records = [TraceRecord(1.0, events.SUBMIT, "q", {"qid": 1})]
        assert build_query_spans(records) == []


class TestJsonlExport:
    def test_round_trip_is_identity(self):
        records = traced_system().tracer.records
        assert from_jsonl(to_jsonl(records)) == records

    def test_normalize_is_deterministic_across_runs(self):
        first = normalize(traced_system().tracer.records)
        second = normalize(traced_system().tracer.records)
        assert first == second

    def test_file_round_trip(self, tmp_path):
        records = traced_system().tracer.records
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(records, path)
        assert read_jsonl(path) == records

    def test_blank_lines_skipped(self):
        records = traced_system().tracer.records
        padded = "\n\n".join(to_jsonl(records).splitlines())
        assert from_jsonl(padded) == records

    def test_invalid_json_rejected_with_line_number(self):
        with pytest.raises(SimulationError, match="line 2"):
            from_jsonl('{"time": 1.0, "kind": "x", "subject": "s"}\nnot json')

    def test_missing_fields_rejected(self):
        with pytest.raises(SimulationError, match="malformed"):
            record_from_dict({"time": 1.0})

    def test_record_dict_round_trip(self):
        record = TraceRecord(1.5, "submit", "q", {"qid": 3})
        assert record_from_dict(record_to_dict(record)) == record

    def test_ledger_extraction_matches_live_ledger(self):
        system = traced_system(num_queries=2)
        revived = ledger_from_records(from_jsonl(to_jsonl(system.tracer.records)))
        assert revived == system.ledger
        for entry in revived:
            assert entry.recompute_iv() == entry.reported_iv


class TestChromeExport:
    def test_trace_event_document_shape(self):
        system = traced_system(num_queries=2)
        document = to_chrome_trace(system.tracer.records)
        assert "traceEvents" in document
        json.dumps(document)  # must be JSON-serializable
        phases = {event["ph"] for event in document["traceEvents"]}
        assert {"M", "X", "i"} <= phases

    def test_each_query_gets_a_named_thread(self):
        system = traced_system(num_queries=2)
        document = to_chrome_trace(system.tracer.records)
        thread_names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        for entry in system.ledger:
            assert f"query {entry.query}#{entry.query_id}" in thread_names

    def test_slices_convert_minutes_to_microseconds(self):
        system = traced_system()
        entry = system.ledger[0]
        document = to_chrome_trace(system.tracer.records)
        slices = [
            event for event in document["traceEvents"] if event["ph"] == "X"
        ]
        assert slices
        processing = next(e for e in slices if e["name"] == "processing")
        assert processing["ts"] == entry.local_granted_at * 60_000_000.0
        assert processing["dur"] == pytest.approx(entry.processing * 60_000_000.0)

    def test_sync_events_land_on_replica_threads(self):
        system = traced_system()
        document = to_chrome_trace(system.tracer.records)
        sync_events = [
            event for event in document["traceEvents"]
            if event.get("cat") == "sync"
        ]
        assert sync_events
        assert all(event["ph"] == "i" for event in sync_events)


@pytest.mark.slow
class TestOnlineRunExport:
    """The EXT4 ``stream-online`` trace survives every exporter round trip."""

    @pytest.fixture(scope="class")
    def online_system(self):
        from repro.experiments.trace_scenarios import trace_stream_online

        return trace_stream_online()

    def test_online_trace_carries_scheduler_events(self, online_system):
        kinds = {record.kind for record in online_system.tracer.records}
        assert events.MQO_WINDOW in kinds
        assert events.MQO_ADMIT in kinds

    def test_jsonl_round_trip_is_identity(self, online_system, tmp_path):
        records = online_system.tracer.records
        assert from_jsonl(to_jsonl(records)) == records
        path = str(tmp_path / "online.jsonl")
        write_jsonl(records, path)
        assert read_jsonl(path) == records

    def test_revived_ledger_matches_and_recomputes(self, online_system):
        records = from_jsonl(to_jsonl(online_system.tracer.records))
        revived = ledger_from_records(records)
        assert revived == online_system.ledger
        for entry in revived:
            assert entry.recompute_iv() == entry.reported_iv

    def test_span_trees_cover_every_ledger_entry(self, online_system):
        spans = build_query_spans(online_system.tracer.records)
        assert len(spans) == len(online_system.ledger)
        for span in spans:
            for child in span.walk():
                assert child.duration >= 0.0
                assert span.start <= child.start and child.end <= span.end

    def test_chrome_export_serializes_with_threads(self, online_system):
        document = to_chrome_trace(online_system.tracer.records)
        json.dumps(document)
        phases = {event["ph"] for event in document["traceEvents"]}
        assert {"M", "X"} <= phases

    def test_sim_and_wall_domains_merge_without_colliding(self, online_system):
        # The sim-time export owns pid 1 and the wall-clock profiler pid 2,
        # so one merged chrome://tracing file shows both timelines.
        from repro.obs.profile import WallProfiler

        profiler = WallProfiler(enabled=True)
        with profiler.scope("replay"):
            pass
        sim_doc = to_chrome_trace(online_system.tracer.records)
        wall_doc = profiler.to_chrome_trace()
        merged = sim_doc["traceEvents"] + wall_doc["traceEvents"]
        json.dumps({"traceEvents": merged})
        sim_pids = {event["pid"] for event in sim_doc["traceEvents"]}
        wall_pids = {event["pid"] for event in wall_doc["traceEvents"]}
        assert sim_pids == {1} and wall_pids == {2}
