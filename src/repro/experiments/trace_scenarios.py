"""Canonical traced scenarios for ``python -m repro trace``.

Each scenario builds a system with the observability layer on, runs a
deterministic workload, and returns the :class:`FederatedSystem` so the
CLI (or a test) can export the trace, rebuild span trees, snapshot the
metrics registry, or hand the records to the
:class:`~repro.obs.checker.TraceChecker`.

* ``fig4`` — the paper's Figure 4 scatter-and-gather walkthrough, *executed*
  (not just planned): the four-table world with its fixed sync schedules,
  the IVQP optimizer's chosen plan, one query submitted at t = 11.  Fully
  deterministic — this is the golden-trace scenario the regression test
  pins down.
* ``stream`` — a small Poisson query stream on the TPC-H micro-instance
  (IVQP routing), exercising queueing, replicas and sync interleavings.
* ``faults`` — the EXT3 setup in miniature: the same stream with a seeded
  fault plan (site outages + sync skips/slips) under the retry/failover
  execution policy, exercising every degraded lifecycle path.
* ``stream-online`` — the EXT4 online-MQO path in miniature: the stream
  routed through the rolling-window scheduler (admission control may
  shed) under the same fault plan — the scenario the live-telemetry CLI
  and the exporter round-trip tests share.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.optimizer import IVQPOptimizer
from repro.core.value import DiscountRates
from repro.experiments.config import TpchSetup, sync_interval_for_ratio
from repro.experiments.fig4_walkthrough import Fig4Config, build_fig4_world
from repro.experiments.runner import run_stream
from repro.federation.executor import ExecutionPolicy
from repro.federation.faults import FaultPlan
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.federation.sync import ReplicationManager
from repro.federation.system import FederatedSystem
from repro.sim.scheduler import Simulator
from repro.sim.trace import Tracer

__all__ = [
    "TRACE_SCENARIOS",
    "trace_fig4",
    "trace_stream",
    "trace_faults",
    "trace_stream_online",
]


def trace_fig4(config: Fig4Config | None = None) -> FederatedSystem:
    """Execute the Figure 4 walkthrough under full tracing.

    The walkthrough world uses a :class:`StaticCostProvider` (the paper's
    stipulated 2/4/6/8/10 computation times), which ``build_system`` does
    not speak, so the federation is assembled by hand: one site per base
    table, the IVQP optimizer as router, fixed sync schedules.
    """
    config = config or Fig4Config()
    catalog, provider, query, rates = build_fig4_world(config)

    sim = Simulator()
    sites = {LOCAL_SITE_ID: Site(sim, LOCAL_SITE_ID, capacity=2)}
    for index, _name in enumerate(catalog.table_names):
        sites[index] = Site(sim, index, capacity=1)
    tracer = Tracer(lambda: sim.now)
    replication = ReplicationManager(sim, catalog)
    system = FederatedSystem(
        sim=sim,
        catalog=catalog,
        sites=sites,
        cost_model=provider,  # StaticCostProvider quacks like a CostModel here
        router=IVQPOptimizer(catalog, provider, rates),
        replication=replication,
        rates=rates,
        tracer=tracer,
    )
    system.submit(query, at=config.submit_at)
    system.run()
    return system


def trace_stream(
    scale: float = 0.002,
    num_queries: int = 12,
    mean_interarrival: float = 8.0,
) -> FederatedSystem:
    """A traced Poisson stream of TPC-H queries under IVQP routing."""
    setup = TpchSetup(scale=scale, seed=7)
    rates = DiscountRates.symmetric(0.02)
    config = setup.system_config(
        approach="ivqp",
        rates=rates,
        sync_mean_interval=sync_interval_for_ratio(10.0),
        seed=1,
    )
    result = run_stream(
        config,
        approach="ivqp",
        queries=setup.queries()[:num_queries],
        mean_interarrival=mean_interarrival,
        trace=True,
    )
    assert result.system is not None
    return result.system


def trace_faults(
    scale: float = 0.002,
    num_queries: int = 12,
    mean_interarrival: float = 8.0,
    outage_rate: float = 0.01,
) -> FederatedSystem:
    """The EXT3 fault scenario in miniature, fully traced."""
    setup = TpchSetup(scale=scale, seed=7)
    rates = DiscountRates.symmetric(0.05)
    config = setup.system_config(
        approach="ivqp",
        rates=rates,
        sync_mean_interval=sync_interval_for_ratio(10.0),
        seed=1,
    )
    site_ids = sorted({spec.site for spec in setup.table_specs()})
    config.fault_plan = FaultPlan.generate(
        seed=17,
        horizon=4_000.0,
        site_ids=site_ids,
        outage_rate=outage_rate,
        outage_mean_duration=8.0,
        sync_skip_prob=0.05,
        sync_delay_prob=0.10,
    )
    config.execution_policy = ExecutionPolicy(
        max_retries=3, retry_backoff=0.5, failover=True
    )
    result = run_stream(
        config,
        approach="ivqp",
        queries=setup.queries()[:num_queries],
        mean_interarrival=mean_interarrival,
        trace=True,
    )
    assert result.system is not None
    return result.system


def trace_stream_online(
    scale: float = 0.002,
    num_queries: int = 12,
    rounds: int = 2,
    mean_interarrival: float = 4.0,
    outage_rate: float = 0.01,
    on_system: "Callable[[FederatedSystem], None] | None" = None,
) -> FederatedSystem:
    """The EXT4 online-MQO stream in miniature, fully traced.

    Routes the stream through the rolling-window scheduler under the
    miniature EXT3 fault plan, so the trace carries ``mqo.window`` /
    ``mqo.admit`` / ``mqo.shed`` events next to degraded lifecycles —
    everything the live registry and SLO monitor feed on.  ``on_system``
    is forwarded to :func:`run_stream` so telemetry can attach to the
    tracer before the first event.
    """
    setup = TpchSetup(scale=scale, seed=7)
    rates = DiscountRates.symmetric(0.05)
    config = setup.system_config(
        approach="ivqp",
        rates=rates,
        sync_mean_interval=sync_interval_for_ratio(10.0),
        seed=1,
    )
    site_ids = sorted({spec.site for spec in setup.table_specs()})
    config.fault_plan = FaultPlan.generate(
        seed=17,
        horizon=4_000.0,
        site_ids=site_ids,
        outage_rate=outage_rate,
        outage_mean_duration=8.0,
        sync_skip_prob=0.05,
        sync_delay_prob=0.10,
    )
    config.execution_policy = ExecutionPolicy(
        max_retries=3, retry_backoff=0.5, failover=True
    )
    result = run_stream(
        config,
        approach="ivqp",
        queries=setup.queries()[:num_queries],
        rounds=rounds,
        mean_interarrival=mean_interarrival,
        trace=True,
        online=True,
        on_system=on_system,
    )
    assert result.system is not None
    return result.system


#: Scenario name → builder, the registry ``python -m repro trace`` offers.
TRACE_SCENARIOS: dict[str, Callable[[], FederatedSystem]] = {
    "fig4": trace_fig4,
    "stream": trace_stream,
    "faults": trace_faults,
    "stream-online": trace_stream_online,
}
