"""Unit tests: the simulator's event loop and run modes."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.scheduler import Simulator


class TestStepAndPeek:
    def test_peek_on_empty_queue_is_infinite(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_event_time(self, sim):
        sim.timeout(3.0)
        sim.timeout(1.0)
        assert sim.peek() == 1.0

    def test_step_advances_clock(self, sim):
        sim.timeout(2.5)
        sim.step()
        assert sim.now == 2.5

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_events_processed_counter(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.events_processed == 2


class TestRunModes:
    def test_run_to_exhaustion(self, sim):
        sim.timeout(1.0)
        sim.timeout(9.0)
        sim.run()
        assert sim.now == 9.0

    def test_run_until_deadline_stops_clock_exactly(self, sim):
        sim.timeout(1.0)
        sim.timeout(100.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_deadline_leaves_future_events(self, sim):
        sim.timeout(100.0)
        sim.run(until=10.0)
        assert sim.peek() == 100.0

    def test_run_until_event(self, sim):
        stop = sim.timeout(7.0)
        sim.timeout(100.0)
        sim.run(until=stop)
        assert sim.now == 7.0

    def test_run_until_already_processed_event_returns_immediately(self, sim):
        stop = sim.timeout(1.0)
        sim.run()
        sim.run(until=stop)  # no-op, no exception
        assert sim.now == 1.0

    def test_run_until_event_that_never_fires_raises(self, sim):
        orphan = sim.event()
        sim.timeout(1.0)
        with pytest.raises(SimulationError):
            sim.run(until=orphan)

    def test_run_until_past_deadline_raises(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.run(until=0.5)

    def test_fifo_order_for_simultaneous_events(self, sim):
        order = []
        for tag in ("a", "b", "c"):
            sim.timeout(1.0).callbacks.append(
                lambda e, t=tag: order.append(t)
            )
        sim.run()
        assert order == ["a", "b", "c"]


class TestCallAt:
    def test_call_at_runs_function_at_time(self, sim):
        ran_at = []
        sim.call_at(4.0, lambda: ran_at.append(sim.now))
        sim.run()
        assert ran_at == [4.0]

    def test_call_at_in_past_raises(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.call_at(1.0, lambda: None)

    def test_schedule_event_negative_delay_raises(self, sim):
        event = sim.event()
        with pytest.raises(SchedulingError):
            sim.schedule_event(event, delay=-1.0)


class TestDeterminism:
    def test_identical_programs_produce_identical_traces(self):
        def program(sim: Simulator) -> list[float]:
            times = []
            for delay in (3.0, 1.0, 2.0, 1.0):
                sim.timeout(delay).callbacks.append(
                    lambda e: times.append(sim.now)
                )
            sim.run()
            return times

        assert program(Simulator()) == program(Simulator())
