"""Discrete-event simulation kernel (the paper's JavaSim substitute).

The ICDCS'09 evaluation drives query arrivals and replica synchronization
with JavaSim's process/stream abstractions.  This subpackage reimplements
them: an event-heap :class:`Simulator`, generator-based :class:`Process`es,
queueing :class:`Resource`s, JavaSim-style random :mod:`streams
<repro.sim.streams>` and statistics :mod:`monitors <repro.sim.monitor>`.
"""

from repro.sim.clock import SimulationClock
from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.monitor import Monitor, Tally, TimeWeightedMonitor
from repro.sim.process import Interrupt, Process
from repro.sim.resource import PriorityResource, Request, Resource
from repro.sim.rng import RandomSource
from repro.sim.scheduler import Simulator
from repro.sim.timeline import Timeline
from repro.sim.trace import TraceRecord, Tracer
from repro.sim.streams import (
    DeterministicStream,
    EmpiricalStream,
    ErlangStream,
    ExponentialStream,
    HyperExponentialStream,
    NormalStream,
    RandomStream,
    UniformStream,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "DeterministicStream",
    "EmpiricalStream",
    "ErlangStream",
    "Event",
    "ExponentialStream",
    "HyperExponentialStream",
    "Interrupt",
    "Monitor",
    "NormalStream",
    "PriorityResource",
    "Process",
    "RandomSource",
    "RandomStream",
    "Request",
    "Resource",
    "SimulationClock",
    "Simulator",
    "Tally",
    "TimeWeightedMonitor",
    "Timeline",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "UniformStream",
]


def __getattr__(name: str):
    if name == "Clock":
        import warnings

        warnings.warn(
            "repro.sim.Clock is deprecated: use repro.sim.SimulationClock "
            "(the monotone DES clock) or the repro.sim.clocks.Clock "
            "protocol (the sim/wall event-clock seam)",
            DeprecationWarning,
            stacklevel=2,
        )
        return SimulationClock
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
