"""Unit tests: CSV/JSON export of result tables."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.errors import ConfigError
from repro.reporting.export import render, to_csv, to_json
from repro.reporting.tables import ResultTable


def sample_table() -> ResultTable:
    table = ResultTable("demo", ["approach", "mean_iv"])
    table.add("ivqp", 0.91)
    table.add("federation", 0.85)
    return table


class TestCsv:
    def test_roundtrip_through_csv_reader(self):
        text = to_csv(sample_table())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["approach", "mean_iv"]
        assert rows[1] == ["ivqp", "0.91"]
        assert len(rows) == 3

    def test_empty_table_has_header_only(self):
        table = ResultTable("empty", ["a"])
        assert to_csv(table).strip() == "a"


class TestJson:
    def test_payload_structure(self):
        payload = json.loads(to_json(sample_table()))
        assert payload["title"] == "demo"
        assert payload["rows"][0] == {"approach": "ivqp", "mean_iv": 0.91}

    def test_non_serializable_values_fall_back_to_str(self):
        table = ResultTable("odd", ["value"])
        table.add(frozenset({"x"}))
        payload = json.loads(to_json(table))
        assert "x" in payload["rows"][0]["value"]


class TestRender:
    def test_dispatches_by_format(self):
        table = sample_table()
        assert render(table, "text") == table.render()
        assert render(table, "csv") == to_csv(table)
        assert json.loads(render(table, "json"))["title"] == "demo"

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError):
            render(sample_table(), "yaml")
