"""The paper's core contribution: information values and IVQP.

* :mod:`repro.core.value` — the IV formula and discount machinery.
* :mod:`repro.core.plan` — table versions and query plans.
* :mod:`repro.core.enumeration` — candidate generation with dominance
  pruning (Figure 3) and the exhaustive oracle.
* :mod:`repro.core.optimizer` — the scatter-and-gather search (Figure 4).
* :mod:`repro.core.aging` — starvation prevention (Section 3.3).
* :mod:`repro.core.advisor` — the data placement advisor (future work).
"""

from repro.core.aging import AgingPolicy
from repro.core.advisor import PlacementAdvisor, PlacementRecommendation
from repro.core.enumeration import (
    all_combos,
    enumerate_plans,
    gather_combos,
    make_plan,
    split_tables,
    sync_points_between,
)
from repro.core.explain import RouteComparison, explain_choice
from repro.core.optimizer import IVQPOptimizer, SearchDiagnostics
from repro.core.plan import QueryPlan, TableVersion, VersionKind
from repro.core.routing import PlanShape, PrecomputedRouter, RoutingTable
from repro.core.value import (
    DiscountRates,
    discount_factor,
    information_value,
    max_tolerable_latency,
)

__all__ = [
    "AgingPolicy",
    "DiscountRates",
    "IVQPOptimizer",
    "PlacementAdvisor",
    "PlacementRecommendation",
    "PlanShape",
    "PrecomputedRouter",
    "QueryPlan",
    "RouteComparison",
    "RoutingTable",
    "SearchDiagnostics",
    "TableVersion",
    "VersionKind",
    "all_combos",
    "discount_factor",
    "enumerate_plans",
    "explain_choice",
    "gather_combos",
    "information_value",
    "make_plan",
    "max_tolerable_latency",
    "split_tables",
    "sync_points_between",
]
