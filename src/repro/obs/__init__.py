"""End-to-end observability for the federated DSS runtime.

Three pillars, all built on the :mod:`repro.sim.trace` substrate:

* **query lifecycle spans** (:mod:`repro.obs.events`,
  :mod:`repro.obs.spans`) — every query's path through the system as a
  typed, causally-ordered event stream, assembled into span trees;
* the **IV audit ledger** (:mod:`repro.obs.ledger`) — the exact CL
  decomposition and SL provenance behind every reported information
  value, recomputable bit-identically;
* the **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges
  and histograms unifying the runtime's scattered statistics.

:mod:`repro.obs.export` serializes traces (JSONL, chrome://tracing) and
:mod:`repro.obs.checker` turns any trace into a self-audit:
``TraceChecker().check(records) == []`` is the system-wide invariant the
test harness locks down.

On top of the post-hoc pillars sit the **live** ones (see
ARCHITECTURE.md §7): :mod:`repro.obs.live` folds the same event stream
incrementally into sliding-window rates and streaming quantile sketches,
:mod:`repro.obs.slo` evaluates declarative SLO rules against those live
snapshots (emitting ``alert.*`` events back into the trace), and
:mod:`repro.obs.profile` measures the *wall-clock* (not simulated) cost
of the optimizer and executor hot paths.
"""

from repro.obs import events
from repro.obs.checker import TraceChecker, Violation
from repro.obs.fleet import (
    FleetCollector,
    ShardSpoolWriter,
    ShardTelemetry,
    read_spool,
)
from repro.obs.live import (
    EwmaMean,
    EwmaRate,
    LiveRegistry,
    P2Quantile,
    TableSyncState,
    WindowCounter,
)
from repro.obs.profile import PROFILER, ProfileRecord, WallProfiler, profiled
from repro.obs.slo import (
    Alert,
    SLOMonitor,
    SLORule,
    default_slo_rules,
    load_slo_rules,
)
from repro.obs.export import (
    from_jsonl,
    ledger_from_records,
    normalize,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_jsonl,
)
from repro.obs.ledger import IVLedgerEntry, VersionProvenance
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_system,
    to_prometheus,
)
from repro.obs.spans import Span, build_query_spans, render_span

__all__ = [
    "events",
    "TraceChecker",
    "Violation",
    "LiveRegistry",
    "EwmaRate",
    "EwmaMean",
    "WindowCounter",
    "P2Quantile",
    "TableSyncState",
    "FleetCollector",
    "ShardSpoolWriter",
    "ShardTelemetry",
    "read_spool",
    "SLORule",
    "SLOMonitor",
    "Alert",
    "load_slo_rules",
    "default_slo_rules",
    "WallProfiler",
    "ProfileRecord",
    "PROFILER",
    "profiled",
    "IVLedgerEntry",
    "VersionProvenance",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_system",
    "to_prometheus",
    "Span",
    "build_query_spans",
    "render_span",
    "to_jsonl",
    "from_jsonl",
    "write_jsonl",
    "read_jsonl",
    "normalize",
    "to_chrome_trace",
    "ledger_from_records",
]
