"""Unit tests: simulation clock and event lifecycle."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import SimulationClock
from repro.sim.event import AllOf, AnyOf
from repro.sim.scheduler import Simulator


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(5.5).now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(SchedulingError):
            SimulationClock(-1.0)

    def test_advances_forward(self):
        clock = SimulationClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimulationClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_rejects_backwards_movement(self):
        clock = SimulationClock(10.0)
        with pytest.raises(SchedulingError):
            clock.advance_to(9.999)


class TestClockNameCollision:
    """Regression: two unrelated classes were both named ``Clock``.

    ``repro.sim.clock`` (the legacy monotone DES clock) and
    ``repro.sim.clocks`` (the PR 6 sim/wall event-clock protocol) exported
    colliding ``Clock`` names.  The legacy one is now ``SimulationClock``;
    the deprecated aliases must keep resolving to the *intended* types.
    """

    def test_simulation_clock_is_the_monotone_des_clock(self):
        clock = SimulationClock(1.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_clocks_clock_is_the_event_clock_protocol(self):
        from repro.sim.clocks import Clock as ClockProtocol
        from repro.sim.clocks import SimClock, WallClock

        assert isinstance(SimClock(), ClockProtocol)
        assert isinstance(WallClock(), ClockProtocol)
        assert not isinstance(SimulationClock(), ClockProtocol)
        assert ClockProtocol is not SimulationClock

    def test_deprecated_module_alias_warns_and_resolves(self):
        import repro.sim
        import repro.sim.clock

        with pytest.warns(DeprecationWarning, match="SimulationClock"):
            legacy = repro.sim.clock.Clock
        assert legacy is SimulationClock
        with pytest.warns(DeprecationWarning, match="SimulationClock"):
            package_alias = repro.sim.Clock
        assert package_alias is SimulationClock

    def test_unknown_attribute_still_raises(self):
        import repro.sim
        import repro.sim.clock

        with pytest.raises(AttributeError):
            repro.sim.clock.no_such_name
        with pytest.raises(AttributeError):
            repro.sim.no_such_name


class TestEventLifecycle:
    def test_new_event_is_untriggered(self, sim):
        event = sim.event("e")
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_records_exception(self, sim):
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.exception is error

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_value_of_failed_event_raises_original(self, sim):
        event = sim.event()
        event.fail(ValueError("original"))
        with pytest.raises(ValueError, match="original"):
            event.value

    def test_undefused_failure_propagates_from_run(self, sim):
        sim.event().fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_defused_failure_does_not_propagate(self, sim):
        event = sim.event()
        event.fail(RuntimeError("handled"))
        event.defuse()
        sim.run()  # should not raise

    def test_callbacks_run_on_delivery(self, sim):
        event = sim.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        sim.run()
        assert seen == ["payload"]

    def test_timeout_fires_at_offset(self, sim):
        fired_at = []
        sim.timeout(7.5).callbacks.append(lambda e: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [7.5]

    def test_timeout_carries_value(self, sim):
        got = []
        sim.timeout(1.0, value="tick").callbacks.append(
            lambda e: got.append(e.value)
        )
        sim.run()
        assert got == ["tick"]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)


class TestConditions:
    def test_all_of_waits_for_every_event(self, sim):
        t1, t2 = sim.timeout(1.0), sim.timeout(5.0)
        fired_at = []
        AllOf(sim, [t1, t2]).callbacks.append(lambda e: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [5.0]

    def test_any_of_fires_on_first(self, sim):
        t1, t2 = sim.timeout(1.0), sim.timeout(5.0)
        fired_at = []
        AnyOf(sim, [t1, t2]).callbacks.append(lambda e: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [1.0]

    def test_all_of_on_already_triggered_events(self, sim):
        e1, e2 = sim.event(), sim.event()
        e1.succeed(1)
        e2.succeed(2)
        condition = AllOf(sim, [e1, e2])
        assert condition.triggered

    def test_condition_rejects_foreign_simulator(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim, [sim.event(), other.event()])

    def test_all_of_propagates_child_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        condition = sim.all_of([good, bad])
        condition.defuse()
        bad.fail(RuntimeError("child failed"))
        sim.run()
        assert condition.triggered
        assert not condition.ok
