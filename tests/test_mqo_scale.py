"""The EXT5 sharded scale sweep (``repro.experiments.scale``).

Small configurations of the same pipeline the committed benchmark runs:
conflict-group sharding must conserve queries (each dispatched or shed
exactly once across shards), stay deterministic per shard, and produce
identical results whether shards run serially or in spawned worker
processes.  The committed 10^5-query configuration itself is exercised
by ``make bench-scale``; here a mid-size steady stream rides behind the
``slow`` marker.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.scale import (
    DEFAULT_SCHEDULES,
    MILLION_SCHEDULES,
    ScaleConfig,
    ScheduleSpec,
    build_stream,
    run_scale,
    run_scale_sweep,
    run_schedule,
    shard_assignments,
)

#: Deterministic fields of a schedule's metrics (wall times excluded).
_STABLE = ("queries", "shards", "dispatched", "shed", "deferred",
           "windows", "ga_runs")

STEADY = ScheduleSpec("steady", queries=400, arrival="poisson",
                      interarrival=1.0)
BURST = ScheduleSpec("burst", queries=128, arrival="burst",
                     interarrival=20.0, burst_size=8, max_pending=64,
                     population_size=8, generations=3, vectorized=True)
PRESSURE = ScheduleSpec("pressure", queries=200, arrival="poisson",
                        interarrival=0.4, max_pending=8)


def small_config(**overrides) -> ScaleConfig:
    defaults = dict(shards=2, executor="serial", schedules=(STEADY,))
    defaults.update(overrides)
    return ScaleConfig(**defaults)


def stable(metrics: dict) -> dict:
    picked = {key: metrics[key] for key in _STABLE}
    picked["total_iv"] = metrics["total_iv"]["online"]
    picked["groups"] = metrics["group_formation"]["groups"]
    picked["largest_group"] = metrics["group_formation"]["largest_group"]
    return picked


class TestConfigValidation:
    def test_schedule_spec_rejects_bad_values(self):
        with pytest.raises(ConfigError, match="queries"):
            ScheduleSpec("s", queries=0)
        with pytest.raises(ConfigError, match="arrival"):
            ScheduleSpec("s", queries=1, arrival="uniform")
        with pytest.raises(ConfigError, match="interarrival"):
            ScheduleSpec("s", queries=1, interarrival=0.0)
        with pytest.raises(ConfigError, match="burst_size"):
            ScheduleSpec("s", queries=1, burst_size=0)

    def test_scale_config_rejects_bad_values(self):
        with pytest.raises(ConfigError, match="shards"):
            small_config(shards=0)
        with pytest.raises(ConfigError, match="executor"):
            small_config(executor="thread")
        with pytest.raises(ConfigError, match="sites"):
            small_config(sites=99)
        with pytest.raises(ConfigError, match="schedule"):
            small_config(schedules=())

    def test_default_and_million_presets(self):
        assert DEFAULT_SCHEDULES[0].queries == 100_000
        assert MILLION_SCHEDULES[0].queries == 1_000_000
        assert MILLION_SCHEDULES[1:] == DEFAULT_SCHEDULES[1:]
        names = [spec.name for spec in DEFAULT_SCHEDULES]
        assert names == ["steady", "burst", "pressure"]


class TestStreamAndSharding:
    def test_burst_stream_clumps_arrivals(self):
        workload = build_stream(small_config(), BURST)
        arrivals = [workload.arrival_of(q.query_id)
                    for q in workload.queries]
        assert arrivals == sorted(arrivals)
        # Queries 1..8 form the first burst, 9..16 start one gap later.
        assert arrivals[8] - arrivals[0] == pytest.approx(20.0)
        assert arrivals[7] - arrivals[0] == pytest.approx(0.35)

    def test_poisson_stream_is_seeded(self):
        first = build_stream(small_config(), STEADY)
        second = build_stream(small_config(), STEADY)
        assert [first.arrival_of(q.query_id) for q in first.queries] == [
            second.arrival_of(q.query_id) for q in second.queries
        ]

    def test_shard_assignments_keep_groups_whole(self):
        groups = [[1, 2, 3], [4], [5, 6], [7], [8, 9, 10, 11]]
        assigned = shard_assignments(groups, 2)
        flat = sorted(qid for shard in assigned for qid in shard)
        assert flat == list(range(1, 12))
        for group in groups:
            owners = {
                index
                for index, shard in enumerate(assigned)
                for qid in group if qid in shard
            }
            assert len(owners) == 1, f"group {group} split across {owners}"

    def test_shard_assignments_balance_greedily(self):
        groups = [[1, 2, 3], [4, 5], [6], [7]]
        assert shard_assignments(groups, 2) == [[1, 2, 3, 7], [4, 5, 6]]
        # More shards than groups leaves trailing shards empty.
        assert shard_assignments([[1]], 3) == [[1], [], []]
        with pytest.raises(ConfigError, match="shards"):
            shard_assignments(groups, 0)


class TestRunSchedule:
    def test_conserves_queries_and_reports_metrics(self):
        config = small_config()
        metrics = run_schedule(config, STEADY)
        assert metrics["dispatched"] + metrics["shed"] == STEADY.queries
        assert metrics["shards"] <= config.shards
        assert metrics["group_formation"]["ranges_per_sec"] > 0
        assert metrics["queries_per_sec"] > 0
        assert metrics["peak_rss_mb"] > 0
        reopt = metrics["reopt"]
        assert reopt["p50_ms"] <= reopt["p95_ms"] <= reopt["p99_ms"]
        assert metrics["total_iv"]["online"] > 0

    def test_deterministic_across_runs(self):
        config = small_config()
        first = run_schedule(config, STEADY)
        second = run_schedule(config, STEADY)
        assert stable(first) == stable(second)

    def test_process_executor_matches_serial(self):
        serial = run_schedule(small_config(), STEADY)
        process = run_schedule(small_config(executor="process"), STEADY)
        assert stable(serial) == stable(process)

    def test_single_shard_dispatches_everything_too(self):
        sharded = run_schedule(small_config(), STEADY)
        unsharded = run_schedule(small_config(shards=1), STEADY)
        assert unsharded["shards"] == 1
        assert (
            unsharded["dispatched"] + unsharded["shed"]
            == sharded["dispatched"] + sharded["shed"]
        )

    def test_pressure_schedule_defers(self):
        metrics = run_schedule(small_config(), PRESSURE)
        assert metrics["deferred"] > 0
        assert metrics["dispatched"] + metrics["shed"] == PRESSURE.queries

    def test_burst_schedule_forms_burst_sized_groups(self):
        metrics = run_schedule(small_config(), BURST)
        assert metrics["group_formation"]["largest_group"] >= BURST.burst_size
        assert metrics["dispatched"] == BURST.queries


class TestSweepAndTable:
    def test_sweep_shape_matches_snapshot_contract(self):
        config = small_config(schedules=(STEADY, PRESSURE))
        data = run_scale_sweep(config)
        assert set(data["schedules"]) == {"steady", "pressure"}
        assert data["config"]["shards"] == config.shards
        for metrics in data["schedules"].values():
            assert {"queries_per_sec", "wall_seconds", "reopt",
                    "total_iv", "peak_rss_mb"} <= set(metrics)

    def test_result_table_has_one_row_per_schedule(self):
        table = run_scale(small_config(schedules=(STEADY, BURST)))
        assert len(table.rows) == 2
        rendered = table.render()
        assert "steady" in rendered and "burst" in rendered
        assert "qps" in rendered


@pytest.mark.slow
class TestMidSizeSweep:
    def test_twenty_thousand_query_steady_stream(self):
        spec = ScheduleSpec("steady", queries=20_000, arrival="poisson",
                            interarrival=1.0)
        metrics = run_schedule(
            small_config(executor="process", schedules=(spec,)), spec
        )
        assert metrics["dispatched"] == 20_000
        assert metrics["shed"] == 0
        assert metrics["queries_per_sec"] > 100
        assert metrics["group_formation"]["groups"] > 1_000
