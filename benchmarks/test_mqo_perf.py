"""MQO fast-path benchmark — prefix trie + compiled plans under a GA run.

A 16-query bursty workload scored by a 50-generation GA exercises the
evaluator exactly the way :class:`WorkloadScheduler` does.  The benchmark
asserts the two properties the fast path promises:

* **Work reduction** — crossover/mutation children share long prefixes
  with their parents, so the trie plus upper-bound pruning must cut the
  number of candidate realizations at least 3× versus a naive replay of
  every evaluated permutation.
* **Bit-identical results** — the GA winner scored through the fast path
  must realize the exact schedule (plans, begins, completions, IV) the
  naive replay produces.
"""

from __future__ import annotations

from repro.core.value import DiscountRates
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.mqo.evaluator import WorkloadEvaluator
from repro.mqo.ga import GAConfig, GeneticAlgorithm
from repro.workload.query import DSSQuery, Workload

NUM_TABLES = 12
NUM_SITES = 4
NUM_QUERIES = 16


def build_catalog() -> Catalog:
    catalog = Catalog()
    for index in range(NUM_TABLES):
        name = f"t{index}"
        catalog.add_table(
            TableDef(name, site=index % NUM_SITES, row_count=4_000)
        )
        catalog.add_replica(
            name,
            FixedSyncSchedule(
                [1.0 + index * 0.4 + k * 5.0 for k in range(40)],
                tail_period=5.0,
            ),
        )
    return catalog


def burst_workload() -> Workload:
    workload = Workload()
    for index in range(NUM_QUERIES):
        tables = tuple(
            f"t{(index + j) % NUM_TABLES}" for j in range(3)
        )
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}", tables=tables,
                base_work=9_000.0,
            ),
            arrival=1.0 + 0.15 * index,
        )
    return workload


def build_evaluator(**kwargs) -> WorkloadEvaluator:
    catalog = build_catalog()
    cost_model = CostModel(catalog, params=CostParameters())
    rates = DiscountRates.symmetric(0.1)
    return WorkloadEvaluator(
        catalog, cost_model, rates, burst_workload(), **kwargs
    )


def run_ga(evaluator: WorkloadEvaluator):
    genes = [q.query_id for q in evaluator.workload.queries]
    ga = GeneticAlgorithm(
        genes,
        evaluator.fitness,
        config=GAConfig(generations=50, population_size=32),
        seed=5,
        evaluator_stats=evaluator.stats,
    )
    return ga.run()


def test_mqo_fastpath_realize_reduction(benchmark, show):
    evaluator = build_evaluator()
    result = benchmark.pedantic(
        lambda: run_ga(evaluator), rounds=1, iterations=1
    )
    stats = evaluator.stats
    show(
        f"GA best IV {result.best_fitness:.4f}  "
        f"fitness_calls={result.fitness_calls} "
        f"cache_hits={result.cache_hits}\n"
        f"evaluator: {stats.summary()}"
    )

    # The fast path must realize at most a third of what naive replay would.
    assert stats.naive_realize_calls >= 3 * stats.realize_calls
    assert stats.prefix_hits > 0
    assert stats.candidates_pruned > 0

    # The winner replays bit-identically through the naive path.
    fast = evaluator.evaluate(tuple(result.best))
    naive = evaluator.evaluate_naive(tuple(result.best))
    assert len(fast.assignments) == len(naive.assignments)
    for a, b in zip(fast.assignments, naive.assignments):
        assert a.plan is b.plan
        assert a.begin == b.begin
        assert a.completed == b.completed
        assert a.data_timestamp == b.data_timestamp
    assert fast.total_information_value == naive.total_information_value


def test_mqo_fastpath_matches_naive_ga(show):
    fast_eval = build_evaluator()
    naive_eval = build_evaluator(fast_path=False)
    fast_result = run_ga(fast_eval)
    naive_result = run_ga(naive_eval)
    show(
        f"fast best {fast_result.best_fitness:.6f} "
        f"naive best {naive_result.best_fitness:.6f}"
    )
    assert fast_result.best == naive_result.best
    assert fast_result.best_fitness == naive_result.best_fitness
    assert fast_result.history == naive_result.history
