"""Per-figure experiment harnesses and the CLI."""

from repro.experiments.ablations import (
    AblationConfig,
    placement_evaluator,
    run_advisor_ablation,
    run_aging_ablation,
    run_ga_ablation,
    run_routing_ablation,
    run_search_ablation,
)
from repro.experiments.config import (
    FQ_FS_RATIOS,
    LAMBDA_COMBOS,
    QUERY_MEAN_INTERARRIVAL,
    SyntheticSetup,
    TpchSetup,
    sync_interval_for_ratio,
)
from repro.experiments.fig4_walkthrough import Fig4Config, build_fig4_world, run_fig4
from repro.experiments.fig5 import Fig5Config, run_fig5, run_fig5_cell_ci
from repro.experiments.fig6 import Fig6Config, run_fig6, select_mid_cost_queries
from repro.experiments.fig7 import Fig7Config, run_fig7
from repro.experiments.fig8 import Fig8Config, run_fig8
from repro.experiments.fig9 import Fig9Config, run_fig9a, run_fig9b
from repro.experiments.load import LoadConfig, run_load_sweep
from repro.experiments.replication import MeanCI, replicate, summarize
from repro.experiments.sensitivity import (
    SensitivityConfig,
    classify_plan,
    run_sensitivity,
)
from repro.experiments.runner import (
    APPROACHES,
    RunResult,
    run_single_queries,
    run_stream,
)

__all__ = [
    "APPROACHES",
    "AblationConfig",
    "FQ_FS_RATIOS",
    "Fig4Config",
    "Fig5Config",
    "Fig6Config",
    "Fig7Config",
    "Fig8Config",
    "Fig9Config",
    "LAMBDA_COMBOS",
    "LoadConfig",
    "MeanCI",
    "QUERY_MEAN_INTERARRIVAL",
    "RunResult",
    "SensitivityConfig",
    "SyntheticSetup",
    "TpchSetup",
    "classify_plan",
    "build_fig4_world",
    "placement_evaluator",
    "run_advisor_ablation",
    "run_aging_ablation",
    "run_fig4",
    "run_fig5",
    "run_fig5_cell_ci",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9a",
    "run_fig9b",
    "run_ga_ablation",
    "replicate",
    "run_load_sweep",
    "run_routing_ablation",
    "run_search_ablation",
    "run_sensitivity",
    "run_single_queries",
    "run_stream",
    "select_mid_cost_queries",
    "summarize",
    "sync_interval_for_ratio",
]
