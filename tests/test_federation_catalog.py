"""Unit and property tests: catalog, sync schedules, replicas."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError
from repro.federation.catalog import (
    Catalog,
    FixedSyncSchedule,
    Replica,
    SharedSyncFeed,
    StreamSyncSchedule,
    TableDef,
)
from repro.sim.rng import RandomSource
from repro.sim.streams import DeterministicStream, ExponentialStream


class TestTableDef:
    def test_size_bytes(self):
        table = TableDef("t", site=0, row_count=100, row_bytes=32)
        assert table.size_bytes == 3200

    def test_validation(self):
        with pytest.raises(CatalogError):
            TableDef("t", site=0, row_count=-1)
        with pytest.raises(CatalogError):
            TableDef("t", site=0, row_count=1, row_bytes=0)
        with pytest.raises(CatalogError):
            TableDef("t", site=-1, row_count=1)


class TestFixedSyncSchedule:
    def test_lookups(self):
        schedule = FixedSyncSchedule([2.0, 5.0, 9.0])
        assert schedule.last_completion_at_or_before(1.0) is None
        assert schedule.last_completion_at_or_before(5.0) == 5.0
        assert schedule.last_completion_at_or_before(8.9) == 5.0
        assert schedule.next_completion_after(5.0) == 9.0
        assert schedule.next_completion_after(0.0) == 2.0

    def test_tail_extension_repeats_last_gap(self):
        schedule = FixedSyncSchedule([2.0, 5.0])
        assert schedule.next_completion_after(5.0) == 8.0
        assert schedule.next_completion_after(8.0) == 11.0

    def test_explicit_tail_period(self):
        schedule = FixedSyncSchedule([2.0], tail_period=10.0)
        assert schedule.next_completion_after(2.0) == 12.0

    def test_completions_between(self):
        schedule = FixedSyncSchedule([2.0, 5.0, 9.0])
        assert schedule.completions_between(2.0, 9.0) == [5.0, 9.0]

    def test_bad_interval_raises(self):
        schedule = FixedSyncSchedule([1.0])
        with pytest.raises(CatalogError):
            schedule.completions_between(5.0, 1.0)

    def test_validation(self):
        with pytest.raises(CatalogError):
            FixedSyncSchedule([])
        with pytest.raises(CatalogError):
            FixedSyncSchedule([-1.0])
        with pytest.raises(CatalogError):
            FixedSyncSchedule([1.0], tail_period=0.0)

    def test_infinite_horizon_rejected(self):
        schedule = FixedSyncSchedule([1.0])
        with pytest.raises(CatalogError):
            schedule.next_completion_after(float("inf"))


class TestStreamSyncSchedule:
    def test_periodic_completions(self):
        schedule = StreamSyncSchedule.periodic(5.0, offset=2.0)
        assert schedule.completions_between(0.0, 17.0) == [2.0, 7.0, 12.0, 17.0]

    def test_periodic_default_offset_is_period(self):
        schedule = StreamSyncSchedule.periodic(5.0)
        assert schedule.next_completion_after(0.0) == 5.0

    def test_exponential_gaps_are_monotone(self):
        stream = ExponentialStream(2.0, RandomSource(3, "sync"))
        schedule = StreamSyncSchedule(stream)
        times = schedule.completions_between(0.0, 50.0)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_lazy_extension_is_consistent(self):
        stream = ExponentialStream(2.0, RandomSource(3, "sync"))
        schedule = StreamSyncSchedule(stream)
        early = schedule.next_completion_after(5.0)
        # Query far ahead, then re-ask the early question: same answer.
        schedule.completions_between(0.0, 200.0)
        assert schedule.next_completion_after(5.0) == early

    def test_period_must_be_positive(self):
        with pytest.raises(CatalogError):
            StreamSyncSchedule.periodic(0.0)


class TestSharedSyncFeed:
    def test_round_robin_partition(self):
        feed = SharedSyncFeed(DeterministicStream(1.0))
        a = feed.member()
        b = feed.member()
        a_times = a.completions_between(0.0, 10.0)
        b_times = b.completions_between(0.0, 10.0)
        assert a_times == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert b_times == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_member_rate_is_budget_over_members(self):
        feed = SharedSyncFeed(
            ExponentialStream(1.0, RandomSource(5, "feed"))
        )
        members = [feed.member() for _ in range(4)]
        counts = [len(m.completions_between(0.0, 400.0)) for m in members]
        for count in counts:
            assert count == pytest.approx(100, rel=0.35)

    def test_no_members_after_start(self):
        feed = SharedSyncFeed(DeterministicStream(1.0))
        member = feed.member()
        member.next_completion_after(0.0)
        with pytest.raises(CatalogError):
            feed.member()


class TestReplicaAndCatalog:
    def make_catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=10))
        catalog.add_table(TableDef("b", site=1, row_count=20))
        catalog.add_replica("a", FixedSyncSchedule([3.0, 8.0]))
        return catalog

    def test_replica_freshness_and_staleness(self):
        catalog = self.make_catalog()
        replica = catalog.replica("a")
        assert replica.freshness_at(2.0) == 0.0  # initial timestamp
        assert replica.freshness_at(5.0) == 3.0
        assert replica.staleness_at(5.0) == 2.0
        assert replica.next_sync_after(3.0) == 8.0

    def test_duplicate_registration_rejected(self):
        catalog = self.make_catalog()
        with pytest.raises(CatalogError):
            catalog.add_table(TableDef("a", site=0, row_count=10))
        with pytest.raises(CatalogError):
            catalog.add_replica("a", FixedSyncSchedule([1.0]))

    def test_replica_requires_existing_table(self):
        catalog = self.make_catalog()
        with pytest.raises(CatalogError):
            catalog.add_replica("zz", FixedSyncSchedule([1.0]))

    def test_lookups(self):
        catalog = self.make_catalog()
        assert catalog.table("b").site == 1
        assert catalog.replica("b") is None
        assert catalog.has_replica("a")
        assert catalog.table_names == ["a", "b"]
        assert catalog.replicated_tables == ["a"]
        assert [r.name for r in catalog.replicas] == ["a"]
        with pytest.raises(CatalogError):
            catalog.table("zz")

    def test_sites_of_and_validation(self):
        catalog = self.make_catalog()
        assert catalog.sites_of(["a", "b"]) == {0, 1}
        with pytest.raises(CatalogError):
            catalog.validate_query_tables(["a", "nope"])

    def test_replica_initial_timestamp(self):
        table = TableDef("t", site=0, row_count=1)
        replica = Replica(table, FixedSyncSchedule([100.0]), initial_timestamp=7.0)
        assert replica.freshness_at(50.0) == 7.0
        with pytest.raises(CatalogError):
            Replica(table, FixedSyncSchedule([1.0]), initial_timestamp=-1.0)


@settings(max_examples=60, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
    ),
    probe=st.floats(min_value=0.0, max_value=120.0),
)
def test_schedule_lookup_invariants(times, probe):
    """last <= probe < next, for any schedule and probe point."""
    schedule = FixedSyncSchedule(sorted(times), tail_period=5.0)
    last = schedule.last_completion_at_or_before(probe)
    nxt = schedule.next_completion_after(probe)
    if last is not None:
        assert last <= probe
    assert nxt > probe
    between = schedule.completions_between(probe, nxt)
    assert between == [nxt]
