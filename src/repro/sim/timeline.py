"""A deterministic time-ordered event heap with FIFO tie-breaking.

The discrete-event :class:`~repro.sim.scheduler.Simulator` owns the *real*
runtime; :class:`Timeline` is the lightweight analytic counterpart used by
schedulers that replay time without processes — e.g. the online MQO loop
(:mod:`repro.mqo.online`), which interleaves query arrivals, window closes
and analytic completions without spinning up a simulation.

Entries at the same instant pop in push order (a monotonically increasing
sequence number breaks ties), so replays are deterministic and arrival
order is preserved exactly.

Pushes are validated: a NaN would poison heap comparisons (every
comparison against NaN is false, so ``heapq`` silently loses its
invariant and events pop in corrupted order), an infinite deadline can
never fire, and a time before the latest pop would schedule an event in
the past — replaying such a heap is no longer deterministic.  All three
raise :class:`~repro.errors.SimulationError` at the push site, where the
bug is, instead of surfacing later as a scrambled replay.
"""

from __future__ import annotations

import heapq
import math
from typing import Any

from repro.errors import SimulationError

__all__ = ["Timeline"]


class Timeline:
    """Min-heap of ``(time, tag, payload)`` events, FIFO within an instant."""

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str, Any]] = []
        self._seq = 0
        self._now: float | None = None  # time of the latest pop

    @property
    def now(self) -> float:
        """Time of the latest pop (0.0 before the first)."""
        return 0.0 if self._now is None else self._now

    def push(self, time: float, tag: str, payload: Any = None) -> None:
        """Schedule an event; same-time events pop in push order.

        Raises
        ------
        SimulationError
            If ``time`` is NaN or infinite (heap order would corrupt /
            the event could never fire) or lies before the latest popped
            time (an event scheduled into the past breaks replay
            determinism).
        """
        time = float(time)
        if not math.isfinite(time):
            raise SimulationError(
                f"cannot schedule {tag!r} at non-finite time {time!r}"
            )
        if self._now is not None and time < self._now:
            raise SimulationError(
                f"cannot schedule {tag!r} at {time}: timeline already "
                f"advanced to {self._now}"
            )
        heapq.heappush(self._heap, (time, self._seq, tag, payload))
        self._seq += 1

    def pop(self) -> tuple[float, str, Any]:
        """Remove and return the earliest ``(time, tag, payload)`` event.

        Raises :class:`IndexError` when empty, like ``heapq``.
        """
        time, _seq, tag, payload = heapq.heappop(self._heap)
        self._now = time
        return time, tag, payload

    def peek_time(self) -> float:
        """Time of the earliest pending event (raises IndexError if empty)."""
        return self._heap[0][0]

    def capture(self) -> dict:
        """A JSON-safe snapshot of the heap, tie-break counter and frontier.

        Sequence numbers are captured verbatim: same-time events must pop
        in their *original* push order after a restore, or a resumed run
        would diverge from the uninterrupted one on the first tie.
        """
        return {
            "now": self._now,
            "seq": self._seq,
            "heap": [list(entry) for entry in sorted(self._heap)],
        }

    def restore(self, state: dict) -> None:
        """Rebuild the heap exactly as :meth:`capture` saw it."""
        self._now = state["now"]
        self._seq = int(state["seq"])
        self._heap = [
            (float(time), int(seq), str(tag), payload)
            for time, seq, tag, payload in state["heap"]
        ]
        heapq.heapify(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
