"""Table statistics and selectivity estimation.

These feed the planner's cardinality estimates, which in turn calibrate the
federation cost model's processing-time estimates — the paper's "compile the
query ... to generate their computational latencies" step (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expr import And, Col, Compare, Const, Expr, Not, Or
from repro.engine.table import Table

__all__ = ["ColumnStats", "TableStats", "estimate_selectivity", "join_selectivity"]

#: Selectivity assumed for predicates we cannot analyse.
DEFAULT_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one column."""

    distinct: int
    minimum: object
    maximum: object
    null_fraction: float

    @classmethod
    def from_values(cls, values: list) -> "ColumnStats":
        """Compute stats from a column's values."""
        non_null = [value for value in values if value is not None]
        nulls = len(values) - len(non_null)
        if not non_null:
            return cls(distinct=0, minimum=None, maximum=None, null_fraction=1.0)
        return cls(
            distinct=len(set(non_null)),
            minimum=min(non_null),
            maximum=max(non_null),
            null_fraction=nulls / len(values) if values else 0.0,
        )


@dataclass(frozen=True)
class TableStats:
    """Row count and per-column statistics of one table."""

    row_count: int
    columns: dict[str, ColumnStats]

    @classmethod
    def from_table(cls, table: Table) -> "TableStats":
        """Scan a table once and summarise it."""
        columns = {
            name: ColumnStats.from_values(table.column_values(name))
            for name in table.schema.column_names
        }
        return cls(row_count=table.row_count, columns=columns)

    def column(self, name: str) -> ColumnStats | None:
        """Stats for one column, or ``None`` if unknown."""
        return self.columns.get(name)


def _range_fraction(stats: ColumnStats, op: str, value) -> float:
    """Fraction of a column's range selected by ``col <op> value``."""
    low, high = stats.minimum, stats.maximum
    if low is None or high is None:
        return DEFAULT_SELECTIVITY
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return DEFAULT_SELECTIVITY
    if not isinstance(low, (int, float)) or isinstance(low, bool):
        return DEFAULT_SELECTIVITY
    span = float(high) - float(low)
    if span <= 0:
        return 1.0 if low <= value <= high else 0.0
    if op in ("<", "<="):
        fraction = (float(value) - float(low)) / span
    else:  # ">", ">="
        fraction = (float(high) - float(value)) / span
    return min(1.0, max(0.0, fraction))


def estimate_selectivity(
    predicate: Expr,
    table_stats: dict[str, TableStats],
) -> float:
    """Estimate the fraction of rows surviving ``predicate``.

    ``table_stats`` maps *alias* (as used in qualified column names) to that
    table's :class:`TableStats`.
    """
    if isinstance(predicate, And):
        result = 1.0
        for term in predicate.conjuncts():
            result *= estimate_selectivity(term, table_stats)
        return result
    if isinstance(predicate, Or):
        left = estimate_selectivity(predicate.left, table_stats)
        right = estimate_selectivity(predicate.right, table_stats)
        return min(1.0, left + right - left * right)
    if isinstance(predicate, Not):
        return max(0.0, 1.0 - estimate_selectivity(predicate.operand, table_stats))
    if isinstance(predicate, Compare):
        return _compare_selectivity(predicate, table_stats)
    return DEFAULT_SELECTIVITY


def _compare_selectivity(
    predicate: Compare,
    table_stats: dict[str, TableStats],
) -> float:
    if predicate.is_equi_join:
        # Join predicates are handled by join_selectivity, not here.
        return 1.0
    column: Col | None = None
    constant = None
    if isinstance(predicate.left, Col) and isinstance(predicate.right, Const):
        column, constant = predicate.left, predicate.right.value
        op = predicate.op
    elif isinstance(predicate.right, Col) and isinstance(predicate.left, Const):
        column, constant = predicate.right, predicate.left.value
        op = _flip(predicate.op)
    else:
        return DEFAULT_SELECTIVITY

    stats = table_stats.get(column.table)
    col_stats = stats.column(column.column) if stats else None
    if col_stats is None:
        return DEFAULT_SELECTIVITY
    if op == "==":
        if col_stats.distinct <= 0:
            return 0.0
        return min(1.0, 1.0 / col_stats.distinct)
    if op == "!=":
        if col_stats.distinct <= 0:
            return 0.0
        return max(0.0, 1.0 - 1.0 / col_stats.distinct)
    return _range_fraction(col_stats, op, constant)


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def join_selectivity(
    left_alias: str,
    left_column: str,
    right_alias: str,
    right_column: str,
    table_stats: dict[str, TableStats],
) -> float:
    """Classic System-R equi-join selectivity: ``1 / max(d_left, d_right)``."""
    distincts = []
    for alias, column in ((left_alias, left_column), (right_alias, right_column)):
        stats = table_stats.get(alias)
        col_stats = stats.column(column) if stats else None
        if col_stats is not None and col_stats.distinct > 0:
            distincts.append(col_stats.distinct)
    if not distincts:
        return DEFAULT_SELECTIVITY
    return 1.0 / max(distincts)
