"""Vectorized batch realization of candidate orders (numpy).

The GA scores a whole population of same-length permutations every
generation; the scalar fast path replays them one position at a time in
Python.  This module lowers the evaluator's compiled candidate records
into dense numpy arrays and realizes **all B orders of one batch in
lock-step**: each position is a handful of array operations over a
``[B, maxC]`` candidate matrix instead of ``B`` Python loops — the
per-position work the interpreter used to do per order now runs once.

Equivalence contract
--------------------

The arithmetic mirrors :meth:`WorkloadEvaluator._choose_fast` exactly:

* ``completed = (begin + processing) + transmission`` — the same two-add
  association order;
* discount factors with rate-zero elision (``(1-λ)**latency`` only when
  ``1-λ`` was compiled non-zero, else the factor is exactly ``1``);
* freshness by right-bisect into the same sync-completion arrays;
* candidate choice by **first** strict maximum (``np.argmax`` returns the
  first of equal maxima, matching the scalar loop's strict ``>``).

numpy's ``power`` and libm's ``pow`` may still disagree in the last ulp,
and a near-tie between two candidates can then flip a choice, so batch
totals agree with :meth:`WorkloadEvaluator.evaluate_sequence` within
``REL_TOLERANCE`` relative rather than bit-for-bit
(``tests/test_mqo_vector.py`` property-tests the bound).  Every committed
golden and benchmark therefore keeps the scalar path; the EXT5 scale
sweep opts in via ``OnlineConfig(vectorized_ga=True)``.

numpy is optional at import time: ``HAS_NUMPY`` gates construction so the
rest of ``repro.mqo`` works without it.
"""

from __future__ import annotations

import typing

from repro.errors import OptimizationError
from repro.mqo.evaluator import _TIMELINE_SLACK

try:  # pragma: no cover - import guard
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - numpy is present in CI
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence

    from repro.mqo.evaluator import WorkloadEvaluator

__all__ = ["HAS_NUMPY", "REL_TOLERANCE", "VectorizedEvaluator"]

#: Documented relative tolerance between batch totals and the scalar
#: fast path (last-ulp ``pow`` differences, see module docstring).
REL_TOLERANCE = 1e-9


class _TableTimes:
    """One replica's sync completions as a numpy array with a watermark."""

    __slots__ = ("replica", "times", "initial", "covered")

    def __init__(self, replica, covered: float) -> None:
        self.replica = replica
        self.times = np.asarray(
            replica.completions_through(covered), dtype=np.float64
        )
        self.initial = replica.initial_timestamp
        self.covered = covered

    def ensure(self, through: float) -> None:
        if through > self.covered:
            horizon = through + _TIMELINE_SLACK
            self.times = np.asarray(
                self.replica.completions_through(horizon), dtype=np.float64
            )
            self.covered = horizon


class VectorizedEvaluator:
    """Scores batches of candidate orders against compiled numpy tables.

    Built over a :class:`WorkloadEvaluator`'s compiled per-query records
    for a fixed set of query ids; :meth:`evaluate_batch` then realizes
    any batch of equal-length, distinct-id orders drawn from that set.
    The committed base availability is read from the evaluator at call
    time, so :meth:`WorkloadEvaluator.rebase` is honoured automatically.
    """

    def __init__(
        self,
        evaluator: "WorkloadEvaluator",
        query_ids: "Sequence[int] | None" = None,
    ) -> None:
        if not HAS_NUMPY:
            raise OptimizationError(
                "vectorized evaluation requires numpy, which is not installed"
            )
        self.evaluator = evaluator
        if query_ids is None:
            query_ids = [q.query_id for q in evaluator.workload.queries]
        ids = list(query_ids)
        if not ids:
            raise OptimizationError("vectorized evaluation needs >= 1 query")
        compiled = [evaluator._compiled_query(qid) for qid in ids]
        self._row_of = {qid: row for row, qid in enumerate(ids)}

        sites: set[int] = set()
        tables: set[str] = set()
        max_cands = 1
        for record in compiled:
            max_cands = max(max_cands, len(record.candidates))
            for cand in record.candidates:
                sites.update(cand.sites)
                tables.update(t.replica.name for t in cand.timelines)
        self._sites = sorted(sites)
        site_col = {site: col for col, site in enumerate(self._sites)}
        n, c, s = len(ids), max_cands, len(self._sites)

        self._arrival = np.zeros(n)
        self._valid = np.zeros((n, c), dtype=bool)
        self._earliest = np.zeros((n, c))
        self._processing = np.zeros((n, c))
        self._transmission = np.zeros((n, c))
        self._bv = np.zeros((n, c))
        self._comp_base = np.zeros((n, c))
        self._sync_base = np.zeros((n, c))
        self._has_base = np.zeros((n, c), dtype=bool)
        self._involved = np.zeros((n, c, s), dtype=bool)
        self._legs = np.full((n, c, s), -np.inf)
        # table -> (sync completion times, bool[n, c] read-membership)
        self._reads: dict[str, tuple[_TableTimes, "np.ndarray"]] = {}
        member_of = {table: np.zeros((n, c), dtype=bool) for table in tables}

        for row, record in enumerate(compiled):
            self._arrival[row] = record.arrival
            for col, cand in enumerate(record.candidates):
                self._valid[row, col] = True
                self._earliest[row, col] = cand.earliest_begin
                self._processing[row, col] = cand.processing
                self._transmission[row, col] = cand.transmission
                self._bv[row, col] = cand.business_value
                self._comp_base[row, col] = cand.comp_base
                self._sync_base[row, col] = cand.sync_base
                self._has_base[row, col] = cand.has_base
                for site in cand.sites:
                    self._involved[row, col, site_col[site]] = True
                for site, minutes in cand.commit_legs:
                    self._legs[row, col, site_col[site]] = minutes
                covered = cand.earliest_begin + _TIMELINE_SLACK
                for timeline in cand.timelines:
                    table = timeline.replica.name
                    member_of[table][row, col] = True
                    read = self._reads.get(table)
                    if read is None:
                        self._reads[table] = (
                            _TableTimes(timeline.replica, covered),
                            member_of[table],
                        )
                    else:
                        read[0].ensure(covered)

    # -- batch realization -------------------------------------------------

    def evaluate_batch(
        self, orders: "Sequence[Sequence[int]]"
    ) -> "np.ndarray":
        """Total realized IV of each order, as one ``[B]`` array.

        All orders must have the same length and draw distinct ids from
        the compiled set; base availability comes from the evaluator's
        current :meth:`~WorkloadEvaluator.rebase` state.
        """
        if not orders:
            return np.zeros(0)
        length = len(orders[0])
        if any(len(order) != length for order in orders):
            raise OptimizationError(
                "batch orders must all have the same length"
            )
        try:
            index = np.array(
                [[self._row_of[qid] for qid in order] for order in orders]
            )
        except KeyError as exc:
            raise OptimizationError(
                f"query {exc.args[0]} was not compiled into this batch evaluator"
            ) from exc
        batch = len(orders)
        rows_arange = np.arange(batch)
        base = self.evaluator._base_free_at
        free = np.zeros((batch, len(self._sites)))
        for col, site in enumerate(self._sites):
            free[:, col] = base.get(site, 0.0)
        totals = np.zeros(batch)
        for position in range(length):
            rows = index[:, position]
            valid = self._valid[rows]
            busy = np.where(
                self._involved[rows], free[:, None, :], -np.inf
            ).max(axis=2)
            begin = np.maximum(self._earliest[rows], busy)
            # Two adds in scalar order: (begin + processing) + transmission.
            completed = (begin + self._processing[rows]) + (
                self._transmission[rows]
            )
            stamps = np.full_like(begin, np.inf)
            peak = float(begin.max())
            for table_times, member in self._reads.values():
                mem = member[rows]
                if not mem.any():
                    continue
                table_times.ensure(peak)
                times = table_times.times
                found = np.searchsorted(times, begin, side="right")
                if times.size:
                    at = times[np.maximum(found - 1, 0)]
                else:  # pragma: no cover - schedules are never empty
                    at = np.full_like(begin, table_times.initial)
                stamp = np.where(found > 0, at, table_times.initial)
                stamps = np.where(mem, np.minimum(stamps, stamp), stamps)
            stamp = np.where(
                self._has_base[rows], np.minimum(stamps, begin), stamps
            )
            comp_latency = completed - self._arrival[rows][:, None]
            sync_latency = np.maximum(completed - stamp, 0.0)
            comp_base = self._comp_base[rows]
            sync_base = self._sync_base[rows]
            ivs = self._bv[rows] * np.where(
                comp_base != 0.0,
                np.power(np.where(comp_base != 0.0, comp_base, 1.0),
                         comp_latency),
                1.0,
            ) * np.where(
                sync_base != 0.0,
                np.power(np.where(sync_base != 0.0, sync_base, 1.0),
                         sync_latency),
                1.0,
            )
            ivs = np.where(valid, ivs, -np.inf)
            choice = np.argmax(ivs, axis=1)  # first max, like scalar ">"
            chosen_begin = begin[rows_arange, choice]
            totals += ivs[rows_arange, choice]
            free = np.maximum(
                free, chosen_begin[:, None] + self._legs[rows, choice]
            )
        return totals

    def fitness_batch(
        self, chromosomes: "Sequence[Sequence[int]]"
    ) -> list[float]:
        """GA batch-fitness hook (``GeneticAlgorithm(fitness_batch=...)``)."""
        return [float(value) for value in self.evaluate_batch(chromosomes)]
