"""Unit tests: the Clock seam (SimClock / WallClock) and Timeline validation.

The Timeline tests are regression tests for the event-heap edge cases the
serving runtime exposed: a NaN deadline silently poisons heap ordering
(every comparison is False, so the heap invariant quietly breaks), and a
push *behind* the pop frontier would deliver an event into the past.
Both now raise :class:`~repro.errors.SimulationError` at push time.
"""

from __future__ import annotations

import asyncio
import math
from time import perf_counter

import pytest

from repro.errors import SimulationError
from repro.sim.clocks import Clock, SimClock, WallClock
from repro.sim.timeline import Timeline


class TestTimelineValidation:
    """Regression: invalid deadlines must fail loudly at push time."""

    def test_nan_deadline_rejected(self):
        timeline = Timeline()
        with pytest.raises(SimulationError):
            timeline.push(math.nan, "arrival", 1)

    def test_infinite_deadline_rejected(self):
        timeline = Timeline()
        with pytest.raises(SimulationError):
            timeline.push(math.inf, "arrival", 1)
        with pytest.raises(SimulationError):
            timeline.push(-math.inf, "arrival", 1)

    def test_push_behind_the_pop_frontier_rejected(self):
        timeline = Timeline()
        timeline.push(5.0, "a")
        assert timeline.pop()[0] == 5.0
        with pytest.raises(SimulationError):
            timeline.push(4.9, "late")

    def test_push_at_the_frontier_is_allowed(self):
        timeline = Timeline()
        timeline.push(5.0, "a")
        timeline.pop()
        timeline.push(5.0, "b", "same-instant")
        assert timeline.pop() == (5.0, "b", "same-instant")

    def test_rejected_push_leaves_the_heap_intact(self):
        timeline = Timeline()
        timeline.push(1.0, "a")
        with pytest.raises(SimulationError):
            timeline.push(math.nan, "bad")
        assert len(timeline) == 1
        assert timeline.pop() == (1.0, "a", None)


class TestSimClock:
    def test_satisfies_the_clock_protocol(self):
        assert isinstance(SimClock(), Clock)

    def test_now_tracks_the_latest_pop(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.push(3.0, "a")
        clock.push(1.0, "b")
        assert clock.pop()[0] == 1.0
        assert clock.now == 1.0
        assert clock.pop()[0] == 3.0
        assert clock.now == 3.0

    def test_fifo_tie_break(self):
        clock = SimClock()
        for payload in range(5):
            clock.push(2.0, "tie", payload)
        assert [clock.pop()[2] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_and_truthiness(self):
        clock = SimClock()
        assert not clock and len(clock) == 0
        clock.push(1.0, "a")
        assert clock and len(clock) == 1

    def test_perf_seconds_is_monotonic_wall_time(self):
        clock = SimClock()
        before = perf_counter()
        reading = clock.perf_seconds()
        assert before <= reading <= perf_counter()

    def test_wraps_an_existing_timeline(self):
        timeline = Timeline()
        timeline.push(4.0, "pre")
        clock = SimClock(timeline)
        assert clock.peek_time() == 4.0


class TestWallClock:
    def test_satisfies_the_clock_protocol(self):
        assert isinstance(WallClock(), Clock)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(SimulationError):
            WallClock(seconds_per_minute=0.0)
        with pytest.raises(SimulationError):
            WallClock(seconds_per_minute=-1.0)

    def test_now_advances_with_real_time(self):
        clock = WallClock(seconds_per_minute=0.001)  # 1 ms per stream minute
        first = clock.now
        deadline = perf_counter() + 1.0
        while clock.now == first and perf_counter() < deadline:
            pass
        assert clock.now > first

    def test_wait_pop_returns_a_due_event(self):
        async def run():
            clock = WallClock(seconds_per_minute=0.001)
            clock.push(clock.now, "arrival", 7)
            return await asyncio.wait_for(clock.wait_pop(), timeout=5.0)

        _time, tag, payload = asyncio.run(run())
        assert tag == "arrival" and payload == 7

    def test_push_wakes_a_sleeping_waiter_early(self):
        async def run():
            clock = WallClock(seconds_per_minute=0.001)
            # A far-future event the waiter would otherwise sleep on.
            clock.push(clock.now + 10_000.0, "far", None)
            waiter = asyncio.create_task(clock.wait_pop())
            await asyncio.sleep(0)  # let the waiter reach its sleep
            clock.push(clock.now, "near", "woke")
            return await asyncio.wait_for(waiter, timeout=5.0)

        _time, tag, payload = asyncio.run(run())
        assert tag == "near" and payload == "woke"

    def test_stop_drains_immediately_preserving_scheduled_times(self):
        async def run():
            clock = WallClock(seconds_per_minute=60.0)  # honest real time
            clock.push(clock.now + 100.0, "first", 1)
            clock.push(clock.now + 200.0, "second", 2)
            clock.stop()
            popped = [
                await asyncio.wait_for(clock.wait_pop(), timeout=5.0)
                for _ in range(3)
            ]
            return popped

        started = perf_counter()
        first, second, sentinel = asyncio.run(run())
        assert perf_counter() - started < 5.0  # no real-time wait
        assert first[1] == "first" and second[1] == "second"
        assert second[0] > first[0] > 90.0  # logical deadlines intact
        assert sentinel is None

    def test_stop_releases_a_waiter_blocked_on_an_empty_heap(self):
        async def run():
            clock = WallClock(seconds_per_minute=0.001)
            waiter = asyncio.create_task(clock.wait_pop())
            await asyncio.sleep(0)
            clock.stop()
            return await asyncio.wait_for(waiter, timeout=5.0)

        assert asyncio.run(run()) is None

    def test_len_and_truthiness(self):
        clock = WallClock()
        assert not clock and len(clock) == 0
        clock.push(clock.now + 1.0, "a")
        assert clock and len(clock) == 1
