"""Wall-clock profiling: nested scoped timers for the *real* time domain.

Everything else in :mod:`repro.obs` measures **simulation** time; this
module measures what the hardware actually spent — GA generations,
evaluator realization, plan enumeration, executor dispatch — so the speed
bought by the fast paths can be attributed and regression-gated.

Design constraints:

* **Free when off.**  The shared :data:`PROFILER` ships disabled;
  ``profiler.scope(name)`` then returns one reusable no-op context
  manager, so instrumented hot paths cost a single attribute check.
  Enabling never changes simulation results — the profiler only reads
  ``perf_counter``.
* **Nested attribution.**  Scopes nest on a stack: each
  :class:`ProfileRecord` knows its depth and parent, so exclusive (self)
  time is total time minus direct children, and the chrome://tracing
  export renders the familiar flame rows.
* **A second trace domain.**  :meth:`WallProfiler.to_chrome_trace` uses
  its own pid ("wall-clock") so a profile can be merged next to the
  sim-time trace without the two timelines colliding.

Use as a context manager (``with PROFILER.scope("ga.generation"): …``) or
a decorator (``@profiled("mqo.enumerate")``).  This module depends only on
the standard library and ``repro.errors`` — any layer may import it.
"""

from __future__ import annotations

import functools
from collections.abc import Callable
from dataclasses import dataclass
from time import perf_counter

from repro.errors import SimulationError

__all__ = [
    "ProfileRecord",
    "WallProfiler",
    "PROFILER",
    "profiled",
]


@dataclass(frozen=True)
class ProfileRecord:
    """One closed scope: wall-clock seconds, with nesting context."""

    name: str
    start: float        #: seconds since the profiler's epoch
    duration: float     #: wall-clock seconds inside the scope
    depth: int          #: 0 = top-level
    parent: int | None  #: index of the enclosing record (None at top level)


class _NullScope:
    """The shared do-nothing scope handed out while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _Scope:
    __slots__ = ("_profiler", "_name", "_start", "_index")

    def __init__(self, profiler: "WallProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Scope":
        self._index = self._profiler._open(self._name)
        self._start = self._profiler._timer()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = self._profiler._timer() - self._start
        self._profiler._close(self._name, self._index, elapsed)
        return False


class WallProfiler:
    """Collects nested wall-clock scopes into a flat record list.

    ``timer`` is the monotonic-seconds source (default ``perf_counter``);
    a serving runtime passes its :class:`~repro.sim.clocks.Clock`'s
    ``perf_seconds`` so profile rows share the clock that drives stream
    time — one time base, no cross-domain skew.
    """

    def __init__(
        self,
        enabled: bool = False,
        timer: Callable[[], float] = perf_counter,
    ) -> None:
        self.enabled = enabled
        self.records: list[ProfileRecord] = []
        self._stack: list[int] = []   # indices of open records
        self._epoch: float | None = None
        self._timer = timer

    # -- collection ---------------------------------------------------------

    def enable(self) -> None:
        """Start (or resume) collecting."""
        self.enabled = True
        if self._epoch is None:
            self._epoch = self._timer()

    def disable(self) -> None:
        """Stop collecting (already-recorded scopes are kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Forget everything recorded so far."""
        if self._stack:
            raise SimulationError("cannot reset a profiler with open scopes")
        self.records.clear()
        self._epoch = None

    def scope(self, name: str) -> object:
        """A context manager timing ``name`` (no-op while disabled)."""
        if not self.enabled:
            return _NULL_SCOPE
        return _Scope(self, name)

    def _open(self, name: str) -> int:
        if self._epoch is None:
            self._epoch = self._timer()
        index = len(self.records)
        parent = self._stack[-1] if self._stack else None
        # Reserve the slot so children recorded before this scope closes
        # keep a stable parent index; duration lands at close.
        self.records.append(ProfileRecord(
            name=name,
            start=self._timer() - self._epoch,
            duration=0.0,
            depth=len(self._stack),
            parent=parent,
        ))
        self._stack.append(index)
        return index

    def _close(self, name: str, index: int, elapsed: float) -> None:
        opened = self._stack.pop()
        if opened != index:  # pragma: no cover - misuse guard
            raise SimulationError(
                f"profiler scopes closed out of order: {name!r}"
            )
        record = self.records[index]
        self.records[index] = ProfileRecord(
            name=record.name,
            start=record.start,
            duration=elapsed,
            depth=record.depth,
            parent=record.parent,
        )

    # -- reading ------------------------------------------------------------

    def attribution(self) -> dict[str, dict[str, float]]:
        """Per-phase wall-clock table: calls, total, self (exclusive), mean.

        ``total`` sums each scope's inclusive time; ``self`` subtracts the
        time spent in direct children, so summing ``self`` over all phases
        recovers (approximately) the profiled wall clock once.
        """
        child_time = [0.0] * len(self.records)
        for record in self.records:
            if record.parent is not None:
                child_time[record.parent] += record.duration
        table: dict[str, dict[str, float]] = {}
        for index, record in enumerate(self.records):
            row = table.setdefault(
                record.name, {"calls": 0, "total_s": 0.0, "self_s": 0.0}
            )
            row["calls"] += 1
            row["total_s"] += record.duration
            row["self_s"] += record.duration - child_time[index]
        for row in table.values():
            row["mean_ms"] = row["total_s"] * 1e3 / row["calls"]
        return table

    def render(self) -> str:
        """The attribution table as aligned text, hottest phase first."""
        table = self.attribution()
        if not table:
            return "(no profile records)"
        header = f"{'phase':<28} {'calls':>8} {'total_s':>10} {'self_s':>10} {'mean_ms':>10}"
        lines = [header, "-" * len(header)]
        for name, row in sorted(
            table.items(), key=lambda item: -item[1]["self_s"]
        ):
            lines.append(
                f"{name:<28} {row['calls']:>8} {row['total_s']:>10.4f} "
                f"{row['self_s']:>10.4f} {row['mean_ms']:>10.3f}"
            )
        return "\n".join(lines)

    def to_chrome_trace(self) -> dict:
        """The profile in chrome ``trace_event`` format (wall-clock pid).

        Timestamps are microseconds since the profiler epoch on pid 2 —
        disjoint from the sim-time export's pid 1, so both domains can be
        merged into one file without overlapping.
        """
        trace_events: list[dict] = [{
            "name": "process_name",
            "ph": "M",
            "pid": 2,
            "args": {"name": "wall-clock"},
        }]
        for record in self.records:
            trace_events.append({
                "name": record.name,
                "ph": "X",
                "pid": 2,
                "tid": 1,
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "cat": "profile",
                "args": {"depth": record.depth},
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


#: The process-wide profiler all instrumented code points at.  Disabled by
#: default: instrumentation costs one ``enabled`` check until a profiling
#: entry point (``--profile``, a test) turns it on.
PROFILER = WallProfiler(enabled=False)


def profiled(name: str, profiler: WallProfiler | None = None) -> Callable:
    """Decorator form: time every call to the wrapped function."""

    def decorate(function: Callable) -> Callable:
        target = profiler if profiler is not None else PROFILER

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            if not target.enabled:
                return function(*args, **kwargs)
            with target.scope(name):
                return function(*args, **kwargs)

        return wrapper

    return decorate
