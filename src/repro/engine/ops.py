"""Physical operators: scan, filter, project, hash join, aggregate, sort.

Operators are iterators over *row namespaces* — dicts keyed by qualified
``alias.column`` names — and record their work in a shared
:class:`ExecutionStats`, which the cost-model calibration reads.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.engine.expr import Expr
from repro.engine.table import Table
from repro.errors import EngineError

__all__ = [
    "ExecutionStats",
    "Operator",
    "Scan",
    "Filter",
    "Project",
    "HashJoin",
    "SemiJoin",
    "AntiJoin",
    "Aggregate",
    "AggSpec",
    "Distinct",
    "Sort",
    "Limit",
]


@dataclass
class ExecutionStats:
    """Work counters accumulated across an operator tree."""

    rows_scanned: int = 0
    rows_filtered: int = 0
    rows_joined: int = 0
    rows_output: int = 0
    hash_build_rows: int = 0
    operators: int = 0

    @property
    def total_work(self) -> int:
        """A single scalar 'work units' figure for cost calibration."""
        return (
            self.rows_scanned
            + self.rows_filtered
            + 2 * self.rows_joined
            + self.hash_build_rows
            + self.rows_output
        )


class Operator:
    """Base class: an iterable of row namespaces with known output columns."""

    def __init__(self, stats: ExecutionStats) -> None:
        self.stats = stats
        stats.operators += 1

    @property
    def columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[dict]:
        raise NotImplementedError


class Scan(Operator):
    """Full scan of a base table under an alias."""

    def __init__(self, table: Table, alias: str, stats: ExecutionStats) -> None:
        super().__init__(stats)
        self.table = table
        self.alias = alias
        self._columns = tuple(
            f"{alias}.{name}" for name in table.schema.column_names
        )

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    def __iter__(self) -> Iterator[dict]:
        names = self._columns
        for row in self.table.rows():
            self.stats.rows_scanned += 1
            yield dict(zip(names, row))


class Filter(Operator):
    """Keep only rows satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Expr) -> None:
        super().__init__(child.stats)
        self.child = child
        self.predicate = predicate

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def __iter__(self) -> Iterator[dict]:
        for row in self.child:
            self.stats.rows_filtered += 1
            if self.predicate.evaluate(row):
                yield row


class Project(Operator):
    """Compute named output expressions for each row."""

    def __init__(
        self,
        child: Operator,
        outputs: Sequence[tuple[str, Expr]],
    ) -> None:
        super().__init__(child.stats)
        if not outputs:
            raise EngineError("Project needs at least one output expression")
        self.child = child
        self.outputs = list(outputs)

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(name for name, _expr in self.outputs)

    def __iter__(self) -> Iterator[dict]:
        for row in self.child:
            yield {name: expr.evaluate(row) for name, expr in self.outputs}


class HashJoin(Operator):
    """Equi-join: build a hash table on the smaller (left) input, probe right."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        if left.stats is not right.stats:
            raise EngineError("join children must share one ExecutionStats")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise EngineError("join needs equal, non-empty key lists")
        super().__init__(left.stats)
        self.left = left
        self.right = right
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns + self.right.columns

    def __iter__(self) -> Iterator[dict]:
        buckets: dict[tuple, list[dict]] = {}
        for row in self.left:
            self.stats.hash_build_rows += 1
            key = tuple(row[k] for k in self.left_keys)
            if any(part is None for part in key):
                continue  # NULL never joins
            buckets.setdefault(key, []).append(row)
        for row in self.right:
            key = tuple(row[k] for k in self.right_keys)
            if any(part is None for part in key):
                continue
            for match in buckets.get(key, ()):
                self.stats.rows_joined += 1
                merged = dict(match)
                merged.update(row)
                yield merged


class _ExistenceJoin(Operator):
    """Shared machinery for semi and anti joins (EXISTS / NOT EXISTS)."""

    _keep_matches: bool

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        if left.stats is not right.stats:
            raise EngineError("join children must share one ExecutionStats")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise EngineError("join needs equal, non-empty key lists")
        super().__init__(left.stats)
        self.left = left
        self.right = right
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns  # existence joins keep only the left side

    def __iter__(self) -> Iterator[dict]:
        matches: set[tuple] = set()
        for row in self.right:
            self.stats.hash_build_rows += 1
            key = tuple(row[k] for k in self.right_keys)
            if any(part is None for part in key):
                continue
            matches.add(key)
        for row in self.left:
            key = tuple(row[k] for k in self.left_keys)
            has_null = any(part is None for part in key)
            found = (not has_null) and key in matches
            if found == self._keep_matches:
                self.stats.rows_joined += 1
                yield row


class SemiJoin(_ExistenceJoin):
    """Left rows with at least one key match on the right (SQL EXISTS)."""

    _keep_matches = True


class AntiJoin(_ExistenceJoin):
    """Left rows with no key match on the right (SQL NOT EXISTS).

    SQL subtlety preserved: a left row with a NULL key never matches, so it
    *is* kept by the anti join (``found`` is False).
    """

    _keep_matches = False


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: function over an expression, named ``out``."""

    func: str  # sum | count | avg | min | max
    expr: Expr | None  # None only for count(*)
    out: str

    FUNCS = ("sum", "count", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.func not in self.FUNCS:
            raise EngineError(f"unknown aggregate function {self.func!r}")
        if self.expr is None and self.func != "count":
            raise EngineError(f"aggregate {self.func} needs an expression")


class _Accumulator:
    """Online accumulator for one aggregate function."""

    def __init__(self, spec: AggSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def add(self, row: dict) -> None:
        if self.spec.expr is None:
            self.count += 1
            return
        value = self.spec.expr.evaluate(row)
        if value is None:
            return
        self.count += 1
        if self.spec.func in ("sum", "avg"):
            self.total += value
        elif self.spec.func == "min":
            self.minimum = value if self.minimum is None else min(self.minimum, value)
        elif self.spec.func == "max":
            self.maximum = value if self.maximum is None else max(self.maximum, value)

    def result(self):
        func = self.spec.func
        if func == "count":
            return self.count
        if func == "sum":
            return self.total if self.count else None
        if func == "avg":
            return self.total / self.count if self.count else None
        if func == "min":
            return self.minimum
        return self.maximum


class Aggregate(Operator):
    """Hash group-by with streaming accumulators."""

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[AggSpec],
    ) -> None:
        if not aggregates and not group_by:
            raise EngineError("Aggregate needs group keys or aggregate specs")
        super().__init__(child.stats)
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = list(aggregates)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.group_by + tuple(spec.out for spec in self.aggregates)

    def __iter__(self) -> Iterator[dict]:
        groups: dict[tuple, list[_Accumulator]] = {}
        order: list[tuple] = []
        for row in self.child:
            key = tuple(row[k] for k in self.group_by)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(spec) for spec in self.aggregates]
                groups[key] = accs
                order.append(key)
            for acc in accs:
                acc.add(row)
        if not groups and not self.group_by:
            # SQL semantics: a global aggregate over zero rows yields one row.
            groups[()] = [_Accumulator(spec) for spec in self.aggregates]
            order.append(())
        for key in order:
            out = dict(zip(self.group_by, key))
            for acc in groups[key]:
                out[acc.spec.out] = acc.result()
            self.stats.rows_output += 1
            yield out


class Distinct(Operator):
    """Remove duplicate rows (over all columns, or a key subset)."""

    def __init__(self, child: Operator, keys: Sequence[str] | None = None) -> None:
        super().__init__(child.stats)
        self.child = child
        self.keys = tuple(keys) if keys is not None else None

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def __iter__(self) -> Iterator[dict]:
        seen: set[tuple] = set()
        key_columns = self.keys if self.keys is not None else self.child.columns
        for row in self.child:
            key = tuple(row[column] for column in key_columns)
            if key in seen:
                continue
            seen.add(key)
            self.stats.rows_output += 1
            yield row


class Sort(Operator):
    """Sort by one or more columns (NULLs last)."""

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        descending: bool = False,
    ) -> None:
        if not keys:
            raise EngineError("Sort needs at least one key column")
        super().__init__(child.stats)
        self.child = child
        self.keys = tuple(keys)
        self.descending = descending

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def __iter__(self) -> Iterator[dict]:
        rows = list(self.child)

        def sort_key(row: dict):
            parts = []
            for key in self.keys:
                value = row[key]
                parts.append((value is None, value))
            return parts

        rows.sort(key=sort_key, reverse=self.descending)
        self.stats.rows_scanned += int(
            len(rows) * math.log2(len(rows)) if len(rows) > 1 else 0
        )
        return iter(rows)


class Limit(Operator):
    """Pass through at most ``n`` rows."""

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise EngineError(f"Limit needs n >= 0, got {n}")
        super().__init__(child.stats)
        self.child = child
        self.n = n

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def __iter__(self) -> Iterator[dict]:
        remaining = self.n
        for row in self.child:
            if remaining <= 0:
                return
            remaining -= 1
            yield row
