"""Fleet telemetry: cross-process trace collection and registry merging.

The sharded runtimes (EXT5's spawned workers, and any future multi-process
serving tier) are observability black boxes by default: lifecycle events,
metrics and SLO state die with the worker.  This module ships them home.

Each shard worker attaches a :class:`ShardSpoolWriter` to its per-shard
:class:`~repro.sim.trace.Tracer`: every emitted record is framed onto a
length-prefixed, CRC-guarded JSONL *spool* file — the exact ``D1`` framing
discipline of :mod:`repro.durable.journal`, reused so torn tails from a
killed worker are detected rather than half-parsed.  At join, the parent
hands the spool paths to :class:`FleetCollector`, which rebuilds

* **one canonical trace** — per-shard streams merged into a stable global
  time order (ties broken by shard index, then per-shard emit order), every
  record tagged ``shard=k`` in its detail, exportable to chrome://tracing
  with one process group per shard (:meth:`FleetCollector.chrome_trace`);
* **one merged registry** — :meth:`LiveRegistry.merge` over the shipped
  per-shard registry states (counters sum, histograms add bucket-wise,
  EWMAs sum exactly, P² sketches combine within their documented bound);
* **one fleet snapshot** — per-shard summaries (including each shard's
  ``dropped_events``) plus fleet totals whose IV/latency sums are
  *bit-exact* left-to-right sums of the per-shard values, which
  :meth:`TraceChecker.check_fleet <repro.obs.checker.TraceChecker.check_fleet>`
  re-derives from the trace and audits.

Frame kinds on the spool: ``fleet.header`` (shard identity + metadata),
``fleet.trace`` (one trace record), ``fleet.registry`` (the shard's
:meth:`LiveRegistry.state_dict`), ``fleet.summary`` (scheduler totals).

Layering note: this is the one place ``obs`` reaches *up* to
``durable.journal`` — deferred to call time because the ``durable`` package
imports ``obs.ledger`` at import time (ARCHITECTURE §11 documents the
exception; the journal module itself depends only on the stdlib and
``repro.errors``).
"""

from __future__ import annotations

import heapq
import typing
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.obs.export import record_from_dict, record_to_dict, to_chrome_trace
from repro.obs.live import LiveRegistry
from repro.sim.trace import TraceRecord

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import Tracer

__all__ = [
    "FLEET_PID_BASE",
    "SPOOL_SCHEMA",
    "ShardSpoolWriter",
    "ShardTelemetry",
    "read_spool",
    "FleetCollector",
]

#: Spool frame schema version (bump on incompatible frame changes).
SPOOL_SCHEMA = 1

#: Chrome-trace pid of shard 0; shard *k* renders as process ``base + k``.
#: Starts above pid 1 (the single-process simulation domain) and pid 2
#: (the wall-clock profiler) so fleet traces never collide with either.
FLEET_PID_BASE = 10

_HEADER = "fleet.header"
_TRACE = "fleet.trace"
_REGISTRY = "fleet.registry"
_SUMMARY = "fleet.summary"


class ShardSpoolWriter:
    """Stream one shard's telemetry onto a D1-framed spool file.

    Write order is header first (enforced), then any number of trace
    frames, then optionally one registry frame and one summary frame.
    ``fsync_every`` defaults high: a spool is collected at *join*, not
    replayed after a crash, so durability of the tail buys nothing — the
    framing is reused for its torn-tail *detection*, not its recovery.
    """

    def __init__(
        self,
        path: str,
        shard: int,
        meta: dict | None = None,
        fsync_every: int = 10_000,
    ) -> None:
        from repro.durable.journal import JournalWriter  # see module docstring

        if shard < 0:
            raise SimulationError(f"shard index must be >= 0, got {shard}")
        self.path = str(path)
        self.shard = shard
        self._journal = JournalWriter(path, fsync_every=fsync_every)
        self._journal.append({
            "kind": _HEADER,
            "schema": SPOOL_SCHEMA,
            "shard": shard,
            "meta": dict(meta or {}),
        })

    def attach(self, tracer: "Tracer") -> "ShardSpoolWriter":
        """Subscribe to every future record of ``tracer``; returns self."""
        tracer.subscribe(self.record)
        return self

    def record(self, record: TraceRecord) -> None:
        """Frame one trace record onto the spool."""
        self._journal.append({"kind": _TRACE, "record": record_to_dict(record)})

    def registry(self, registry: LiveRegistry) -> None:
        """Ship the shard's live-registry state (call once, at shard end)."""
        self._journal.append({"kind": _REGISTRY, "state": registry.state_dict()})

    def summary(self, **data) -> None:
        """Ship the shard's scheduler totals (call once, at shard end)."""
        self._journal.append({"kind": _SUMMARY, "data": data})

    def close(self) -> None:
        """Flush and close the spool."""
        self._journal.close()

    def __enter__(self) -> "ShardSpoolWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ShardTelemetry:
    """Everything one shard shipped home: tagged trace + state + totals."""

    shard: int
    meta: dict = field(default_factory=dict)
    #: Trace records in emit order, each detail tagged ``shard=<index>``.
    records: list[TraceRecord] = field(default_factory=list)
    registry: LiveRegistry | None = None
    summary: dict = field(default_factory=dict)

    @property
    def dropped_events(self) -> int:
        """Events the shard's tracer evicted before they could be spooled."""
        return int(self.summary.get("dropped_events", 0))


def read_spool(path: str) -> ShardTelemetry:
    """Strictly read one shard spool back into :class:`ShardTelemetry`.

    A torn tail or CRC mismatch raises (via the journal's strict reader):
    a spool is written by a worker that *joined successfully*, so unlike a
    crash journal an invalid byte here is a real bug, not an expected
    recovery state.
    """
    from repro.durable.journal import read_journal  # see module docstring

    frames = read_journal(path)
    if not frames or frames[0][0].get("kind") != _HEADER:
        raise SimulationError(f"spool {path} does not start with a fleet.header")
    header = frames[0][0]
    if header.get("schema") != SPOOL_SCHEMA:
        raise SimulationError(
            f"spool {path} has schema {header.get('schema')!r}, "
            f"expected {SPOOL_SCHEMA}"
        )
    shard = int(header["shard"])
    telemetry = ShardTelemetry(shard=shard, meta=dict(header.get("meta", {})))
    for payload, offset in frames[1:]:
        kind = payload.get("kind")
        if kind == _TRACE:
            record = record_from_dict(payload["record"])
            record.detail["shard"] = shard
            telemetry.records.append(record)
        elif kind == _REGISTRY:
            telemetry.registry = LiveRegistry.from_state(payload["state"])
        elif kind == _SUMMARY:
            telemetry.summary = dict(payload["data"])
        elif kind == _HEADER:
            raise SimulationError(
                f"spool {path}: duplicate header at offset {offset}"
            )
        else:
            raise SimulationError(
                f"spool {path}: unknown frame kind {kind!r} at offset {offset}"
            )
    return telemetry


def _lsum(values: typing.Iterable[float]) -> float:
    """Plain left-to-right float sum — the fleet's *bit-exactness contract*.

    Every fleet total is this fold over per-shard values in shard order;
    the checker recomputes the same fold, so equality is ``==``, not
    within-epsilon.
    """
    total = 0.0
    for value in values:
        total += value
    return total


class FleetCollector:
    """Merge per-shard telemetry spools into one canonical fleet view."""

    def __init__(self, shards: typing.Sequence[ShardTelemetry]) -> None:
        if not shards:
            raise SimulationError("FleetCollector needs at least one shard")
        self.shards = sorted(shards, key=lambda telemetry: telemetry.shard)
        seen = [telemetry.shard for telemetry in self.shards]
        if len(set(seen)) != len(seen):
            raise SimulationError(f"duplicate shard indices in fleet: {seen}")
        self._records: list[TraceRecord] | None = None
        self._registry: LiveRegistry | None = None

    @classmethod
    def from_paths(cls, paths: typing.Sequence[str]) -> "FleetCollector":
        """Collect spools written by joined shard workers."""
        return cls([read_spool(path) for path in paths])

    # -- the canonical trace ------------------------------------------------

    @property
    def records(self) -> list[TraceRecord]:
        """The merged fleet trace: global time order, stable within ties.

        Per-shard streams are individually time-monotone (the tracer
        enforces it), so a k-way heap merge on time yields a total order;
        ties keep shard-index order, then per-shard emit order — the same
        input always merges to the same output.
        """
        if self._records is None:
            self._records = list(
                heapq.merge(
                    *(telemetry.records for telemetry in self.shards),
                    key=lambda record: record.time,
                )
            )
        return self._records

    # -- the merged registry ------------------------------------------------

    @property
    def registry(self) -> LiveRegistry:
        """The fleet registry: :meth:`LiveRegistry.merge` over shard states."""
        if self._registry is None:
            states = [
                telemetry.registry
                for telemetry in self.shards
                if telemetry.registry is not None
            ]
            if not states:
                raise SimulationError("no shard shipped a registry frame")
            self._registry = LiveRegistry.merge(states)
        return self._registry

    @property
    def has_registry(self) -> bool:
        """Whether any shard shipped a registry frame."""
        return any(telemetry.registry is not None for telemetry in self.shards)

    # -- conservation inputs ------------------------------------------------

    def shard_ledger_totals(self) -> list[dict[str, float]]:
        """Per-shard ledger sums (reported IV, computational latency).

        Summed in trace order within each shard — the same order the
        checker re-derives them in, so the fleet totals below are
        reproducible bit-for-bit from the trace alone.
        """
        from repro.obs import events

        totals = []
        for telemetry in self.shards:
            ledger_iv = 0.0
            ledger_cl = 0.0
            entries = 0
            for record in telemetry.records:
                if record.kind != events.LEDGER:
                    continue
                detail = record.detail
                ledger_iv += detail.get("reported_iv", 0.0)
                # CL exactly as IVLedgerEntry.computational_latency defines it.
                ledger_cl += detail.get("completed_at", 0.0) - detail.get(
                    "submitted_at", 0.0
                )
                entries += 1
            totals.append({
                "ledger_entries": entries,
                "ledger_iv": ledger_iv,
                "ledger_cl": ledger_cl,
            })
        return totals

    # -- the fleet snapshot -------------------------------------------------

    def snapshot(self, now: float | None = None) -> dict:
        """One JSON-ready fleet view: per-shard panels + bit-exact totals.

        ``shards`` keeps every per-shard summary (scheduler totals,
        ``dropped_events``, ledger sums, and the shard registry's *gauges*
        — gauges are deliberately per-shard, never blended); ``fleet``
        holds the totals, each a left-to-right sum over shards in shard
        order (:func:`_lsum`), which ``check_fleet`` audits bit-exactly
        against the trace.
        """
        ledger_totals = self.shard_ledger_totals()
        shards = []
        for telemetry, ledger in zip(self.shards, ledger_totals):
            panel = {
                "shard": telemetry.shard,
                "records": len(telemetry.records),
                "dropped_events": telemetry.dropped_events,
                **{
                    key: value
                    for key, value in telemetry.summary.items()
                    if key != "dropped_events"
                },
                **ledger,
            }
            if telemetry.registry is not None:
                panel["gauges"] = telemetry.registry.snapshot(now)["gauges"]
            shards.append(panel)
        fleet = {
            "shards": len(self.shards),
            "records": sum(panel["records"] for panel in shards),
            "dropped_events": sum(panel["dropped_events"] for panel in shards),
            "ledger_entries": sum(
                ledger["ledger_entries"] for ledger in ledger_totals
            ),
            "ledger_iv": _lsum(ledger["ledger_iv"] for ledger in ledger_totals),
            "ledger_cl": _lsum(ledger["ledger_cl"] for ledger in ledger_totals),
        }
        if all("total_iv" in telemetry.summary for telemetry in self.shards):
            fleet["total_iv"] = _lsum(
                telemetry.summary["total_iv"] for telemetry in self.shards
            )
        snapshot = {"shards": shards, "fleet": fleet}
        if self.has_registry:
            snapshot["registry"] = self.registry.snapshot(now)
        return snapshot

    # -- exports ------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON with one process group per shard."""
        trace_events: list[dict] = []
        for telemetry in self.shards:
            # The exporter parses LEDGER details through the *strict*
            # IVLedgerEntry.from_dict; hand it records without the shard
            # tag (the pid carries the shard identity in this format).
            untagged = [
                TraceRecord(
                    time=record.time,
                    kind=record.kind,
                    subject=record.subject,
                    detail={
                        key: value
                        for key, value in record.detail.items()
                        if key != "shard"
                    },
                )
                for record in telemetry.records
            ]
            shard_trace = to_chrome_trace(
                untagged,
                pid=FLEET_PID_BASE + telemetry.shard,
                process_name=f"shard {telemetry.shard}",
            )
            trace_events.extend(shard_trace["traceEvents"])
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def check(self) -> list:
        """Audit the fleet: per-shard invariants + cross-shard rules.

        Delegates to
        :meth:`~repro.obs.checker.TraceChecker.check_fleet`; returns the
        violation list (empty == clean).
        """
        from repro.obs.checker import TraceChecker

        return TraceChecker().check_fleet(self.records, self.snapshot())
