"""Ablations (DESIGN.md §6): aging, search pruning, placement advisor."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    AblationConfig,
    run_advisor_ablation,
    run_aging_ablation,
    run_ga_ablation,
    run_routing_ablation,
    run_search_ablation,
)


def test_abl1_starvation_prevention(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_aging_ablation(AblationConfig()), rounds=1, iterations=1
    )
    show(table.render())

    rows = {row[0]: row for row in table.rows}
    no_aging_wait = rows["no-aging"][3]
    aging_wait = rows["aging"][3]
    # Aging pulls the starving big report forward ...
    assert aging_wait < no_aging_wait / 2
    # ... at some cost in total IV (the paper's stated trade-off).
    assert rows["no-aging"][1] >= rows["aging"][1]


def test_abl2_scatter_gather_vs_exhaustive(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_search_ablation(AblationConfig()), rounds=1, iterations=1
    )
    show(table.render())

    for row in table.rows:
        _trial, _tables, sg_iv, oracle_iv, sg_plans, oracle_plans, *_ = row
        # Gather pruning is lossless under uniform per-table costs ...
        assert sg_iv == pytest.approx(oracle_iv, rel=1e-9)
        # ... while evaluating far fewer plans.
        assert sg_plans < oracle_plans / 3


def test_abl4_precalculated_routing(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_routing_ablation(AblationConfig()), rounds=1, iterations=1
    )
    show(table.render())

    rows = {row[0]: row for row in table.rows}
    live_iv, live_us = rows["live-search"][1], rows["live-search"][3]
    routed_iv, routed_us = rows["routing-table"][1], rows["routing-table"][3]
    # Table answers are near-optimal ...
    assert routed_iv >= 0.98 * live_iv
    # ... and lookups are faster than running the search.
    assert routed_us < live_us


def test_abl5_ga_vs_simpler_searches(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_ga_ablation(AblationConfig()), rounds=1, iterations=1
    )
    show(table.render())

    values = dict(zip(table.column("strategy"), table.column("total_iv")))
    # Every budgeted search beats the naive arrival order ...
    for strategy in ("random-search", "hill-climb", "genetic-algorithm"):
        assert values[strategy] >= values["arrival-order"] - 1e-9
    # ... and the GA at least matches the best simpler strategy (the
    # paper's exploration/exploitation claim).
    assert values["genetic-algorithm"] >= max(
        values["random-search"], values["hill-climb"]
    ) - 1e-9


def test_abl3_placement_advisor(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_advisor_ablation(AblationConfig()), rounds=1, iterations=1
    )
    show(table.render())

    values = dict(zip(table.column("placement"), table.column("expected_iv")))
    assert values["advisor"] >= values["random-5"] - 1e-9
    assert values["advisor"] > values["none"]
