"""Unit tests: network model and the combo cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, PlanError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import (
    CostModel,
    CostParameters,
    StaticCostProvider,
)
from repro.federation.network import NetworkModel
from repro.workload.query import DSSQuery


class TestNetworkModel:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        network = NetworkModel(base_latency=0.1, bandwidth=1000.0)
        assert network.transfer_time(500.0) == pytest.approx(0.6)

    def test_zero_bytes_still_pays_base_latency(self):
        # Regression: an empty result is still a round trip — zero-byte
        # payloads must not skip the connection latency.
        network = NetworkModel(base_latency=0.1, bandwidth=1000.0)
        assert network.transfer_time(0.0) == pytest.approx(0.1)

    def test_coordination_charges_beyond_first_site(self):
        network = NetworkModel(coordination_overhead=0.5)
        assert network.coordination_time(0) == 0.0
        assert network.coordination_time(1) == 0.0
        assert network.coordination_time(3) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            NetworkModel(base_latency=-1.0)
        with pytest.raises(ConfigError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(ConfigError):
            NetworkModel().transfer_time(-5.0)
        with pytest.raises(ConfigError):
            NetworkModel().coordination_time(-1)


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(TableDef("small", site=0, row_count=100, row_bytes=64))
    catalog.add_table(TableDef("big", site=1, row_count=10_000, row_bytes=64))
    catalog.add_table(TableDef("mid", site=0, row_count=1_000, row_bytes=64))
    for name in ("small", "big", "mid"):
        catalog.add_replica(name, FixedSyncSchedule([1.0], tail_period=10.0))
    return catalog


def make_query(tables=("small", "big", "mid"), base_work=11_100.0) -> DSSQuery:
    return DSSQuery(
        query_id=1, name="q", tables=tables, base_work=base_work
    )


class TestCostModel:
    def test_base_work_from_explicit_value(self):
        model = CostModel(build_catalog())
        assert model.base_work(make_query()) == 11_100.0

    def test_base_work_fallback_from_row_counts(self):
        model = CostModel(build_catalog())
        query = DSSQuery(query_id=2, name="q2", tables=("small", "mid"))
        assert model.base_work(query) == pytest.approx(1_100.0)

    def test_all_local_combo_has_no_legs(self):
        model = CostModel(build_catalog())
        cost = model.combo_cost(make_query(), frozenset())
        assert cost.site_legs == ()
        assert cost.local_minutes > 0

    def test_remote_combo_groups_legs_by_site(self):
        model = CostModel(build_catalog())
        cost = model.combo_cost(
            make_query(), frozenset({"small", "mid", "big"})
        )
        assert cost.remote_sites == (0, 1)  # small+mid share site 0

    def test_more_remote_tables_cost_more(self):
        model = CostModel(build_catalog())
        query = make_query()
        local = model.combo_cost(query, frozenset()).total
        one = model.combo_cost(query, frozenset({"big"})).total
        everything = model.combo_cost(
            query, frozenset({"small", "big", "mid"})
        ).total
        assert local < one <= everything

    def test_work_shares_proportional_to_rows(self):
        model = CostModel(build_catalog())
        query = make_query()
        # "big" is 10000/11100 of the work; its remote leg dominates.
        big_leg = model.combo_cost(query, frozenset({"big"}))
        small_leg = model.combo_cost(query, frozenset({"small"}))
        assert big_leg.leg_minutes(1) > 5 * small_leg.leg_minutes(0)

    def test_unknown_remote_table_rejected(self):
        model = CostModel(build_catalog())
        with pytest.raises(PlanError):
            model.combo_cost(make_query(), frozenset({"zz"}))

    def test_combo_cache_hits(self):
        model = CostModel(build_catalog())
        query = make_query()
        first = model.combo_cost(query, frozenset({"big"}))
        second = model.combo_cost(query, frozenset({"big"}))
        assert first is second

    def test_identical_queries_in_different_objects_do_not_share_cache(self):
        model = CostModel(build_catalog())
        a = make_query(base_work=100.0)
        b = make_query(base_work=50_000.0)  # same id, different object
        assert model.base_work(a) == 100.0
        assert model.base_work(b) == 50_000.0

    def test_engine_calibration_path(self, tpch_tiny):
        from repro.workload.tpch_queries import tpch_query

        catalog = Catalog()
        for index, name in enumerate(tpch_tiny.table_names):
            catalog.add_table(
                TableDef(name, site=index % 3,
                         row_count=tpch_tiny.row_counts[name])
            )
        model = CostModel(catalog, engine_db=tpch_tiny.database)
        query = tpch_query("Q3", query_id=3)
        work = model.base_work(query)
        assert work > 100.0  # planner-estimated, not the row-count fallback

    def test_min_processing_floor(self):
        catalog = Catalog()
        catalog.add_table(TableDef("tiny", site=0, row_count=1))
        model = CostModel(
            catalog, params=CostParameters(min_processing=0.5)
        )
        query = DSSQuery(query_id=1, name="q", tables=("tiny",), base_work=1.0)
        cost = model.combo_cost(query, frozenset())
        assert cost.local_minutes == pytest.approx(0.5)

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            CostParameters(local_throughput=0.0)
        with pytest.raises(ConfigError):
            CostParameters(ship_fraction=1.5)
        with pytest.raises(ConfigError):
            CostParameters(result_bytes=-1.0)


class TestStaticCostProvider:
    def test_costs_by_remote_count(self, fig4_world):
        catalog, provider, query, _rates = fig4_world
        assert provider.combo_cost(query, frozenset()).total == 2.0
        assert provider.combo_cost(query, frozenset({"T1"})).total == 4.0
        assert provider.combo_cost(
            query, frozenset({"T1", "T2", "T3", "T4"})
        ).total == 10.0

    def test_overrides_take_precedence(self, fig4_world):
        catalog, _provider, query, _rates = fig4_world
        provider = StaticCostProvider(
            catalog, {0: 2.0, 1: 4.0},
            overrides={frozenset({"T1"}): 99.0},
        )
        assert provider.combo_cost(query, frozenset({"T1"})).total == 99.0
        assert provider.combo_cost(query, frozenset({"T2"})).total == 4.0

    def test_missing_count_raises(self, fig4_world):
        catalog, _provider, query, _rates = fig4_world
        provider = StaticCostProvider(catalog, {0: 2.0})
        with pytest.raises(PlanError):
            provider.combo_cost(query, frozenset({"T1"}))

    def test_unknown_table_rejected(self, fig4_world):
        _catalog, provider, query, _rates = fig4_world
        with pytest.raises(PlanError):
            provider.combo_cost(query, frozenset({"ZZ"}))

    def test_legs_cover_involved_sites(self, fig4_world):
        _catalog, provider, query, _rates = fig4_world
        cost = provider.combo_cost(query, frozenset({"T1", "T3"}))
        assert cost.remote_sites == (0, 2)

    def test_validation(self, fig4_world):
        catalog, _provider, _query, _rates = fig4_world
        with pytest.raises(ConfigError):
            StaticCostProvider(catalog, {})
        with pytest.raises(ConfigError):
            StaticCostProvider(catalog, {0: -1.0})
        with pytest.raises(ConfigError):
            StaticCostProvider(catalog, {0: 1.0}, remote_leg_fraction=2.0)
