"""Unit and property tests: statistics monitors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.monitor import Monitor, Tally, TimeWeightedMonitor


class TestMonitor:
    def test_empty_monitor_defaults(self):
        monitor = Monitor()
        assert monitor.count == 0
        assert monitor.mean == 0.0
        assert monitor.variance == 0.0

    def test_mean_min_max_total(self):
        monitor = Monitor()
        for value in (1.0, 2.0, 3.0, 4.0):
            monitor.observe(value)
        assert monitor.mean == pytest.approx(2.5)
        assert monitor.minimum == 1.0
        assert monitor.maximum == 4.0
        assert monitor.total == pytest.approx(10.0)

    def test_single_observation_has_zero_variance(self):
        monitor = Monitor()
        monitor.observe(5.0)
        assert monitor.variance == 0.0
        assert monitor.stddev == 0.0

    def test_percentile_interpolates(self):
        monitor = Monitor(keep_values=True)
        for value in (10.0, 20.0, 30.0, 40.0):
            monitor.observe(value)
        assert monitor.percentile(0) == 10.0
        assert monitor.percentile(100) == 40.0
        assert monitor.percentile(50) == pytest.approx(25.0)

    def test_percentile_of_empty_raises(self):
        with pytest.raises(SimulationError):
            Monitor(keep_values=True).percentile(50)

    def test_percentile_out_of_range_raises(self):
        monitor = Monitor(keep_values=True)
        monitor.observe(1.0)
        with pytest.raises(SimulationError):
            monitor.percentile(101)

    def test_retention_is_opt_in(self):
        # Regression (unbounded memory): the default monitor must not
        # buffer raw samples at all.
        monitor = Monitor()
        for value in range(1_000):
            monitor.observe(float(value))
        assert monitor.retained == 0
        assert monitor.values == []
        with pytest.raises(SimulationError):
            monitor.percentile(50)

    def test_capped_retention_stays_bounded(self):
        monitor = Monitor(keep_values=True, cap=64)
        for value in range(10_000):
            monitor.observe(float(value))
        assert monitor.count == 10_000
        assert 0 < monitor.retained <= 64
        # The subsample is evenly spaced from the start of the run.
        kept = monitor.values
        assert kept[0] == 0.0
        strides = {b - a for a, b in zip(kept, kept[1:])}
        assert len(strides) == 1
        # Percentiles stay close on the thinned buffer.
        assert monitor.percentile(50) == pytest.approx(5_000, rel=0.05)

    def test_million_observation_run_stays_bounded(self):
        # Satellite regression: a million observations must not accumulate
        # a million floats, with or without retention.
        bare = Monitor()
        capped = Monitor(keep_values=True, cap=1_024)
        for value in range(1_000_000):
            sample = float(value % 97)
            bare.observe(sample)
            capped.observe(sample)
        assert bare.retained == 0
        assert capped.retained <= 1_024
        assert bare.count == capped.count == 1_000_000
        assert bare.mean == pytest.approx(48.0, rel=0.01)

    def test_cap_validation(self):
        with pytest.raises(SimulationError):
            Monitor(keep_values=True, cap=1)

    def test_merge_combines_statistics(self):
        a, b = Monitor(), Monitor()
        for value in (1.0, 2.0):
            a.observe(value)
        for value in (3.0, 4.0, 5.0):
            b.observe(value)
        a.merge(b)
        assert a.count == 5
        assert a.mean == pytest.approx(3.0)
        assert a.minimum == 1.0
        assert a.maximum == 5.0

    def test_merge_into_empty(self):
        a, b = Monitor(), Monitor()
        b.observe(7.0)
        a.merge(b)
        assert a.count == 1
        assert a.mean == 7.0


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=60,
    )
)
def test_welford_matches_numpy(values):
    monitor = Monitor(keep_values=True)
    for value in values:
        monitor.observe(value)
    assert monitor.mean == pytest.approx(float(np.mean(values)), abs=1e-6, rel=1e-9)
    assert monitor.variance == pytest.approx(
        float(np.var(values, ddof=1)), abs=1e-4, rel=1e-6
    )


@settings(max_examples=60, deadline=None)
@given(
    left=st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1, max_size=30),
    right=st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1, max_size=30),
)
def test_merge_equals_observing_everything(left, right):
    merged = Monitor()
    for value in left:
        merged.observe(value)
    other = Monitor()
    for value in right:
        other.observe(value)
    merged.merge(other)

    direct = Monitor()
    for value in left + right:
        direct.observe(value)
    assert merged.count == direct.count
    assert merged.mean == pytest.approx(direct.mean, abs=1e-6, rel=1e-9)
    assert merged.variance == pytest.approx(direct.variance, abs=1e-3, rel=1e-6)


class TestTimeWeightedMonitor:
    def test_time_average_of_constant_signal(self):
        clock = [0.0]
        monitor = TimeWeightedMonitor(lambda: clock[0], initial=3.0)
        clock[0] = 10.0
        assert monitor.time_average() == pytest.approx(3.0)

    def test_time_average_weights_by_duration(self):
        clock = [0.0]
        monitor = TimeWeightedMonitor(lambda: clock[0], initial=0.0)
        clock[0] = 5.0
        monitor.set(10.0)  # 0 for 5 minutes
        clock[0] = 10.0  # 10 for 5 minutes
        assert monitor.time_average() == pytest.approx(5.0)

    def test_add_shifts_level(self):
        clock = [0.0]
        monitor = TimeWeightedMonitor(lambda: clock[0], initial=1.0)
        monitor.add(2.0)
        assert monitor.level == 3.0
        monitor.add(-1.0)
        assert monitor.level == 2.0

    def test_maximum_tracks_peak(self):
        clock = [0.0]
        monitor = TimeWeightedMonitor(lambda: clock[0], initial=0.0)
        monitor.set(7.0)
        monitor.set(2.0)
        assert monitor.maximum == 7.0


class TestTally:
    def test_hit_and_count(self):
        tally = Tally()
        tally.hit("replica")
        tally.hit("replica")
        tally.hit("base", times=3)
        assert tally.count("replica") == 2
        assert tally.count("base") == 3
        assert tally.count("missing") == 0
        assert tally.total == 5
        assert tally.as_dict() == {"replica": 2, "base": 3}
