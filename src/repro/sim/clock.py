"""Simulation clock.

Time in this package is a continuous ``float`` measured in **minutes**, the
natural unit for the paper's near-real-time decision support band (2–30
minutes).  The clock only ever moves forward; attempts to move it backwards
indicate a kernel bug and raise :class:`~repro.errors.SchedulingError`.
"""

from __future__ import annotations

from repro.errors import SchedulingError

__all__ = ["Clock"]


class Clock:
    """A monotonically advancing simulation clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SchedulingError(f"clock cannot start before time 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in minutes."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises
        ------
        SchedulingError
            If ``time`` lies in the past.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now:.4f})"
