"""Live telemetry: streaming aggregators over the in-flight event stream.

Everything in :mod:`repro.obs.metrics` is *post-hoc*: ``registry_from_system``
reads a drained system.  This module watches the same run **while it is
running** — the online scheduler admits and sheds, the executor completes
queries, faults open and close — by subscribing to the
:class:`~repro.sim.trace.Tracer` and folding every record into bounded-memory
streaming state:

* :class:`EwmaRate` / :class:`EwmaMean` — exponentially-decayed event rates
  and means over *simulation* time (half-life, not bucket, semantics);
* :class:`WindowCounter` — an exact sliding-window event count (deque of
  timestamps, pruned as time advances);
* :class:`P2Quantile` — the Jain/Chlamtac P² streaming quantile sketch:
  five markers, O(1) memory, no stored samples — unlike
  :class:`~repro.obs.metrics.Histogram`'s fixed buckets it adapts to the
  observed scale;
* :class:`LiveRegistry` — the fold itself: counters, gauges, rates, fixed
  histograms (bit-compatible with the post-hoc registry) and sketches,
  snapshotable at any simulation instant via :meth:`LiveRegistry.snapshot`.

Equivalence contract (property-tested): feeding a checker-clean trace
incrementally yields final counters and histogram buckets **equal** to the
drained-system :func:`~repro.obs.metrics.registry_from_system` snapshot,
and sketch quantiles within the sketch's error bounds — both registries
consume the exact same ledger floats in the exact same order.
"""

from __future__ import annotations

import heapq
import math
import typing
from collections import deque

from repro.errors import SimulationError
from repro.obs import events
from repro.obs.ledger import IVLedgerEntry
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.sim.trace import TraceRecord

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import Tracer

__all__ = [
    "EwmaRate",
    "EwmaMean",
    "WindowCounter",
    "P2Quantile",
    "TableSyncState",
    "LiveRegistry",
]

#: IV histogram bounds, matching ``registry_from_system``'s ``query.iv.hist``.
IV_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


class EwmaRate:
    """Exponentially-decayed event rate (events per minute of sim time).

    Each arrival deposits ``weight × ln2 / half_life`` onto a value that
    decays by half every ``half_life`` minutes.  With decay constant
    ``λ = ln2/half_life`` and deposits of size ``λ``, a steady stream of
    rate *r* events/minute converges to exactly *r* — the deposit rate
    ``r·λ`` balances the decay ``λ·value`` at ``value = r``.
    """

    __slots__ = ("half_life", "_value", "_last")

    def __init__(self, half_life: float) -> None:
        if half_life <= 0:
            raise SimulationError(f"half_life must be > 0, got {half_life}")
        self.half_life = half_life
        self._value = 0.0
        self._last = None

    def _decay_to(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self._value *= 2.0 ** (-(now - self._last) / self.half_life)
        if self._last is None or now > self._last:
            self._last = now

    def observe(self, now: float, weight: float = 1.0) -> None:
        """Record ``weight`` events at sim time ``now``."""
        self._decay_to(now)
        self._value += weight * math.log(2.0) / self.half_life

    def rate(self, now: float | None = None) -> float:
        """The decayed rate (events/minute), optionally advanced to ``now``."""
        if now is not None:
            self._decay_to(now)
        return self._value

    def state_dict(self) -> dict:
        """JSON-ready internal state (inverse: :meth:`from_state`)."""
        return {"half_life": self.half_life, "value": self._value, "last": self._last}

    @classmethod
    def from_state(cls, state: dict) -> "EwmaRate":
        """Rebuild a rate from :meth:`state_dict` output."""
        rate = cls(state["half_life"])
        rate._value = float(state["value"])
        rate._last = None if state["last"] is None else float(state["last"])
        return rate

    @classmethod
    def merge(cls, rates: "typing.Sequence[EwmaRate]") -> "EwmaRate":
        """Combine rates from disjoint event streams.

        The EWMA fold is linear in its observations, so decaying every
        input to the latest common instant and summing the decayed values
        is *mathematically exact*: the merged rate equals what one EWMA fed
        the union stream would hold (float rounding aside).
        """
        if not rates:
            raise SimulationError("EwmaRate.merge needs at least one input")
        half_life = rates[0].half_life
        if any(rate.half_life != half_life for rate in rates):
            raise SimulationError("cannot merge EwmaRates with differing half-lives")
        merged = cls(half_life)
        lasts = [rate._last for rate in rates if rate._last is not None]
        if not lasts:
            return merged
        last = max(lasts)
        value = 0.0
        for rate in rates:
            if rate._last is None:
                continue
            value += rate._value * 2.0 ** (-(last - rate._last) / half_life)
        merged._value = value
        merged._last = last
        return merged


class EwmaMean:
    """Exponentially-decayed weighted mean of observed values.

    The weight of an observation halves every ``half_life`` minutes of sim
    time; :meth:`mean` is the decayed value sum over the decayed weight sum
    (0.0 before any observation).
    """

    __slots__ = ("half_life", "_weighted", "_weight", "_last")

    def __init__(self, half_life: float) -> None:
        if half_life <= 0:
            raise SimulationError(f"half_life must be > 0, got {half_life}")
        self.half_life = half_life
        self._weighted = 0.0
        self._weight = 0.0
        self._last = None

    def observe(self, now: float, value: float) -> None:
        """Fold one value observed at sim time ``now``."""
        if self._last is not None and now > self._last:
            factor = 2.0 ** (-(now - self._last) / self.half_life)
            self._weighted *= factor
            self._weight *= factor
        if self._last is None or now > self._last:
            self._last = now
        self._weighted += value
        self._weight += 1.0

    def mean(self) -> float:
        """The decayed mean (0.0 when nothing was observed)."""
        return self._weighted / self._weight if self._weight else 0.0

    def state_dict(self) -> dict:
        """JSON-ready internal state (inverse: :meth:`from_state`)."""
        return {
            "half_life": self.half_life,
            "weighted": self._weighted,
            "weight": self._weight,
            "last": self._last,
        }

    @classmethod
    def from_state(cls, state: dict) -> "EwmaMean":
        """Rebuild a mean from :meth:`state_dict` output."""
        mean = cls(state["half_life"])
        mean._weighted = float(state["weighted"])
        mean._weight = float(state["weight"])
        mean._last = None if state["last"] is None else float(state["last"])
        return mean

    @classmethod
    def merge(cls, means: "typing.Sequence[EwmaMean]") -> "EwmaMean":
        """Combine means from disjoint streams (exact — same argument as
        :meth:`EwmaRate.merge`: both the weighted sum and the weight sum are
        linear folds, so decay-to-common-instant-then-sum is the union fold)."""
        if not means:
            raise SimulationError("EwmaMean.merge needs at least one input")
        half_life = means[0].half_life
        if any(mean.half_life != half_life for mean in means):
            raise SimulationError("cannot merge EwmaMeans with differing half-lives")
        merged = cls(half_life)
        lasts = [mean._last for mean in means if mean._last is not None]
        if not lasts:
            return merged
        last = max(lasts)
        for mean in means:
            if mean._last is None:
                continue
            factor = 2.0 ** (-(last - mean._last) / half_life)
            merged._weighted += mean._weighted * factor
            merged._weight += mean._weight * factor
        merged._last = last
        return merged


class WindowCounter:
    """Exact count of events inside a sliding sim-time window.

    Memory is bounded by the number of events inside the window, not the
    stream length; :meth:`count` prunes as time advances.
    """

    __slots__ = ("window", "_times")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise SimulationError(f"window must be > 0, got {window}")
        self.window = window
        self._times: deque[float] = deque()

    def observe(self, now: float) -> None:
        """Record one event at sim time ``now``."""
        self._times.append(now)
        self._prune(now)

    def _prune(self, now: float) -> None:
        floor = now - self.window
        while self._times and self._times[0] <= floor:
            self._times.popleft()

    def count(self, now: float) -> int:
        """Events with timestamps in ``(now - window, now]``."""
        self._prune(now)
        return len(self._times)

    def rate(self, now: float) -> float:
        """Events per minute over the window."""
        return self.count(now) / self.window

    def state_dict(self) -> dict:
        """JSON-ready internal state (inverse: :meth:`from_state`)."""
        return {"window": self.window, "times": list(self._times)}

    @classmethod
    def from_state(cls, state: dict) -> "WindowCounter":
        """Rebuild a window counter from :meth:`state_dict` output."""
        counter = cls(state["window"])
        counter._times = deque(float(time) for time in state["times"])
        return counter

    @classmethod
    def merge(cls, counters: "typing.Sequence[WindowCounter]") -> "WindowCounter":
        """Exact union: the retained timestamps of disjoint streams are
        merged in sorted order (ties keep input order, matching a union
        stream's fold)."""
        if not counters:
            raise SimulationError("WindowCounter.merge needs at least one input")
        window = counters[0].window
        if any(counter.window != window for counter in counters):
            raise SimulationError("cannot merge WindowCounters with differing windows")
        merged = cls(window)
        merged._times = deque(
            heapq.merge(*(counter._times for counter in counters))
        )
        if merged._times:
            merged._prune(merged._times[-1])
        return merged


class P2Quantile:
    """The P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Five markers track the min, the q/2, q, (1+q)/2 quantiles and the max;
    marker heights move by parabolic (falling back to linear) interpolation
    as observations stream in.  Memory is O(1) and no sample is retained.

    Error bounds: with fewer than five observations the estimate is the
    **exact** sample quantile (nearest-rank over the sorted buffer); from
    five on, the estimate is always within ``[min, max]`` of the observed
    samples and is exact for constant streams.  Accuracy on smooth
    distributions is typically within a few percent of the true quantile —
    the property suite asserts the hard guarantees, the unit tests the
    typical accuracy.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise SimulationError(f"P2 quantile q must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    @property
    def count(self) -> int:
        """Observations folded so far."""
        return self._count

    def observe(self, value: float) -> None:
        """Fold one sample."""
        value = float(value)
        self._count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights, positions = self._heights, self._positions

        # 1. Find the cell and update extreme markers.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]

        # 2. Nudge interior markers toward their desired positions.
        for index in range(1, 4):
            delta = self._desired[index] - positions[index]
            at, below, above = (
                positions[index], positions[index - 1], positions[index + 1]
            )
            if (delta >= 1.0 and above - at > 1.0) or (
                delta <= -1.0 and below - at < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[index] + step / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + step)
            * (h[index + 1] - h[index])
            / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - step)
            * (h[index] - h[index - 1])
            / (n[index] - n[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        h, n = self._heights, self._positions
        other = index + int(step)
        return h[index] + step * (h[other] - h[index]) / (n[other] - n[index])

    def value(self) -> float:
        """The current estimate (exact below five samples; 0.0 when empty)."""
        if not self._heights:
            return 0.0
        if len(self._heights) < 5 or self._count < 5:
            # Exact nearest-rank quantile over the (sorted) startup buffer.
            rank = max(0, math.ceil(self.q * len(self._heights)) - 1)
            return self._heights[rank]
        return self._heights[2]

    def state_dict(self) -> dict:
        """JSON-ready internal state (inverse: :meth:`from_state`)."""
        return {
            "q": self.q,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "count": self._count,
        }

    @classmethod
    def from_state(cls, state: dict) -> "P2Quantile":
        """Rebuild a sketch from :meth:`state_dict` output."""
        sketch = cls(state["q"])
        sketch._heights = [float(height) for height in state["heights"]]
        sketch._positions = [float(position) for position in state["positions"]]
        sketch._desired = [float(desired) for desired in state["desired"]]
        sketch._count = int(state["count"])
        return sketch

    def _marker_points(self) -> list[tuple[float, float]]:
        """Weighted sample summary: ``(height, weight)`` pairs summing to count.

        Below five samples the startup buffer *is* the sample set (weight 1
        each).  From five on, marker ``i`` sits at cumulative rank ``n_i``
        and stands in for the samples nearest it — half of each adjacent
        gap, so its mass is *centered* on its rank rather than skewed to
        one side (weights sum to the sample count).
        """
        if self._count < 5:
            return [(height, 1.0) for height in self._heights]
        heights, positions = self._heights, self._positions
        points = []
        for index in range(5):
            below = positions[index - 1] if index > 0 else positions[0] - 1.0
            above = positions[index + 1] if index < 4 else positions[4] + 1.0
            points.append((heights[index], (above - below) / 2.0))
        return points

    @classmethod
    def merge(cls, sketches: "typing.Sequence[P2Quantile]") -> "P2Quantile":
        """Combine P² sketches from disjoint streams.

        The merge pools every input's weighted marker summary
        (:meth:`_marker_points`) and rebuilds the five markers at their
        desired ranks by weighted nearest-rank selection.

        Approximation bound (asserted by the property suite): the merged
        estimate is always one of the pooled marker heights, hence within
        ``[min, max]`` of the union of all observed samples (markers 0 and 4
        track exact extremes).  When every input is still in its exact
        startup regime (< 5 samples each) *and* the pooled count is < 5, the
        merge is exact; beyond that it inherits P²'s own locality — the
        estimate lies between the two pooled markers bracketing the target
        rank, so its error is bounded by the inputs' marker spacing.
        """
        if not sketches:
            raise SimulationError("P2Quantile.merge needs at least one input")
        q = sketches[0].q
        if any(sketch.q != q for sketch in sketches):
            raise SimulationError("cannot merge P2Quantiles with differing q")
        merged = cls(q)
        active = [sketch for sketch in sketches if sketch._count > 0]
        if not active:
            return merged
        total = sum(sketch._count for sketch in active)
        if all(sketch._count < 5 for sketch in active):
            # Startup buffers retain every sample: replay them (sorted order
            # is a valid stream order), exact whenever the pool stays < 5.
            for height in sorted(
                height for sketch in active for height in sketch._heights
            ):
                merged.observe(height)
            return merged
        points = sorted(
            point for sketch in active for point in sketch._marker_points()
        )

        def at_rank(target: float) -> float:
            running = 0.0
            for height, weight in points:
                running += weight
                if running >= target:
                    return height
            return points[-1][0]

        desired = [1.0 + increment * (total - 1) for increment in merged._increments]
        heights = [
            points[0][0],
            at_rank(desired[1]),
            at_rank(desired[2]),
            at_rank(desired[3]),
            points[-1][0],
        ]
        positions = [1.0]
        for index in range(1, 5):
            floor = positions[index - 1] + 1.0
            ceiling = total - (4.0 - index)
            positions.append(min(max(round(desired[index]), floor), ceiling))
        merged._heights = sorted(heights)
        merged._positions = positions
        merged._desired = desired
        merged._count = total
        return merged


class TableSyncState:
    """Per-table replication telemetry folded from the sync event stream.

    Tracks the *realized* freshness frontier (last applied sync), the
    *published* frontier (what the schedule promised, advanced by applied,
    skipped and delayed syncs alike), and an update-rate EWMA of sync
    applications — exactly the per-table signals a demand-driven sync
    controller needs (staleness = now − realized, divergence = published −
    realized).
    """

    __slots__ = ("last_apply", "published", "last_gap", "syncs", "update_rate")

    def __init__(self, half_life: float) -> None:
        self.last_apply: float | None = None
        self.published = 0.0
        self.last_gap = 0.0
        self.syncs = 0
        self.update_rate = EwmaRate(half_life)

    def apply(self, now: float, at: float, gap: float) -> None:
        """Fold one applied sync."""
        self.last_apply = at if self.last_apply is None else max(self.last_apply, at)
        self.published = max(self.published, at)
        self.last_gap = gap
        self.syncs += 1
        self.update_rate.observe(now)

    def publish(self, scheduled: float) -> None:
        """Fold a skipped/delayed sync: the schedule promised ``scheduled``."""
        self.published = max(self.published, scheduled)

    def staleness(self, now: float) -> float:
        """Minutes since the table's content was last refreshed."""
        return max(0.0, now - (self.last_apply or 0.0))

    def divergence(self) -> float:
        """Published-minus-realized freshness gap (0.0 when in step)."""
        return max(0.0, self.published - (self.last_apply or 0.0))

    def gauges(self, now: float) -> dict[str, float]:
        """The per-table gauge block exposed in snapshots."""
        return {
            "sync.table.staleness": self.staleness(now),
            "sync.table.divergence": self.divergence(),
            "sync.table.update_rate": self.update_rate.rate(now),
            "sync.table.last_gap": self.last_gap,
            "sync.table.syncs": float(self.syncs),
        }

    def state_dict(self) -> dict:
        """JSON-ready internal state (inverse: :meth:`from_state`)."""
        return {
            "last_apply": self.last_apply,
            "published": self.published,
            "last_gap": self.last_gap,
            "syncs": self.syncs,
            "update_rate": self.update_rate.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TableSyncState":
        """Rebuild per-table state from :meth:`state_dict` output."""
        table = cls(state["update_rate"]["half_life"])
        table.last_apply = (
            None if state["last_apply"] is None else float(state["last_apply"])
        )
        table.published = float(state["published"])
        table.last_gap = float(state["last_gap"])
        table.syncs = int(state["syncs"])
        table.update_rate = EwmaRate.from_state(state["update_rate"])
        return table

    @classmethod
    def merge(cls, states: "typing.Sequence[TableSyncState]") -> "TableSyncState":
        """Fleet view of one table seen from several shards: frontiers take
        the max (the freshest shard wins), sync counts sum, and update-rate
        EWMAs sum exactly (:meth:`EwmaRate.merge`)."""
        merged = cls(states[0].update_rate.half_life)
        applies = [state.last_apply for state in states if state.last_apply is not None]
        merged.last_apply = max(applies) if applies else None
        merged.published = max(state.published for state in states)
        newest = max(states, key=lambda state: state.last_apply or -math.inf)
        merged.last_gap = newest.last_gap
        merged.syncs = sum(state.syncs for state in states)
        merged.update_rate = EwmaRate.merge([state.update_rate for state in states])
        return merged


class LiveRegistry:
    """Streaming fold of a trace into live counters, rates and sketches.

    Attach to a tracer (:meth:`attach`) or feed records explicitly
    (:meth:`observe`); read a JSON-ready view at any instant with
    :meth:`snapshot`.  All state is bounded: fixed histograms, O(1)
    sketches and EWMAs, sliding windows pruned as time advances, plus one
    small in-flight map (submitted-but-unfinished queries).

    Parameters
    ----------
    window:
        Sliding-window span (sim minutes) for the arrival/completion/shed
        windows the SLO rules read.
    half_life:
        Decay half-life (sim minutes) of the EWMA rates and means.
    qos_max_staleness:
        Replica-staleness threshold; sync gaps beyond it count as QoS
        violations (mirrors ``ReplicationManager``'s accounting).
    """

    def __init__(
        self,
        window: float = 10.0,
        half_life: float = 10.0,
        qos_max_staleness: float | None = None,
    ) -> None:
        self.window = window
        self.half_life = half_life
        self.qos_max_staleness = qos_max_staleness
        self.now = 0.0
        self.counters: dict[str, float] = {}

        self.iv_hist = Histogram("query.iv.hist", bounds=IV_BUCKETS)
        self.cl_hist = Histogram("query.cl.hist", bounds=DEFAULT_BUCKETS)
        self.sl_hist = Histogram("query.sl.hist", bounds=DEFAULT_BUCKETS)
        self.cl_p50 = P2Quantile(0.5)
        self.cl_p95 = P2Quantile(0.95)
        self.sl_p95 = P2Quantile(0.95)
        self.iv_p50 = P2Quantile(0.5)
        self.staleness_p95 = P2Quantile(0.95)

        self.arrival_rate = EwmaRate(half_life)
        self.completion_rate = EwmaRate(half_life)
        self.iv_ewma = EwmaMean(half_life)
        self.arrivals_window = WindowCounter(window)
        self.completions_window = WindowCounter(window)
        self.shed_window = WindowCounter(window)
        self.failed_window = WindowCounter(window)

        #: Realized-vs-planned IV: sums over completed queries whose plan
        #: event (``est_iv``) was seen.
        self._estimated_iv = 0.0
        self._realized_iv = 0.0
        self._pending_estimates: dict[int, float] = {}
        #: In-flight queries: submitted but not yet completed/failed.
        self._in_flight: set[int] = set()
        #: Down sites and when their current outage opened.
        self._down_since: dict[str, float] = {}
        self._staleness_sum = 0.0
        self._staleness_count = 0
        #: Per-table replication telemetry, keyed by table name.
        self._tables: dict[str, TableSyncState] = {}

    # -- wiring -------------------------------------------------------------

    def attach(self, tracer: "Tracer") -> "LiveRegistry":
        """Subscribe to every future record of ``tracer``; returns self."""
        tracer.subscribe(self.observe)
        return self

    def _inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def _table(self, name: str) -> TableSyncState:
        if name not in self._tables:
            self._tables[name] = TableSyncState(self.half_life)
        return self._tables[name]

    # -- the fold -----------------------------------------------------------

    def observe(self, record: TraceRecord) -> None:
        """Fold one trace record into the live state."""
        self.now = max(self.now, record.time)
        kind = record.kind
        detail = record.detail
        if kind == events.SUBMIT:
            self._inc("query.submitted")
            self.arrival_rate.observe(record.time)
            self.arrivals_window.observe(record.time)
            qid = detail.get("qid")
            if qid is not None:
                self._in_flight.add(qid)
        elif kind == events.PLAN:
            estimate = detail.get("est_iv")
            qid = detail.get("qid")
            if estimate is not None and qid is not None:
                self._pending_estimates[qid] = estimate
        elif kind in (events.COMPLETE, events.FAILED):
            self._inc("query.completed")
            if kind == events.FAILED:
                self._inc("query.failed")
                self.failed_window.observe(record.time)
            self.completion_rate.observe(record.time)
            self.completions_window.observe(record.time)
            qid = detail.get("qid")
            if qid is not None:
                self._in_flight.discard(qid)
                estimate = self._pending_estimates.pop(qid, None)
                if estimate is not None:
                    self._estimated_iv += estimate
                    self._realized_iv += detail.get("iv", 0.0)
            if kind == events.COMPLETE:
                self.iv_ewma.observe(record.time, detail.get("iv", 0.0))
        elif kind == events.LEDGER:
            # The ledger is the audit record: histograms and sketches read
            # its exact floats, so final buckets match the post-hoc
            # registry bit-for-bit (same values, same order).
            try:
                entry = IVLedgerEntry.from_dict(detail)
            except (KeyError, TypeError):
                self._inc("ledger.malformed")
                return
            self._inc("ledger.entries")
            self._inc("query.retries", entry.retries)
            self._inc("query.failovers", entry.failovers)
            if entry.degraded:
                self._inc("query.degraded")
            self.iv_hist.observe(entry.reported_iv)
            self.cl_hist.observe(entry.computational_latency)
            self.sl_hist.observe(entry.synchronization_latency)
            self.iv_p50.observe(entry.reported_iv)
            self.cl_p50.observe(entry.computational_latency)
            self.cl_p95.observe(entry.computational_latency)
            self.sl_p95.observe(entry.synchronization_latency)
        elif kind == events.SYNC_APPLY:
            self._inc("sync.total")
            gap = detail.get("gap", 0.0)
            self._staleness_sum += gap
            self._staleness_count += 1
            self.staleness_p95.observe(gap)
            self._table(record.subject).apply(
                record.time, detail.get("at", record.time), gap
            )
            if (
                self.qos_max_staleness is not None
                and gap > self.qos_max_staleness
            ):
                self._inc("sync.qos_violations")
        elif kind == events.SYNC_SKIP:
            self._inc("sync.skipped")
            self._table(record.subject).publish(
                detail.get("scheduled", record.time)
            )
        elif kind == events.SYNC_DELAY:
            self._inc("sync.delayed")
            self._table(record.subject).publish(
                detail.get("scheduled", record.time)
            )
        elif kind == events.FAULT_DOWN:
            self._inc("faults.outages")
            self._down_since[record.subject] = record.time
        elif kind == events.FAULT_UP:
            self._down_since.pop(record.subject, None)
        elif kind == events.MQO_ADMIT:
            self._inc("mqo.admitted")
            if detail.get("requeued"):
                self._inc("mqo.requeued")
        elif kind == events.MQO_SHED:
            self._inc("mqo.shed")
            self.shed_window.observe(record.time)
        elif kind == events.MQO_WINDOW:
            self._inc("mqo.windows")
        elif kind in (events.ALERT_OPEN, events.ALERT_CLOSE):
            self._inc(f"slo.{kind.split('.', 1)[1]}")

    # -- reading ------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Queries submitted but not yet completed/failed."""
        return len(self._in_flight)

    @property
    def sites_down(self) -> int:
        """Sites currently inside an outage window."""
        return len(self._down_since)

    def outage_dwell(self, now: float | None = None) -> float:
        """Longest current outage's dwell time (0.0 when all sites are up)."""
        now = self.now if now is None else now
        if not self._down_since:
            return 0.0
        return max(now - since for since in self._down_since.values())

    def iv_realization_ratio(self) -> float:
        """Realized / planned IV over completed queries (1.0 before data).

        Below 1.0 the system is delivering less value than it planned —
        the stream is decaying reports faster than the router priced in.
        """
        if self._estimated_iv <= 0.0:
            return 1.0
        return self._realized_iv / self._estimated_iv

    def shed_ratio(self, now: float | None = None) -> float:
        """Shed / arrivals inside the sliding window (0.0 when quiet)."""
        now = self.now if now is None else now
        arrivals = self.arrivals_window.count(now)
        shed = self.shed_window.count(now)
        seen = arrivals + shed  # shed queries never get a submit event
        return shed / seen if seen else 0.0

    def staleness_mean(self) -> float:
        """Mean sync gap observed so far (0.0 before any sync)."""
        if not self._staleness_count:
            return 0.0
        return self._staleness_sum / self._staleness_count

    def snapshot(self, now: float | None = None) -> dict:
        """One JSON-ready view of the live state at sim time ``now``."""
        now = self.now if now is None else now
        return {
            "time": now,
            "counters": dict(sorted(self.counters.items())),
            "gauges": {
                "query.in_flight": self.in_flight,
                "faults.sites_down": self.sites_down,
                "faults.outage_dwell": self.outage_dwell(now),
                "query.iv.realization": self.iv_realization_ratio(),
                "mqo.shed.ratio": self.shed_ratio(now),
                "sync.staleness.mean": self.staleness_mean(),
            },
            "rates": {
                "query.arrivals.ewma": self.arrival_rate.rate(now),
                "query.completions.ewma": self.completion_rate.rate(now),
                "query.arrivals.window": self.arrivals_window.rate(now),
                "query.completions.window": self.completions_window.rate(now),
                "query.failed.window": self.failed_window.rate(now),
                "query.iv.ewma": self.iv_ewma.mean(),
            },
            "quantiles": {
                "query.cl.p50": self.cl_p50.value(),
                "query.cl.p95": self.cl_p95.value(),
                "query.sl.p95": self.sl_p95.value(),
                "query.iv.p50": self.iv_p50.value(),
                "sync.staleness.p95": self.staleness_p95.value(),
            },
            "histograms": {
                "query.iv.hist": self.iv_hist.snapshot(),
                "query.cl.hist": self.cl_hist.snapshot(),
                "query.sl.hist": self.sl_hist.snapshot(),
            },
            "tables": {
                name: table.gauges(now)
                for name, table in sorted(self._tables.items())
            },
        }

    def final_counters(self) -> dict[str, float]:
        """The counters a drained-system registry should agree with.

        Keys mirror :func:`~repro.obs.metrics.registry_from_system`; the
        property suite asserts equality after feeding a full clean trace.
        """
        return {
            "query.completed": self.counters.get("query.completed", 0.0),
            "query.failed": self.counters.get("query.failed", 0.0),
            "query.degraded": self.counters.get("query.degraded", 0.0),
            "query.retries": self.counters.get("query.retries", 0.0),
            "query.failovers": self.counters.get("query.failovers", 0.0),
            "sync.total": self.counters.get("sync.total", 0.0),
            "sync.skipped": self.counters.get("sync.skipped", 0.0),
            "sync.delayed": self.counters.get("sync.delayed", 0.0),
        }

    # -- cross-process shipping and fleet merge -----------------------------

    _SKETCHES = ("cl_p50", "cl_p95", "sl_p95", "iv_p50", "staleness_p95")
    _HISTOGRAMS = ("iv_hist", "cl_hist", "sl_hist")
    _RATES = ("arrival_rate", "completion_rate")
    _WINDOWS = (
        "arrivals_window",
        "completions_window",
        "shed_window",
        "failed_window",
    )

    def state_dict(self) -> dict:
        """The complete internal state as a JSON-safe dict.

        This is what a shard worker ships through its telemetry spool;
        :meth:`from_state` rebuilds an equivalent registry in the parent
        (``from_state(state_dict()).snapshot() == snapshot()``).
        """
        return {
            "window": self.window,
            "half_life": self.half_life,
            "qos_max_staleness": self.qos_max_staleness,
            "now": self.now,
            "counters": dict(self.counters),
            "histograms": {
                name: getattr(self, name).snapshot() for name in self._HISTOGRAMS
            },
            "sketches": {
                name: getattr(self, name).state_dict() for name in self._SKETCHES
            },
            "rates": {
                name: getattr(self, name).state_dict() for name in self._RATES
            },
            "iv_ewma": self.iv_ewma.state_dict(),
            "windows": {
                name: getattr(self, name).state_dict() for name in self._WINDOWS
            },
            "estimated_iv": self._estimated_iv,
            "realized_iv": self._realized_iv,
            # JSON round-trips stringify int keys; from_state restores them.
            "pending_estimates": {
                str(qid): estimate
                for qid, estimate in self._pending_estimates.items()
            },
            "in_flight": sorted(self._in_flight),
            "down_since": dict(self._down_since),
            "staleness_sum": self._staleness_sum,
            "staleness_count": self._staleness_count,
            "tables": {
                name: table.state_dict() for name, table in self._tables.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "LiveRegistry":
        """Inverse of :meth:`state_dict`."""
        registry = cls(
            window=state["window"],
            half_life=state["half_life"],
            qos_max_staleness=state["qos_max_staleness"],
        )
        registry.now = float(state["now"])
        registry.counters = {
            name: float(value) for name, value in state["counters"].items()
        }
        for name in cls._HISTOGRAMS:
            snap = state["histograms"][name]
            setattr(
                registry, name, Histogram.from_snapshot(getattr(registry, name).name, snap)
            )
        for name in cls._SKETCHES:
            setattr(registry, name, P2Quantile.from_state(state["sketches"][name]))
        for name in cls._RATES:
            setattr(registry, name, EwmaRate.from_state(state["rates"][name]))
        registry.iv_ewma = EwmaMean.from_state(state["iv_ewma"])
        for name in cls._WINDOWS:
            setattr(registry, name, WindowCounter.from_state(state["windows"][name]))
        registry._estimated_iv = float(state["estimated_iv"])
        registry._realized_iv = float(state["realized_iv"])
        registry._pending_estimates = {
            int(qid): float(estimate)
            for qid, estimate in state["pending_estimates"].items()
        }
        registry._in_flight = {int(qid) for qid in state["in_flight"]}
        registry._down_since = {
            site: float(since) for site, since in state["down_since"].items()
        }
        registry._staleness_sum = float(state["staleness_sum"])
        registry._staleness_count = int(state["staleness_count"])
        registry._tables = {
            name: TableSyncState.from_state(table)
            for name, table in state["tables"].items()
        }
        return registry

    @classmethod
    def merge(cls, registries: "typing.Sequence[LiveRegistry]") -> "LiveRegistry":
        """Fold per-shard registries into one fleet registry.

        Merge semantics per aggregator family (the fleet property suite
        asserts these against a single-process fold of the union stream):

        * **counters** — summed (exact);
        * **histograms** — bucket-wise addition (exact, same bounds);
        * **EWMA rates/means** — decayed to the latest common instant and
          summed; exact because the folds are linear in observations;
        * **sliding windows** — timestamp deques merged sorted (exact);
        * **P² sketches** — combined via :meth:`P2Quantile.merge`; the
          estimate stays within the pooled ``[min, max]`` and between the
          pooled markers bracketing the target rank (documented there);
        * **gauge inputs** (in-flight sets, plan estimates, outage opens) —
          unioned; shards own disjoint queries so the unions are disjoint,
          and a site down on several shards keeps its earliest open time;
        * **per-table sync state** — freshest frontier wins, rates sum
          (:meth:`TableSyncState.merge`).

        Per-shard *gauges* are intentionally not blended into one number —
        the fleet snapshot keeps them per shard (see
        :class:`repro.obs.fleet.FleetCollector`).
        """
        if not registries:
            raise SimulationError("LiveRegistry.merge needs at least one input")
        first = registries[0]
        for registry in registries[1:]:
            if (
                registry.window != first.window
                or registry.half_life != first.half_life
                or registry.qos_max_staleness != first.qos_max_staleness
            ):
                raise SimulationError(
                    "cannot merge LiveRegistries with differing configuration"
                )
        merged = cls(
            window=first.window,
            half_life=first.half_life,
            qos_max_staleness=first.qos_max_staleness,
        )
        merged.now = max(registry.now for registry in registries)
        for registry in registries:
            for name, value in registry.counters.items():
                merged._inc(name, value)
            merged._estimated_iv += registry._estimated_iv
            merged._realized_iv += registry._realized_iv
            merged._pending_estimates.update(registry._pending_estimates)
            merged._in_flight |= registry._in_flight
            for site, since in registry._down_since.items():
                held = merged._down_since.get(site)
                merged._down_since[site] = since if held is None else min(held, since)
            merged._staleness_sum += registry._staleness_sum
            merged._staleness_count += registry._staleness_count
        for name in cls._HISTOGRAMS:
            target = getattr(merged, name)
            for registry in registries:
                target.merge_from(getattr(registry, name))
        for name in cls._SKETCHES:
            setattr(
                merged,
                name,
                P2Quantile.merge([getattr(registry, name) for registry in registries]),
            )
        for name in cls._RATES:
            setattr(
                merged,
                name,
                EwmaRate.merge([getattr(registry, name) for registry in registries]),
            )
        merged.iv_ewma = EwmaMean.merge(
            [registry.iv_ewma for registry in registries]
        )
        for name in cls._WINDOWS:
            setattr(
                merged,
                name,
                WindowCounter.merge(
                    [getattr(registry, name) for registry in registries]
                ),
            )
        tables: dict[str, list[TableSyncState]] = {}
        for registry in registries:
            for name, table in registry._tables.items():
                tables.setdefault(name, []).append(table)
        merged._tables = {
            name: TableSyncState.merge(states) for name, states in tables.items()
        }
        return merged
