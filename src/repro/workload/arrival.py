"""Query arrival processes.

The paper drives query arrivals with JavaSim's ``ExponentialStream`` — a
Poisson arrival process.  :class:`ArrivalProcess` wraps any
:class:`~repro.sim.streams.RandomStream` of inter-arrival times and yields
absolute arrival instants.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import WorkloadError
from repro.sim.rng import RandomSource
from repro.sim.streams import ExponentialStream, RandomStream

__all__ = ["ArrivalProcess", "poisson_arrivals"]


class ArrivalProcess:
    """Generates absolute arrival times from an inter-arrival stream."""

    def __init__(self, stream: RandomStream, start: float = 0.0) -> None:
        if start < 0:
            raise WorkloadError(f"start must be >= 0, got {start}")
        self.stream = stream
        self._clock = float(start)

    @property
    def clock(self) -> float:
        """Time of the last generated arrival (or the start time)."""
        return self._clock

    def next_arrival(self) -> float:
        """Advance to and return the next arrival instant."""
        self._clock += self.stream.sample()
        return self._clock

    def take(self, count: int) -> list[float]:
        """The next ``count`` arrival instants."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        return [self.next_arrival() for _ in range(count)]

    def __iter__(self) -> Iterator[float]:
        while True:
            yield self.next_arrival()


def poisson_arrivals(
    mean_interarrival: float,
    count: int,
    seed: int = 0,
    start: float = 0.0,
) -> list[float]:
    """``count`` Poisson arrivals with the given mean inter-arrival time."""
    source = RandomSource(seed, "arrivals")
    stream = ExponentialStream(mean_interarrival, source)
    return ArrivalProcess(stream, start=start).take(count)
