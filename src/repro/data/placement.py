"""Table-to-site placement policies.

Section 4.3 distributes tables over remote sites either **uniformly** or
**skewed** — "1/2 of the tables will be in site 0, 1/4 in site 1 and 1/8 in
site 2 ...".  These helpers compute such placements deterministically so the
federation system builder and the experiments share one definition.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError
from repro.sim.rng import RandomSource

__all__ = ["uniform_placement", "skewed_placement", "round_robin_placement"]


def _check(tables: Sequence[str], num_sites: int) -> None:
    if num_sites < 1:
        raise ConfigError(f"need at least one site, got {num_sites}")
    if not tables:
        raise ConfigError("placement needs at least one table")


def round_robin_placement(tables: Sequence[str], num_sites: int) -> dict[str, int]:
    """Deal tables across sites in order: table ``i`` → site ``i % num_sites``."""
    _check(tables, num_sites)
    return {table: index % num_sites for index, table in enumerate(tables)}


def uniform_placement(
    tables: Sequence[str],
    num_sites: int,
    rng: RandomSource | None = None,
) -> dict[str, int]:
    """Each table independently picks a site uniformly at random.

    With no ``rng`` this degrades to round-robin (still uniform in load).
    """
    _check(tables, num_sites)
    if rng is None:
        return round_robin_placement(tables, num_sites)
    return {table: rng.randint(0, num_sites - 1) for table in tables}


def skewed_placement(
    tables: Sequence[str],
    num_sites: int,
    rng: RandomSource | None = None,
) -> dict[str, int]:
    """Geometric placement: half the tables on site 0, a quarter on site 1, ...

    The remainder after the geometric cascade lands on the last site, matching
    the paper's "1/2 ... in site 0, 1/4 in site 1 and 1/8 in site 2 ..." rule.
    """
    _check(tables, num_sites)
    ordered = list(tables)
    if rng is not None:
        rng.shuffle(ordered)
    placement: dict[str, int] = {}
    start = 0
    remaining = len(ordered)
    for site in range(num_sites):
        if site == num_sites - 1:
            quota = remaining
        else:
            quota = max(1, remaining // 2) if remaining else 0
        for table in ordered[start:start + quota]:
            placement[table] = site
        start += quota
        remaining -= quota
        if remaining <= 0:
            break
    return placement
