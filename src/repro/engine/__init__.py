"""Mini relational engine.

A small but real query processor — schemas, in-memory tables, expression
trees, hash joins, aggregation, a statistics-driven greedy planner — used to
(1) execute the example reports and (2) calibrate the federation cost model
from actual row counts, as the paper's Section 3.1 "compile the query ...
in advance" step assumes.
"""

from repro.engine.expr import And, Arith, Col, Compare, Const, Expr, Not, Or
from repro.engine.ops import (
    AggSpec,
    Aggregate,
    AntiJoin,
    Distinct,
    ExecutionStats,
    Filter,
    HashJoin,
    Limit,
    Operator,
    Project,
    Scan,
    SemiJoin,
    Sort,
)
from repro.engine.views import UnionTable
from repro.engine.planner import CostEstimate, Database, PhysicalPlan, Planner
from repro.engine.query import LogicalQuery, QueryBuilder
from repro.engine.schema import Column, DType, TableSchema
from repro.engine.stats import (
    ColumnStats,
    TableStats,
    estimate_selectivity,
    join_selectivity,
)
from repro.engine.table import Table

__all__ = [
    "AggSpec",
    "Aggregate",
    "And",
    "AntiJoin",
    "Arith",
    "Col",
    "Column",
    "ColumnStats",
    "Compare",
    "Const",
    "CostEstimate",
    "Database",
    "Distinct",
    "DType",
    "ExecutionStats",
    "Expr",
    "Filter",
    "HashJoin",
    "Limit",
    "LogicalQuery",
    "Not",
    "Operator",
    "Or",
    "PhysicalPlan",
    "Planner",
    "Project",
    "QueryBuilder",
    "Scan",
    "Schema",
    "SemiJoin",
    "Sort",
    "Table",
    "TableSchema",
    "TableStats",
    "UnionTable",
    "estimate_selectivity",
    "join_selectivity",
]

# "Schema" is a friendlier alias some examples use.
Schema = TableSchema
