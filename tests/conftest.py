"""Shared fixtures: small, session-scoped instances of the expensive data."""

from __future__ import annotations

import pytest

from repro.core.value import DiscountRates
from repro.data.synthetic import generate_synthetic
from repro.data.tpch import generate_tpch
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import StaticCostProvider
from repro.sim.rng import RandomSource
from repro.sim.scheduler import Simulator
from repro.workload.query import DSSQuery


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator starting at t=0."""
    return Simulator()


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic root random source."""
    return RandomSource(12345, "tests")


@pytest.fixture(scope="session")
def tpch_tiny():
    """A tiny TPC-H instance shared across the whole test session."""
    return generate_tpch(scale=0.0005, seed=7)


@pytest.fixture(scope="session")
def synthetic_small():
    """A small synthetic instance (20 tables, materialized rows)."""
    return generate_synthetic(num_tables=20, rows_range=(30, 120), seed=11)


@pytest.fixture(scope="session")
def synthetic_schema_only():
    """A 60-table synthetic instance without materialized rows."""
    return generate_synthetic(
        num_tables=60, rows_range=(200, 2000), seed=11, materialize_rows=False
    )


def build_fig4_catalog() -> Catalog:
    """The paper's Figure 4 world: 4 tables, staggered sync cycles."""
    catalog = Catalog()
    for index, (name, (offset, period)) in enumerate(
        {
            "T1": (4.0, 9.0),
            "T2": (6.0, 8.0),
            "T3": (8.0, 8.0),
            "T4": (2.0, 10.5),
        }.items()
    ):
        catalog.add_table(TableDef(name, site=index, row_count=1_000))
        times = [offset + k * period for k in range(8)]
        catalog.add_replica(name, FixedSyncSchedule(times, tail_period=period))
    return catalog


@pytest.fixture
def fig4_world():
    """(catalog, provider, query, rates) of the Figure 4 example."""
    catalog = build_fig4_catalog()
    query = DSSQuery(query_id=1, name="fig4", tables=("T1", "T2", "T3", "T4"))
    provider = StaticCostProvider(
        catalog, {0: 2.0, 1: 4.0, 2: 6.0, 3: 8.0, 4: 10.0}
    )
    rates = DiscountRates.symmetric(0.1)
    return catalog, provider, query, rates
