"""Write ``BENCH_online.json`` — a point-in-time online-MQO snapshot.

Runs a reduced EXT4 comparison (fifo vs online vs clairvoyant batch on
one sustained Poisson stream over the contended fig9 infrastructure) and
records realized totals plus the online loop's overhead counters —
windows run, GA invocations, warm-started GAs, wall-clock spent
re-optimizing.  Invoked by ``make bench-online``; the JSON gives the
rolling-window scheduler a regression baseline.

Usage::

    PYTHONPATH=src python benchmarks/online_snapshot.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.experiments.fig9 import Fig9Config, build_mqo_scheduler
from repro.experiments.runner import reissue_stream
from repro.mqo.ga import GAConfig
from repro.mqo.online import OnlineConfig, OnlineMQOScheduler
from repro.workload.arrival import poisson_arrivals
from repro.workload.generator import random_queries
from repro.workload.query import Workload

QUERY_COUNT = 8
ROUNDS = 2
INTERARRIVAL = 1.0


def snapshot() -> dict:
    scheduler, setup = build_mqo_scheduler(Fig9Config(ga=GAConfig(generations=30)))
    templates = random_queries(setup.instance, count=QUERY_COUNT, seed=23)
    stream = reissue_stream(templates, rounds=ROUNDS)
    arrivals = poisson_arrivals(INTERARRIVAL, len(stream), seed=7)
    workload = Workload.from_queries(stream, arrivals=arrivals)

    fifo = scheduler.fifo(workload)

    online = OnlineMQOScheduler(
        scheduler.catalog,
        scheduler.cost_provider,
        scheduler.default_rates,
        ga_config=GAConfig(generations=20),
        seed=scheduler.seed,
        config=OnlineConfig(window=4.0, max_pending=16, iv_floor=0.02),
    )
    started = time.perf_counter()
    decision = online.run(workload)
    online_wall = time.perf_counter() - started

    started = time.perf_counter()
    batch = scheduler.schedule(workload)
    batch_wall = time.perf_counter() - started

    stats = decision.stats
    assert decision.total_information_value >= fifo.total_information_value
    return {
        "workload": {
            "queries": len(stream),
            "mean_interarrival": INTERARRIVAL,
            "window": online.config.window,
            "max_pending": online.config.max_pending,
            "iv_floor": online.config.iv_floor,
        },
        "total_iv": {
            "fifo": fifo.total_information_value,
            "online": decision.total_information_value,
            "batch": batch.total_information_value,
        },
        "online_overhead": {
            "wall_seconds": round(online_wall, 4),
            "reopt_seconds": round(stats.reopt_seconds, 4),
            "windows": stats.windows,
            "ga_runs": stats.ga_runs,
            "warm_seeds": stats.warm_seeds,
            "mean_reopt_ms": round(
                stats.reopt_seconds * 1e3 / max(stats.windows, 1), 2
            ),
        },
        "online_admission": {
            "submitted": stats.submitted,
            "admitted": stats.admitted,
            "shed": stats.shed,
            "deferred": stats.deferred,
            "requeued": stats.requeued,
            "dispatched": stats.dispatched,
        },
        "batch_wall_seconds": round(batch_wall, 4),
        "online_vs_fifo_gain_pct": round(
            (decision.total_information_value - fifo.total_information_value)
            / fifo.total_information_value * 100.0, 1,
        ) if fifo.total_information_value > 0 else None,
    }


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_online.json")
    data = snapshot()
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(data, indent=2))


if __name__ == "__main__":
    main()
