"""Business-value assignment policies.

The paper assumes "each report is assigned with a business value; denoting
its importance to business decision-making" but never says how values are
chosen.  These policies cover the realistic cases the examples and
experiments need:

* ``uniform`` — every report worth the same (the paper's normalized runs);
* ``by_footprint`` — wider reports (more tables) matter more, logarithmically;
* ``pareto`` — a heavy-tailed book of business: few critical reports carry
  most of the value (classic 80/20).
"""

from __future__ import annotations

import math

from repro.errors import WorkloadError
from repro.sim.rng import RandomSource
from repro.workload.query import DSSQuery

__all__ = ["POLICIES", "assign_business_values"]

POLICIES = ("uniform", "by_footprint", "pareto")


def assign_business_values(
    queries: list[DSSQuery],
    policy: str = "uniform",
    scale: float = 1.0,
    seed: int = 0,
    pareto_alpha: float = 1.2,
) -> list[DSSQuery]:
    """Return copies of ``queries`` with business values per ``policy``.

    Parameters
    ----------
    queries:
        The reports to value (left untouched; copies are returned).
    policy:
        One of :data:`POLICIES`.
    scale:
        Base value: a one-table uniform report is worth ``scale``.
    seed:
        Randomness for the ``pareto`` policy.
    pareto_alpha:
        Tail exponent of the Pareto draw (smaller = heavier tail).
    """
    if policy not in POLICIES:
        raise WorkloadError(
            f"unknown business-value policy {policy!r}; expected one of "
            f"{POLICIES}"
        )
    if scale <= 0:
        raise WorkloadError(f"scale must be > 0, got {scale}")
    if pareto_alpha <= 0:
        raise WorkloadError(f"pareto_alpha must be > 0, got {pareto_alpha}")

    rng = RandomSource(seed, "business-values")
    valued = []
    for query in queries:
        if policy == "uniform":
            value = scale
        elif policy == "by_footprint":
            value = scale * (1.0 + math.log1p(len(query.tables)))
        else:  # pareto
            u = rng.uniform(1e-9, 1.0)
            value = scale * (1.0 - u) ** (-1.0 / pareto_alpha)
        valued.append(query.with_value(value))
    return valued
