"""Relational schema objects for the mini engine.

The engine exists so the reproduction is not a pure paper exercise: the
federation cost model is *calibrated* from real row counts and join shapes
executed by this engine on generated TPC-H-style data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EngineError

__all__ = ["Column", "TableSchema", "DType"]


class DType:
    """Supported column data types (string tags keep the engine tiny)."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"  # stored as an integer day number

    ALL = (INT, FLOAT, STR, DATE)

    #: Approximate storage width in bytes, used for transfer-size estimates.
    WIDTH = {INT: 8, FLOAT: 8, STR: 24, DATE: 8}


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    dtype: str

    def __post_init__(self) -> None:
        if self.dtype not in DType.ALL:
            raise EngineError(f"unknown dtype {self.dtype!r} for column {self.name!r}")
        if not self.name:
            raise EngineError("column name must be non-empty")

    @property
    def width_bytes(self) -> int:
        """Approximate storage width of one value."""
        return DType.WIDTH[self.dtype]


@dataclass(frozen=True)
class TableSchema:
    """A named, ordered collection of columns."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise EngineError("table name must be non-empty")
        if not self.columns:
            raise EngineError(f"table {self.name!r} needs at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise EngineError(f"table {self.name!r} has duplicate column names")
        for key in self.primary_key:
            if key not in names:
                raise EngineError(
                    f"primary key column {key!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of all columns in declaration order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise EngineError(f"table {self.name!r} has no column {name!r}")

    def index_of(self, name: str) -> int:
        """Positional index of a column."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise EngineError(f"table {self.name!r} has no column {name!r}")

    @property
    def row_width_bytes(self) -> int:
        """Approximate storage width of one row."""
        return sum(column.width_bytes for column in self.columns)

    def rename(self, new_name: str) -> "TableSchema":
        """A copy of this schema under a different table name."""
        return TableSchema(new_name, self.columns, self.primary_key)
