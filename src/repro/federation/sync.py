"""The replication manager.

Builds synchronization schedules for replicas and, during simulation,
materialises each scheduled completion as an event: bumping the replica's
sync counter, recording staleness statistics, and waking any listeners
(e.g. dashboards in the examples).  Because schedules are *pre-scheduled*
timelines (see :mod:`repro.federation.catalog`), the manager never decides
freshness — it faithfully executes the published schedule, which is what
lets the IVQP optimizer plan against future synchronization points.

Three scheduling modes cover the paper's setups:

* **periodic** — fixed cycles, optionally staggered (Figures 1–4);
* **independent exponential** — each replica refreshes on its own
  ``ExponentialStream`` (JavaSim style);
* **shared exponential** — one system-wide exponential sync budget,
  round-robin over replicas (the Fq:Fs interpretation used for Figure 5;
  see DESIGN.md).
"""

from __future__ import annotations

import typing
from collections.abc import Callable, Sequence

from repro.errors import ConfigError
from repro.federation.catalog import (
    Catalog,
    Replica,
    SharedSyncFeed,
    StreamSyncSchedule,
    SyncSchedule,
)
from repro.federation.faults import SYNC_DELAY, SYNC_SKIP
from repro.obs import events
from repro.obs.live import EwmaRate

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.faults import FaultInjector
    from repro.sim.trace import Tracer
from repro.sim.monitor import Monitor
from repro.sim.rng import RandomSource
from repro.sim.scheduler import Simulator
from repro.sim.streams import ExponentialStream

__all__ = ["ReplicationManager", "build_schedules", "prefetch_timelines"]

SyncListener = Callable[[Replica, float], None]


def build_schedules(
    table_names: Sequence[str],
    mode: str,
    mean_interval: float,
    source: RandomSource,
    stagger: bool = True,
) -> dict[str, SyncSchedule]:
    """Create one schedule per table under the given mode.

    Parameters
    ----------
    table_names:
        The tables to be replicated.
    mode:
        ``"periodic"``, ``"exponential"`` (independent per replica) or
        ``"shared"`` (one budget shared round-robin; each replica then
        refreshes at mean interval ``mean_interval × len(table_names)``).
    mean_interval:
        Mean minutes between completions — per replica for ``periodic`` /
        ``exponential``, system-wide for ``shared``.
    source:
        Random source for stochastic modes and stagger offsets.
    stagger:
        For ``periodic``: give each replica a random phase so completions
        do not align.
    """
    if mean_interval <= 0:
        raise ConfigError(f"mean_interval must be > 0, got {mean_interval}")
    if not table_names:
        raise ConfigError("build_schedules needs at least one table")

    schedules: dict[str, SyncSchedule] = {}
    if mode == "periodic":
        for name in table_names:
            offset = (
                source.spawn(f"stagger/{name}").uniform(0.0, mean_interval)
                if stagger
                else mean_interval
            )
            schedules[name] = StreamSyncSchedule.periodic(
                mean_interval, offset=max(offset, 1e-6)
            )
    elif mode == "exponential":
        for name in table_names:
            stream = ExponentialStream(mean_interval, source.spawn(f"sync/{name}"))
            schedules[name] = StreamSyncSchedule(stream)
    elif mode == "shared":
        feed = SharedSyncFeed(
            ExponentialStream(mean_interval, source.spawn("sync/shared"))
        )
        for name in table_names:
            schedules[name] = feed.member()
    else:
        raise ConfigError(
            f"unknown sync mode {mode!r} (periodic | exponential | shared)"
        )
    return schedules


def prefetch_timelines(
    catalog: Catalog,
    horizon: float,
    table_names: Sequence[str] | None = None,
) -> None:
    """Materialise replica sync timelines through ``horizon`` up front.

    Lazily-extended schedules are convenient but put an extension branch on
    every freshness lookup; batch consumers (the MQO fast path compiles
    plans against raw sorted arrays) call this once so the hot loop almost
    never has to extend.  Restrict to ``table_names`` when only a subset of
    replicas is involved.
    """
    if table_names is None:
        replicas = catalog.replicas
    else:
        replicas = [
            replica
            for name in table_names
            if (replica := catalog.replica(name)) is not None
        ]
    for replica in replicas:
        replica.completions_through(horizon)


class ReplicationManager:
    """Materialises replica synchronizations inside the simulation."""

    def __init__(
        self,
        sim: Simulator,
        catalog: Catalog,
        qos_max_staleness: float | None = None,
        injector: "FaultInjector | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if qos_max_staleness is not None and qos_max_staleness <= 0:
            raise ConfigError("qos_max_staleness must be > 0")
        self.sim = sim
        self.catalog = catalog
        self.qos_max_staleness = qos_max_staleness
        self.injector = injector
        self.tracer = tracer
        # Bounded retention: long runs sync thousands of times, and the
        # raw gap samples are only needed for percentiles/diagnostics.
        self.staleness = Monitor(
            "replica-staleness-at-sync", keep_values=True, cap=4096
        )
        self.qos_violations = 0
        self.total_syncs = 0
        self.syncs_skipped = 0
        self.syncs_delayed = 0
        #: Per-table sync-application EWMAs (events/minute) — the update-rate
        #: signal a demand-driven sync controller reads per table.
        self.update_rate_half_life = 10.0
        self.update_rates: dict[str, EwmaRate] = {}
        self._listeners: list[SyncListener] = []
        self._started = False

    def add_listener(self, listener: SyncListener) -> None:
        """Register a callback invoked as ``listener(replica, time)``."""
        self._listeners.append(listener)

    def start(self) -> None:
        """Launch one driver process per replica (idempotent).

        Under a fault injector the replicas switch to runtime freshness
        tracking: only syncs that actually land count towards
        :meth:`~repro.federation.catalog.Replica.realized_freshness_at`.
        """
        if self._started:
            return
        self._started = True
        if self.injector is not None:
            self.injector.start()
            for replica in self.catalog.replicas:
                replica.enable_runtime_tracking()
        for replica in self.catalog.replicas:
            self.sim.process(self._drive(replica), name=f"sync:{replica.name}")

    def _drive(self, replica: Replica):
        # Consume the published schedule's completions *strictly in order*:
        # the cursor advances one completion per iteration, so near-equal
        # completion instants (whose timeout collapses to zero under float
        # addition) can no longer fire the same sync twice, and completions
        # sharing an exact timestamp collapse to one sync event.  Staleness
        # gaps are measured against the previously *applied* completion —
        # no epsilon lookups.
        cursor = self.sim.now
        previous = replica.schedule.last_completion_at_or_before(cursor)
        if previous is None:
            previous = replica.initial_timestamp
        while True:
            completion = replica.next_sync_after(cursor)
            cursor = completion
            if completion > self.sim.now:
                yield self.sim.timeout(completion - self.sim.now)
            if self.injector is not None:
                kind, delay = self.injector.sync_disposition(replica, completion)
                if kind == SYNC_SKIP:
                    self.syncs_skipped += 1
                    if self.tracer is not None:
                        self.tracer.emit(
                            events.SYNC_SKIP, replica.name, scheduled=completion
                        )
                    continue
                if kind == SYNC_DELAY and delay > 0.0:
                    self.syncs_delayed += 1
                    if self.tracer is not None:
                        self.tracer.emit(
                            events.SYNC_DELAY, replica.name,
                            scheduled=completion, delay=delay,
                        )
                    yield self.sim.timeout(delay)
            applied_at = max(completion, self.sim.now)
            self._on_sync(replica, applied_at, previous)
            previous = applied_at

    def _on_sync(self, replica: Replica, now: float, previous: float) -> None:
        # Staleness *just before* this sync: the gap the new version closes.
        gap = max(0.0, now - previous)
        self.staleness.observe(gap)
        self.total_syncs += 1
        replica.sync_count += 1
        if replica.runtime_tracking:
            replica.record_applied_sync(now)
        if self.qos_max_staleness is not None and gap > self.qos_max_staleness:
            self.qos_violations += 1
        if replica.name not in self.update_rates:
            self.update_rates[replica.name] = EwmaRate(self.update_rate_half_life)
        self.update_rates[replica.name].observe(now)
        if self.tracer is not None:
            self.tracer.emit(events.SYNC_APPLY, replica.name, at=now, gap=gap)
        for listener in self._listeners:
            listener(replica, now)

    def table_gauges(self, now: float | None = None) -> dict[str, dict[str, float]]:
        """Per-table staleness/divergence/update-rate gauges at ``now``.

        The manager-side counterpart of the trace-derived
        :class:`~repro.obs.live.TableSyncState` block: staleness reads the
        replica's *realized* freshness (what it actually holds), divergence
        the published-minus-realized gap
        (:meth:`~repro.federation.catalog.Replica.divergence_at`), and the
        update rate the per-table sync-application EWMA — the inputs
        ROADMAP item 2's demand-driven sync controller consumes.
        """
        now = self.sim.now if now is None else now
        gauges: dict[str, dict[str, float]] = {}
        for replica in self.catalog.replicas:
            rate = self.update_rates.get(replica.name)
            gauges[replica.name] = {
                "sync.table.staleness": replica.realized_staleness_at(now),
                "sync.table.divergence": replica.divergence_at(now),
                "sync.table.update_rate": rate.rate(now) if rate else 0.0,
                "sync.table.syncs": float(replica.sync_count),
            }
        return gauges
