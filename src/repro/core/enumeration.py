"""Candidate plan construction and enumeration (paper Figure 3).

For a query over tables with replicas, three versions of each replicated
table matter: the remote base table, the current replica, and the replica
after a future synchronization (reached by delaying execution).  Candidate
*start times* are therefore the submission instant plus each scheduled
synchronization completion inside the search window; at each start time,
candidate *combos* choose per table between base and replica.

Dominance pruning (the paper's discarding of plans 9, 10 and of
``{R1'', R2'}`` in Figure 3) is expressed here in two ways:

* :func:`gather_combos` only substitutes base tables for a *prefix of the
  stalest* replicas — the "gather" observation that SL is decided by the
  earliest-synchronized table, so substituting a fresher replica first can
  never help;
* the optimizer's scatter bound cuts off start times too late to win.
"""

from __future__ import annotations

import itertools
import typing
from collections.abc import Iterable

from repro.core.plan import QueryPlan, TableVersion, VersionKind
from repro.core.value import DiscountRates
from repro.errors import PlanError
from repro.federation.catalog import Catalog

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.faults import AvailabilityView
    from repro.workload.query import DSSQuery


__all__ = [
    "CostProvider",
    "make_plan",
    "split_tables",
    "gather_combos",
    "all_combos",
    "sync_points_between",
    "enumerate_plans",
]


class CostProvider(typing.Protocol):
    """Anything that can compile a (query, remote-tables) combo."""

    def combo_cost(self, query: "DSSQuery", remote_tables: frozenset[str]):
        """Return a :class:`~repro.federation.costmodel.ComboCost`."""
        ...  # pragma: no cover - protocol


def split_tables(query: "DSSQuery", catalog: Catalog) -> tuple[list[str], list[str]]:
    """Partition a query's tables into (replicated, base-only)."""
    replicated, base_only = [], []
    for name in query.tables:
        if catalog.has_replica(name):
            replicated.append(name)
        else:
            base_only.append(name)
    return replicated, base_only


def make_plan(
    query: "DSSQuery",
    catalog: Catalog,
    cost_provider: CostProvider,
    rates: DiscountRates,
    submitted_at: float,
    start_time: float,
    remote_tables: frozenset[str],
) -> QueryPlan:
    """Build a fully-specified plan for one (start time, combo) choice."""
    if start_time < submitted_at:
        raise PlanError("plan start cannot precede submission")
    versions = []
    for name in query.tables:
        if name in remote_tables:
            versions.append(TableVersion(name, VersionKind.BASE, start_time))
        else:
            replica = catalog.replica(name)
            if replica is None:
                raise PlanError(
                    f"table {name!r} has no replica; it must be read remotely"
                )
            versions.append(
                TableVersion(
                    name, VersionKind.REPLICA, replica.freshness_at(start_time)
                )
            )
    cost = cost_provider.combo_cost(query, remote_tables)
    return QueryPlan(
        query=query,
        versions=tuple(versions),
        submitted_at=submitted_at,
        start_time=start_time,
        cost=cost,
        rates=rates,
    )


def _staleness_order(
    replicated: Iterable[str],
    catalog: Catalog,
    at_time: float,
) -> list[str]:
    """Replicated tables ordered stalest-first at ``at_time``."""
    return sorted(
        replicated,
        key=lambda name: (catalog.replica(name).freshness_at(at_time), name),
    )


def gather_combos(
    query: "DSSQuery",
    catalog: Catalog,
    at_time: float,
    availability: "AvailabilityView | None" = None,
) -> list[frozenset[str]]:
    """Non-dominated remote-table sets at one start time (the gather step).

    Returns ``m + 1`` combos for ``m`` replicated tables: substitute the
    ``k`` stalest replicas with base-table reads, ``k = 0..m``.  Tables
    without replicas are always read remotely.

    With an ``availability`` view, replicated tables whose base site is
    inside a scheduled outage at ``at_time`` are never substituted — their
    replica is the only reachable copy, so combos that would read them
    remotely are excluded up front (degraded-mode planning).
    """
    replicated, base_only = split_tables(query, catalog)
    if availability is not None:
        replicated = [
            name
            for name in replicated
            if not availability.is_site_down(catalog.table(name).site, at_time)
        ]
    order = _staleness_order(replicated, catalog, at_time)
    combos = []
    for k in range(len(order) + 1):
        combos.append(frozenset(base_only) | frozenset(order[:k]))
    return combos


def all_combos(query: "DSSQuery", catalog: Catalog) -> list[frozenset[str]]:
    """Every remote-table set (exhaustive; exponential in replica count)."""
    replicated, base_only = split_tables(query, catalog)
    combos = []
    for r in range(len(replicated) + 1):
        for subset in itertools.combinations(replicated, r):
            combos.append(frozenset(base_only) | frozenset(subset))
    return combos


def sync_points_between(
    query: "DSSQuery",
    catalog: Catalog,
    start: float,
    end: float,
    availability: "AvailabilityView | None" = None,
) -> list[float]:
    """Sync completion instants of the query's replicas in ``(start, end]``.

    With an ``availability`` view, completions that are scheduled to skip
    or slip are not worth delaying for and are filtered out per replica.
    """
    if end < start:
        return []
    replicated, _base_only = split_tables(query, catalog)
    points: set[float] = set()
    for name in replicated:
        replica = catalog.replica(name)
        completions = replica.schedule.completions_between(start, end)
        if availability is not None:
            completions = [
                time
                for time in completions
                if not availability.unreliable_sync(name, time)
            ]
        points.update(completions)
    return sorted(points)


def enumerate_plans(
    query: "DSSQuery",
    catalog: Catalog,
    cost_provider: CostProvider,
    rates: DiscountRates,
    submitted_at: float,
    horizon: float,
    exhaustive: bool = False,
    availability: "AvailabilityView | None" = None,
) -> list[QueryPlan]:
    """All candidate plans with start times in ``[submitted_at, horizon]``.

    With ``exhaustive=True`` every base/replica combination is considered at
    every start time — the oracle the property tests compare the bounded
    scatter-and-gather search against.  Otherwise only the non-dominated
    gather combos are produced.  With an ``availability`` view, combos
    reading a down site's replicated table remotely and unreliable sync
    points are excluded (see :func:`gather_combos` /
    :func:`sync_points_between`).
    """
    start_times = [submitted_at] + sync_points_between(
        query, catalog, submitted_at, horizon, availability
    )
    plans = []
    seen: set[tuple[float, frozenset[str]]] = set()
    for start_time in start_times:
        if exhaustive:
            combos = all_combos(query, catalog)
            if availability is not None:
                combos = [
                    combo
                    for combo in combos
                    if not any(
                        catalog.has_replica(name)
                        and availability.is_site_down(
                            catalog.table(name).site, start_time
                        )
                        for name in combo
                    )
                ]
        else:
            combos = gather_combos(query, catalog, start_time, availability)
        for combo in combos:
            key = (start_time, combo)
            if key in seen:
                continue
            seen.add(key)
            plans.append(
                make_plan(
                    query, catalog, cost_provider, rates,
                    submitted_at, start_time, combo,
                )
            )
    return plans
