"""Figure 7 — Synchronization latency per query.

Same TPC-H setup as Figure 6, for Fq:Fs in {1:1, 1:10, 1:20}, comparing
IVQP against the Data Warehouse only ("We do not compare with Federation
... because the synchronization latency of Federation is caused by the
delay of query processing instead of table update").

Expected shape: IVQP's per-query SL is smaller than or equal to the Data
Warehouse's everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.value import DiscountRates
from repro.experiments.config import TpchSetup, sync_interval_for_ratio
from repro.experiments.fig6 import select_mid_cost_queries
from repro.experiments.runner import run_single_queries
from repro.reporting.tables import ResultTable

__all__ = ["Fig7Config", "run_fig7"]


@dataclass
class Fig7Config:
    """Parameters of the Figure 7 runs."""

    setup: TpchSetup = field(default_factory=TpchSetup)
    ratio_multipliers: dict[str, float] = field(
        default_factory=lambda: {"1:1": 1.0, "1:10": 10.0, "1:20": 20.0}
    )
    lambda_both: float = 0.01
    query_count: int = 15
    approaches: tuple[str, ...] = ("ivqp", "warehouse")
    submit_at: float = 50.0
    system_seed: int = 1


def run_fig7(config: Fig7Config | None = None) -> ResultTable:
    """Run Figure 7 and return per-query synchronization latencies."""
    config = config or Fig7Config()
    rates = DiscountRates.symmetric(config.lambda_both)
    queries = select_mid_cost_queries(config.setup, config.query_count)
    table = ResultTable(
        title="Figure 7: synchronization latency (minutes) per query",
        headers=["fq_fs", "query_index", "query", "approach", "sl_minutes"],
    )
    for ratio_label, multiplier in config.ratio_multipliers.items():
        interval = sync_interval_for_ratio(multiplier)
        for approach in config.approaches:
            system_config = config.setup.system_config(
                approach=approach,
                rates=rates,
                sync_mean_interval=interval,
                seed=config.system_seed,
            )
            result = run_single_queries(
                system_config, approach, queries, submit_at=config.submit_at
            )
            latencies = result.per_query_sl
            for index, query in enumerate(queries, start=1):
                table.add(
                    ratio_label, index, query.name, approach,
                    latencies[query.name],
                )
    return table
