# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast test-faults test-online test-live test-serve test-durable test-scale test-fleet serve-smoke serve-smoke-resume trace-check trace-check-fleet lint ci bench bench-mqo bench-faults bench-online bench-serve bench-scale bench-gate experiments check examples all

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

# Everything except the long-running property/integration tests.
test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q -m "not slow"

test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_faults.py tests/test_faults_properties.py tests/test_latency_accounting.py -q

test-online:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_mqo_online.py tests/test_mqo_online_properties.py -q

# The live-telemetry stack: streaming aggregators, SLO monitor, profiler,
# bench gate plumbing.
test-live:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_obs_live.py tests/test_obs_slo.py tests/test_obs_profile.py tests/test_bench_gate.py -q

# The wall-clock serving runtime: Clock seam, asyncio HTTP service,
# clock-equivalence property.
test-serve:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_sim_clocks.py tests/test_serve.py tests/test_clock_equivalence.py -q

# The durable layer: journal framing/torn-write fuzzing, crash-injection
# equivalence (including the Hypothesis property sweep), golden journal.
test-durable:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_durable_journal.py tests/test_durable_resume.py tests/test_durable_properties.py -q

# The scale arc: vectorized batch evaluation, incremental conflict
# groups, and the EXT5 sharded sweep (long configs stay behind `slow`).
test-scale:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_mqo_vector.py tests/test_mqo_conflict_incremental.py tests/test_mqo_scale.py -q -m "not slow"

# The fleet telemetry stack: per-shard spools, collector merge,
# cross-shard checker rules, registry merge property, and the /metrics
# content negotiation (long configs stay behind `slow`).
test-fleet:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_obs_fleet.py tests/test_obs_live_merge.py tests/test_serve_metrics_formats.py -q -m "not slow"

# End-to-end HTTP pass over every route; asserts checker-clean trace and
# SimClock replay equivalence.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro serve-smoke

# Kill a journaled HTTP service mid-flight, resume from its journal, and
# prove the merged run is checker-clean and replay/recompute bit-equal.
serve-smoke-resume:
	PYTHONPATH=src $(PYTHON) -m repro serve-smoke --kill-resume

# Audit the fig4 golden scenario with the trace invariant checker.
trace-check:
	PYTHONPATH=src $(PYTHON) -m repro trace fig4 --check >/dev/null
	@echo "trace-check: fig4 scenario clean"

# Merge a reduced EXT5 steady sweep across shard spools and run the
# cross-shard checker rules over the merged trace (non-zero on any
# violation).
trace-check-fleet:
	PYTHONPATH=src $(PYTHON) -m repro scale --trace --fleet-metrics --schedule steady --queries 2000 >/dev/null
	@echo "trace-check-fleet: merged EXT5 steady trace clean"

# Lint only when ruff is actually installed (the CI image may not ship it).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src/ tests/ benchmarks/; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

# Self-contained: sets PYTHONPATH itself, unlike the bare `test` target.
ci: lint
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q
	$(MAKE) test-faults
	$(MAKE) test-online
	$(MAKE) test-live
	$(MAKE) test-serve
	$(MAKE) test-durable
	$(MAKE) test-scale
	$(MAKE) test-fleet
	$(MAKE) trace-check
	$(MAKE) trace-check-fleet
	$(MAKE) serve-smoke
	$(MAKE) serve-smoke-resume
	$(MAKE) bench-online
	$(MAKE) bench-serve
	$(MAKE) bench-scale
	$(MAKE) bench-gate

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-mqo:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_mqo_perf.py benchmarks/test_fig9_mqo.py --benchmark-only
	PYTHONPATH=src $(PYTHON) benchmarks/mqo_snapshot.py BENCH_mqo.json

bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/faults_snapshot.py BENCH_faults.json

bench-online:
	PYTHONPATH=src $(PYTHON) benchmarks/online_snapshot.py BENCH_online.json

bench-serve:
	PYTHONPATH=src $(PYTHON) benchmarks/serve_snapshot.py BENCH_serve.json

# The EXT5 sharded scale sweep (10^5-query steady stream + burst +
# pressure); writes the throughput-ratchet baseline for bench-gate.
bench-scale:
	PYTHONPATH=src $(PYTHON) benchmarks/scale_snapshot.py BENCH_scale.json

# Re-run every committed benchmark snapshot and fail on wall-clock or IV
# regressions; the slowdown multiple comes from BENCH_GATE_TOLERANCE
# (default 3.0).  Appends BENCH_history.jsonl.
bench-gate:
	PYTHONPATH=src $(PYTHON) -m repro bench-gate

experiments:
	$(PYTHON) -m repro all

check:
	$(PYTHON) -m repro check

examples:
	@for example in examples/*.py; do \
		echo "== $$example =="; \
		$(PYTHON) $$example || exit 1; \
	done

all: test bench check
