"""Online MQO: rolling-window scheduling of a live query stream.

The paper's MQO (Section 3.2) optimizes a workload it holds in hand; its
own premise — near real-time BI over continuously refreshed replicas —
means queries actually *arrive over time*.  This module closes that gap
with an event-driven scheduler that keeps the batch machinery (conflict
groups, GA ordering, the analytic evaluator) but applies it repeatedly to
a moving frontier:

* **Admission** — an arriving query is admitted to a bounded pending
  queue; if its IV *upper bound* (best case over every candidate plan,
  any availability) is already below ``iv_floor`` it is **shed** — it can
  never pay for its seat.  When the queue is full the query is
  **deferred** and re-queued at the next window close.
* **Rolling re-optimization** — each time the window closes or a running
  query completes (and the pending set changed since the last pass), the
  not-yet-started queries are re-grouped into conflict groups and each
  group's order is re-optimized by the GA, **warm-started** from the
  previous pass's best permutation (an extra seed chromosome) so
  convergence cost amortizes across windows.
* **Dispatch** — the head of the optimized plan is realized against
  committed server state and started, but only once no earlier event
  (arrival, window, completion) could still change the plan; completions
  feed back into the event clock.

The loop itself is **clock-agnostic**: all state and event handling live
in :class:`OnlineSession`, which only talks to the
:class:`~repro.sim.clocks.Clock` protocol.  :meth:`OnlineMQOScheduler.run`
drives a session from a :class:`~repro.sim.clocks.SimClock` (deterministic
replay of a workload's arrival stream — the batch-equivalent path every
committed number rests on), while ``repro.serve`` drives the *same*
session from a :class:`~repro.sim.clocks.WallClock` under asyncio, with
arrivals pushed live by HTTP submissions.  :func:`replay_decisions`
re-runs a recorded wall arrival trace through a ``SimClock`` and, by
construction, reproduces the wall run's admit/shed/dispatch decision
sequence exactly (``tests/test_clock_equivalence.py``).

Equivalence anchor: with admission disabled (``iv_floor=0``, a queue that
fits the whole stream, ``eager_start=False``) and one window spanning all
arrivals, exactly one optimization pass runs over the full workload with
the same GA seeds and seed chromosome as the batch path — the decision is
bit-identical to :meth:`WorkloadScheduler.schedule`
(``tests/test_mqo_online_properties.py`` proves it property-style).
"""

from __future__ import annotations

import typing
from collections import deque
from dataclasses import asdict, dataclass, field

from repro.core.enumeration import CostProvider
from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog
from repro.mqo.conflict import (
    ExecutionRange,
    IncrementalConflictGroups,
    conflict_groups,
    execution_ranges,
)
from repro.mqo.evaluator import (
    Assignment,
    EvaluationResult,
    EvaluatorStats,
    WorkloadEvaluator,
)
from repro.mqo.ga import GAConfig, GeneticAlgorithm
from repro.obs import events
from repro.obs.profile import profiled
from repro.sim.clocks import Clock, SimClock

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence

    from repro.sim.trace import Tracer
    from repro.workload.query import Workload

__all__ = [
    "OnlineConfig",
    "OnlineStats",
    "WindowRecord",
    "OnlineDecision",
    "OnlineSession",
    "OnlineMQOScheduler",
    "ArrivalRecord",
    "replay_decisions",
]

#: Spacing of GA seeds between optimization passes.  A prime stride keeps
#: pass ``k``'s group seeds (``seed + k*stride + group``) disjoint from
#: pass ``k+1``'s for any realistic group count, and stride 0 on the first
#: pass makes it coincide with the batch scheduler's ``seed + group``.
_PASS_SEED_STRIDE = 7919


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online scheduling loop."""

    #: Rolling re-optimization period (minutes of stream time).
    window: float = 5.0
    #: Bound on the pending queue (admitted + planned, not yet started).
    max_pending: int = 64
    #: Admission floor: shed a query whose IV upper bound is below this.
    iv_floor: float = 0.0
    #: Optimize immediately when a query arrives to an idle system rather
    #: than waiting for the window to close (cuts idle latency; turn off
    #: for bit-exact batch equivalence).
    eager_start: bool = True
    #: Maintain conflict groups incrementally across windows (admit and
    #: retire one execution range at a time) instead of re-running the
    #: sweep line over every pending query each pass.  Produces the exact
    #: sweep-line groups either way; this only changes the cost of
    #: producing them.
    incremental_groups: bool = True
    #: Cross-check the incremental groups against a from-scratch sweep on
    #: every pass.  Active only under ``__debug__`` (stripped by
    #: ``python -O``); the scale sweep also turns it off explicitly since
    #: the check is itself the full recompute being avoided.
    verify_groups: bool = True
    #: Score GA generations through the numpy batch evaluator
    #: (:class:`repro.mqo.vector.VectorizedEvaluator`) instead of the
    #: scalar per-chromosome fast path.  Off by default: batch totals
    #: match the scalar path only within ``vector.REL_TOLERANCE`` (last-
    #: ulp ``pow`` differences can flip a near-tie), so every committed
    #: golden stays on the scalar path; the EXT5 scale sweep opts in.
    #: Requires numpy — raises :class:`OptimizationError` at the first
    #: optimization pass otherwise.
    vectorized_ga: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise OptimizationError(f"window must be > 0, got {self.window}")
        if self.max_pending < 1:
            raise OptimizationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.iv_floor < 0:
            raise OptimizationError(
                f"iv_floor must be >= 0, got {self.iv_floor}"
            )


@dataclass
class OnlineStats:
    """Counters of one online run (numeric fields feed ``repro.obs`` metrics)."""

    submitted: int = 0    #: queries seen on the arrival stream
    admitted: int = 0     #: queries accepted into the pending queue
    shed: int = 0         #: queries rejected by the IV floor
    deferred: int = 0     #: arrivals parked because the queue was full
    requeued: int = 0     #: deferred queries later admitted at a window
    dispatched: int = 0   #: queries started (each exactly once)
    windows: int = 0      #: re-optimization passes run
    ga_runs: int = 0      #: GA invocations across all passes
    warm_seeds: int = 0   #: GA runs seeded with the previous incumbent
    reopt_seconds: float = 0.0  #: wall-clock spent re-optimizing


@dataclass(frozen=True)
class WindowRecord:
    """One re-optimization pass (the audit trail behind ``MQO_WINDOW``)."""

    index: int
    time: float            #: stream time the pass ran at
    trigger: str           #: "window" | "completion" | "idle"
    pending: int           #: not-yet-started queries optimized over
    groups: int            #: conflict groups formed this pass
    order: tuple[int, ...]  #: the pass's decided dispatch order
    ga_runs: int
    warm_seeded: int
    reopt_seconds: float


@dataclass
class OnlineDecision:
    """The online scheduler's output (mirrors ``ScheduleDecision``)."""

    result: EvaluationResult
    shed: list[int] = field(default_factory=list)
    windows: list[WindowRecord] = field(default_factory=list)
    stats: OnlineStats = field(default_factory=OnlineStats)
    evaluator_stats: EvaluatorStats | None = None

    @property
    def total_information_value(self) -> float:
        """Total realized IV of the executed (non-shed) queries."""
        return self.result.total_information_value

    @property
    def mean_information_value(self) -> float:
        """Mean realized IV over executed queries."""
        return self.result.mean_information_value

    @property
    def permutation(self) -> list[int]:
        """The realized dispatch order."""
        return [a.query.query_id for a in self.result.assignments]


@dataclass(frozen=True)
class _RestoredPlan:
    """Stand-in for a dispatched query's plan after a snapshot restore.

    A restored session only touches a *started* assignment's plan for its
    discount rates (ledger synthesis at completion); the full
    :class:`QueryPlan` lives in the evaluator caches, which are rebuilt
    deterministically rather than persisted.
    """

    rates: DiscountRates


def _encode_decision(entry: tuple) -> list:
    """JSON-safe form of one decision-log tuple."""
    return [list(part) if isinstance(part, tuple) else part for part in entry]


def _decode_decision(entry: list) -> tuple:
    """Inverse of :func:`_encode_decision` (nested lists become tuples)."""
    return tuple(
        tuple(part) if isinstance(part, list) else part for part in entry
    )


@dataclass(frozen=True)
class ArrivalRecord:
    """One recorded live arrival: who, when, and *between which events*.

    ``pops_before`` is the number of clock events the serving loop had
    already popped when this arrival was pushed — the piece of ordering
    information a bare timestamp cannot carry (a submission can land
    while the loop is still catching up on overdue deadlines).  Replaying
    a trace pushes each arrival at exactly that position, so the replayed
    heap evolves identically to the live one.
    """

    query_id: int
    time: float
    pops_before: int


class OnlineSession:
    """Clock-agnostic state of one online scheduling run.

    All admission/shed/window/dispatch logic lives here; the only moving
    part a driver supplies is the :class:`~repro.sim.clocks.Clock` events
    come from.  Drivers feed popped events to :meth:`handle`; the session
    pushes its own follow-on events (window reschedules, analytic
    completions) back into the same clock.

    ``decisions`` is the run's decision log — one tuple per admission
    verdict, re-optimization pass and dispatch — and is the object the
    sim-vs-wall clock-equivalence property compares.
    """

    def __init__(
        self,
        scheduler: "OnlineMQOScheduler",
        workload: "Workload",
        clock: Clock,
    ) -> None:
        self.scheduler = scheduler
        self.workload = workload
        self.clock = clock
        self.config = scheduler.config
        self.evaluator = WorkloadEvaluator(
            scheduler.catalog,
            scheduler.cost_provider,
            scheduler.default_rates,
            workload,
            max_candidates=scheduler.max_candidates,
        )
        self.stats = OnlineStats()
        self.decision = OnlineDecision(
            result=EvaluationResult(), stats=self.stats,
            evaluator_stats=self.evaluator.stats,
        )
        self.queue: list[int] = []         # admitted, awaiting optimization
        self.plan: deque[int] = deque()    # optimized dispatch order
        self.deferred: deque[int] = deque()  # queue-overflow parking lot
        #: Execution ranges of every pending (admitted, not yet started)
        #: query, grouped incrementally — the per-window sweep replacement.
        self.group_index = IncrementalConflictGroups()
        self.running: set[int] = set()
        self.free_at: dict[int, float] = {}
        self.incumbent: list[int] = []  # previous pass's order (warm start)
        self.dirty = False              # pending set changed since last pass
        self.pass_serial = 0
        #: Arrivals still in the clock (sim driver) — keeps the window
        #: chain alive until the stream is fully replayed.
        self.arrivals_expected = 0
        #: A live driver sets this while it may still inject arrivals.
        self.accepting = False
        #: The first arrival bootstraps the rolling window chain.
        self.window_started = False
        #: Dispatched assignments by query id (live drivers resolve
        #: completions against this).
        self.started: dict[int, Assignment] = {}
        #: The decision log: ("admit"|"shed"|"defer"|"requeue", qid),
        #: ("window", trigger, order) and ("start", qid, begin, completed).
        self.decisions: list[tuple] = []

    # -- small helpers -----------------------------------------------------

    def _emit(self, kind: str, subject: str, **details) -> None:
        tracer = self.scheduler.tracer
        if tracer is not None:
            tracer.emit(kind, subject, **details)

    def _pending_ids(self) -> list[int]:
        return [*self.plan, *self.queue]

    def _admit_room(self) -> bool:
        return len(self.plan) + len(self.queue) < self.config.max_pending

    def _track(self, qid: int) -> None:
        """Admit a query's execution range into the incremental index."""
        if self.config.incremental_groups:
            start, end = self.evaluator.range_of(qid)
            self.group_index.add(ExecutionRange(qid, start, end))

    def _untrack(self, qid: int) -> None:
        """Retire a dispatched query's range from the incremental index."""
        if self.config.incremental_groups:
            self.group_index.remove(qid)

    def expects_more_arrivals(self) -> bool:
        """Whether the arrival stream may still produce events."""
        return self.arrivals_expected > 0 or self.accepting

    # -- durable snapshots -------------------------------------------------

    def capture_state(self) -> dict:
        """A JSON-safe snapshot of every field the scheduling logic reads.

        The evaluator is deliberately *not* captured: it is a
        deterministic cache rebuilt from the scheduler's seed and rebased
        on ``free_at`` at the top of every optimization pass, so a fresh
        evaluator over a restored session reproduces decisions bit-for-bit
        (the PR 1 fast-path contract).  Dispatched assignments persist as
        minimal stand-ins — rates and timestamps — which is everything
        completion handling and IV accounting ever read back.
        """

        def assignment_state(assignment: Assignment) -> dict:
            return {
                "qid": assignment.query.query_id,
                "arrival": assignment.arrival,
                "begin": assignment.begin,
                "completed": assignment.completed,
                "data_timestamp": assignment.data_timestamp,
                "lambda_cl": assignment.plan.rates.computational,
                "lambda_sl": assignment.plan.rates.synchronization,
            }

        windows = []
        for record in self.decision.windows:
            window = asdict(record)
            window["order"] = list(record.order)
            windows.append(window)
        return {
            "queue": list(self.queue),
            "plan": list(self.plan),
            "deferred": list(self.deferred),
            "running": sorted(self.running),
            "free_at": {str(site): at for site, at in self.free_at.items()},
            "incumbent": list(self.incumbent),
            "dirty": self.dirty,
            "pass_serial": self.pass_serial,
            "arrivals_expected": self.arrivals_expected,
            "accepting": self.accepting,
            "window_started": self.window_started,
            "stats": asdict(self.stats),
            "shed": list(self.decision.shed),
            "windows": windows,
            "decisions": [
                _encode_decision(entry) for entry in self.decisions
            ],
            "dispatch_order": [
                assignment.query.query_id
                for assignment in self.decision.result.assignments
            ],
            "started": {
                str(qid): assignment_state(assignment)
                for qid, assignment in self.started.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild this session exactly as :meth:`capture_state` saw it.

        The session's workload must already contain every query the
        captured run had admitted or dispatched (recovery rebuilds it from
        the journal's arrival records before restoring).
        """
        self.queue = [int(qid) for qid in state["queue"]]
        self.plan = deque(int(qid) for qid in state["plan"])
        self.deferred = deque(int(qid) for qid in state["deferred"])
        self.group_index = IncrementalConflictGroups()
        for qid in [*self.plan, *self.queue]:
            self._track(qid)
        self.running = {int(qid) for qid in state["running"]}
        self.free_at = {
            int(site): float(at) for site, at in state["free_at"].items()
        }
        self.incumbent = [int(qid) for qid in state["incumbent"]]
        self.dirty = bool(state["dirty"])
        self.pass_serial = int(state["pass_serial"])
        self.arrivals_expected = int(state["arrivals_expected"])
        self.accepting = bool(state["accepting"])
        self.window_started = bool(state["window_started"])
        self.stats = OnlineStats(**state["stats"])
        self.decisions = [
            _decode_decision(entry) for entry in state["decisions"]
        ]
        self.started = {}
        for qid_text, data in state["started"].items():
            qid = int(qid_text)
            rates = DiscountRates(data["lambda_cl"], data["lambda_sl"])
            self.started[qid] = Assignment(
                query=self.workload.query(qid),
                plan=typing.cast(typing.Any, _RestoredPlan(rates)),
                arrival=data["arrival"],
                begin=data["begin"],
                completed=data["completed"],
                data_timestamp=data["data_timestamp"],
            )
        self.decision = OnlineDecision(
            result=EvaluationResult(assignments=[
                self.started[int(qid)] for qid in state["dispatch_order"]
            ]),
            shed=[int(qid) for qid in state["shed"]],
            windows=[
                WindowRecord(**{**window, "order": tuple(window["order"])})
                for window in state["windows"]
            ],
            stats=self.stats,
            evaluator_stats=self.evaluator.stats,
        )

    # -- event handling ----------------------------------------------------

    def handle(self, now: float, tag: str, payload: object) -> str | None:
        """Process one popped clock event; returns the admission outcome
        (``"admitted" | "shed" | "deferred"``) for arrival events."""
        outcome: str | None = None
        if tag == "arrival":
            if not self.window_started:
                self.window_started = True
                self.clock.push(now + self.config.window, "window", None)
            if self.arrivals_expected > 0:
                self.arrivals_expected -= 1
            outcome = self.submit(typing.cast(int, payload), now)
        elif tag == "window":
            self._release_deferred()
            if self.dirty and (self.plan or self.queue):
                self._optimize(now, "window")
            if (
                self.expects_more_arrivals()
                or self.queue or self.deferred or self.plan
            ):
                self.clock.push(now + self.config.window, "window", None)
        elif tag == "completion":
            self.running.discard(payload)
            self._release_deferred()
            if self.dirty and (self.plan or self.queue):
                self._optimize(now, "completion")
        else:
            raise OptimizationError(f"unknown clock event tag {tag!r}")
        self.dispatch(now)
        return outcome

    def submit(self, qid: int, now: float) -> str:
        """Admission control for one arrival (shed / defer / admit)."""
        query = self.workload.query(qid)
        self.stats.submitted += 1
        bound = self.evaluator.upper_bound(qid)
        if bound < self.config.iv_floor:
            self.decision.shed.append(qid)
            self.stats.shed += 1
            self.decisions.append(("shed", qid))
            self._emit(
                events.MQO_SHED, query.name,
                qid=qid, bound=bound, floor=self.config.iv_floor,
            )
            return "shed"
        if not self._admit_room():
            self.deferred.append(qid)
            self.stats.deferred += 1
            self.decisions.append(("defer", qid))
            return "deferred"
        self.queue.append(qid)
        self._track(qid)
        self.stats.admitted += 1
        self.dirty = True
        self.decisions.append(("admit", qid))
        self._emit(events.MQO_ADMIT, query.name, qid=qid, requeued=False)
        if (
            self.config.eager_start
            and self.dirty
            and not self.running
            and not self.plan
        ):
            self._optimize(now, "idle")
        return "admitted"

    def _release_deferred(self) -> None:
        while self.deferred and self._admit_room():
            qid = self.deferred.popleft()
            self.queue.append(qid)
            self._track(qid)
            self.stats.requeued += 1
            self.stats.admitted += 1
            self.dirty = True
            self.decisions.append(("requeue", qid))
            self._emit(
                events.MQO_ADMIT, self.workload.query(qid).name,
                qid=qid, requeued=True,
            )

    @profiled("online.window")
    def _optimize(self, now: float, trigger: str) -> None:
        pending = self._pending_ids()
        # Re-optimization cost is timed through the clock so each time
        # domain books it exactly once: SimClock reads ``perf_counter``
        # (real seconds outside the simulated stream, as before), while
        # WallClock reads the same monotonic base that drives stream time
        # — the cost is a *slice* of the stream, never double-counted.
        began = self.clock.perf_seconds()
        workload = self.workload
        evaluator = self.evaluator
        evaluator.rebase(self.free_at)
        if self.config.incremental_groups:
            groups = self.group_index.groups()
            if self.config.verify_groups:
                assert groups == conflict_groups(
                    execution_ranges(evaluator, query_ids=pending)
                ), "incremental conflict groups diverged from the sweep line"
        else:
            ranges = execution_ranges(evaluator, query_ids=pending)
            groups = conflict_groups(ranges)
        # Stable sort: ties keep pending order, which on the first pass
        # is admission order — exactly the batch scheduler's
        # ``sorted_by_arrival`` tie-breaking.
        arrival_order = sorted(pending, key=workload.arrival_of)
        fitness_batch = None
        if self.config.vectorized_ga and any(len(g) >= 2 for g in groups):
            # Compiled per pass over exactly the pending set; reads the
            # evaluator's rebased availability at scoring time.
            from repro.mqo.vector import VectorizedEvaluator

            fitness_batch = VectorizedEvaluator(
                evaluator, query_ids=pending
            ).fitness_batch
        group_orders: dict[int, list[int]] = {}
        ga_runs = 0
        warm_seeded = 0
        for index, group in enumerate(groups):
            if len(group) < 2:
                group_orders[index] = list(group)
                continue
            group_set = set(group)
            seeds = [
                [qid for qid in arrival_order if qid in group_set]
            ]
            carried = [qid for qid in self.incumbent if qid in group_set]
            if len(carried) >= 2:
                # Warm start: members carried over from the previous
                # pass keep their decided relative order; members new
                # to this pass append in arrival order.
                carried_set = set(carried)
                warm = carried + [
                    qid for qid in seeds[0] if qid not in carried_set
                ]
                if warm != seeds[0]:
                    seeds.append(warm)
                    warm_seeded += 1
                    self.stats.warm_seeds += 1
            ga = GeneticAlgorithm(
                genes=group,
                fitness=evaluator.sequence_fitness,
                config=self.scheduler.ga_config,
                seed=(
                    self.scheduler.seed
                    + self.pass_serial * _PASS_SEED_STRIDE
                    + index
                ),
                evaluator_stats=evaluator.stats,
                fitness_batch=fitness_batch,
            )
            outcome = ga.run(seed_chromosomes=seeds)
            group_orders[index] = outcome.best
            ga_runs += 1
            self.stats.ga_runs += 1
        ordered_groups = sorted(
            range(len(groups)),
            key=lambda index: min(
                workload.arrival_of(qid) for qid in groups[index]
            ),
        )
        new_plan: list[int] = []
        for index in ordered_groups:
            new_plan.extend(group_orders[index])
        elapsed = self.clock.perf_seconds() - began
        self.plan.clear()
        self.plan.extend(new_plan)
        self.queue.clear()
        self.incumbent = list(new_plan)
        self.dirty = False
        record = WindowRecord(
            index=len(self.decision.windows),
            time=now,
            trigger=trigger,
            pending=len(pending),
            groups=len(groups),
            order=tuple(new_plan),
            ga_runs=ga_runs,
            warm_seeded=warm_seeded,
            reopt_seconds=elapsed,
        )
        self.decision.windows.append(record)
        self.stats.windows += 1
        self.stats.reopt_seconds += elapsed
        self.pass_serial += 1
        self.decisions.append(("window", trigger, tuple(new_plan)))
        self._emit(
            events.MQO_WINDOW, f"window:{record.index}",
            index=record.index, trigger=trigger,
            pending=record.pending, groups=record.groups,
            order=list(record.order),
        )

    def _best_assignment(self, qid: int) -> Assignment:
        # Compiled fast path with the choice memo: dispatch probes the
        # plan head on *every* event, and between dispatches the site
        # clocks rarely move, so the memo turns repeated probes into one
        # lookup.  Bit-identical to realizing every candidate naively
        # (the pre-fix per-event loop).
        return self.evaluator.choose_best(qid, self.free_at)

    @profiled("online.dispatch")
    def dispatch(self, now: float) -> None:
        # Start plan heads whose begin precedes every event that could
        # still change the plan; realization is a pure function of the
        # order and committed state, so *when* we commit is irrelevant
        # to the schedule — only re-optimization opportunities matter.
        while self.plan:
            assignment = self._best_assignment(self.plan[0])
            if self.clock and assignment.begin > self.clock.peek_time():
                break
            qid = self.plan.popleft()
            self._untrack(qid)
            self.evaluator._commit(assignment, self.free_at)
            self.decision.result.assignments.append(assignment)
            self.running.add(qid)
            self.stats.dispatched += 1
            self.started[qid] = assignment
            self.decisions.append(
                ("start", qid, assignment.begin, assignment.completed)
            )
            self.clock.push(
                max(assignment.completed, now), "completion", qid
            )

    def drain(self) -> None:
        """Force out anything still pending once no events remain."""
        if self.queue or self.deferred:  # pragma: no cover - windows drain these
            while self.deferred:
                qid = self.deferred.popleft()
                self.queue.append(qid)
                self._track(qid)
            self._optimize(
                max(self.free_at.values(), default=0.0), "window"
            )
            self.dispatch(self.clock.now)


class OnlineMQOScheduler:
    """Rolling-window MQO over a query arrival stream."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
        ga_config: GAConfig | None = None,
        seed: int = 0,
        max_candidates: int = 64,
        tracer: "Tracer | None" = None,
        config: OnlineConfig | None = None,
    ) -> None:
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates
        self.ga_config = ga_config or GAConfig()
        self.seed = seed
        self.max_candidates = max_candidates
        self.tracer = tracer
        self.config = config or OnlineConfig()

    def session(self, workload: "Workload", clock: Clock) -> OnlineSession:
        """A fresh clock-agnostic session over ``workload``."""
        return OnlineSession(self, workload, clock)

    # -- the event loop ----------------------------------------------------

    def run(self, workload: "Workload") -> OnlineDecision:
        """Replay the workload's arrival stream through the online loop."""
        if len(workload) == 0:
            raise OptimizationError("cannot schedule an empty workload")
        clock = SimClock()
        session = self.session(workload, clock)
        ordered = workload.sorted_by_arrival()
        session.arrivals_expected = len(ordered)
        for query in ordered:
            clock.push(
                workload.arrival_of(query.query_id), "arrival", query.query_id
            )
        while clock:
            now, tag, payload = clock.pop()
            session.handle(now, tag, payload)
        # No events left: everything admitted must drain unconditionally.
        session.drain()
        return session.decision


def replay_decisions(
    scheduler: OnlineMQOScheduler,
    workload: "Workload",
    arrivals: "Sequence[ArrivalRecord]",
    stop_accepting_at: int | None = None,
) -> OnlineSession:
    """Replay a recorded live arrival trace through a :class:`SimClock`.

    ``workload`` must contain every recorded query with its live arrival
    time; ``arrivals`` is the service's :class:`ArrivalRecord` log.  Each
    arrival is pushed only once the replayed loop has popped as many
    events as the live loop had when the submission landed, so the
    replayed heap — and therefore every admission, window and dispatch
    decision — evolves exactly as the wall run's did.

    ``stop_accepting_at`` is the live loop's pop count when its driver
    stopped accepting submissions (``QueryService`` records it at
    shutdown).  Until that count the session keeps ``accepting`` set, so
    idle windows keep rescheduling exactly as the live run's did — the
    rolling-window chain, and with it every event's heap position, is
    part of the recorded behaviour.  ``None`` means the live driver never
    accepted beyond the recorded arrivals (plain trace replay).

    Returns the finished session; compare its ``decisions`` against the
    live one's.
    """
    clock = SimClock()
    session = scheduler.session(workload, clock)
    remaining = list(arrivals)
    pops = 0
    session.accepting = stop_accepting_at is not None and pops < stop_accepting_at
    while remaining or clock:
        # Pushes scheduled between live pops replay at the same position:
        # the live handler's own pushes (made during pop N's handling)
        # landed first, arrivals with pops_before == N after — matching
        # this loop's handle-then-push ordering, so heap tie-breaking by
        # sequence number is preserved exactly.
        while remaining and remaining[0].pops_before <= pops:
            record = remaining.pop(0)
            clock.push(record.time, "arrival", record.query_id)
        if stop_accepting_at is not None and pops >= stop_accepting_at:
            session.accepting = False
        if not clock:
            break  # pragma: no cover - malformed trace (future pops_before)
        now, tag, payload = clock.pop()
        pops += 1
        session.handle(now, tag, payload)
    session.drain()
    return session
