"""Unit tests: the EXT2 load-sweep experiment (reduced scale)."""

from __future__ import annotations

import pytest

from repro.experiments.config import TpchSetup
from repro.experiments.load import LoadConfig, run_load_sweep


@pytest.fixture(scope="module")
def sweep():
    config = LoadConfig(
        setup=TpchSetup(scale=0.0005, seed=7),
        interarrival_means=(1.5, 12.0),
        approaches=("ivqp", "warehouse"),
        rounds=1,
    )
    return config, run_load_sweep(config)


class TestLoadSweep:
    def test_row_grid_complete(self, sweep):
        config, table = sweep
        assert len(table.rows) == (
            len(config.interarrival_means) * len(config.approaches)
        )

    def test_values_are_sane(self, sweep):
        _config, table = sweep
        for row in table.rows:
            _mean, _approach, iv, cl, sl = row
            assert 0.0 <= iv <= 1.0
            assert cl > 0.0
            assert sl >= 0.0

    def test_congestion_raises_ivqp_cl(self, sweep):
        _config, table = sweep
        cl = {
            row[0]: row[3] for row in table.rows if row[1] == "ivqp"
        }
        assert cl[1.5] > cl[12.0]

    def test_warehouse_cl_is_load_insensitive_here(self, sweep):
        _config, table = sweep
        cl = {
            row[0]: row[3] for row in table.rows if row[1] == "warehouse"
        }
        assert cl[1.5] < 3.0 * cl[12.0]
