"""The Data Warehouse baseline (Section 4.1).

"The data warehousing approach maintains a replica at the DSS server for
each base table at the remote servers and answers queries using these
replicas without communicating with the remote servers."  The router
therefore requires full replication of every table a query reads and
always produces the all-replica, immediate plan.
"""

from __future__ import annotations

import typing

from repro.core.enumeration import CostProvider, make_plan
from repro.core.plan import QueryPlan
from repro.core.value import DiscountRates
from repro.errors import PlanError
from repro.federation.catalog import Catalog

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery

__all__ = ["WarehouseRouter", "warehouse_router"]


class WarehouseRouter:
    """Always answer immediately from local replicas."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
    ) -> None:
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates

    def choose_plan(self, query: "DSSQuery", submitted_at: float) -> QueryPlan:
        """All tables from replicas, start now."""
        missing = [
            name for name in query.tables if not self.catalog.has_replica(name)
        ]
        if missing:
            raise PlanError(
                f"warehouse baseline needs every table replicated; "
                f"missing: {missing} (query {query.name!r})"
            )
        rates = query.rates if query.rates is not None else self.default_rates
        return make_plan(
            query,
            self.catalog,
            self.cost_provider,
            rates,
            submitted_at=submitted_at,
            start_time=submitted_at,
            remote_tables=frozenset(),
        )


def warehouse_router(catalog, cost_model, rates) -> WarehouseRouter:
    """Router factory for :func:`repro.federation.system.build_system`."""
    return WarehouseRouter(catalog, cost_model, rates)
