"""Plan execution inside the simulation.

Executes a chosen :class:`~repro.core.plan.QueryPlan` as simulation
processes: wait until the plan's start time, run the remote legs in
parallel on their sites' servers, assemble at the local federation server,
transmit the result, and record a :class:`QueryOutcome` with *realized*
latencies and information value.

Realized freshness is accounted honestly: a base table's data is as of the
moment its remote leg actually starts (queuing included), and a replica's
freshness is whatever the replica holds when local processing begins — if a
synchronization landed while the query sat in queue, the result is fresher
than planned.

Fault tolerance (only active when a
:class:`~repro.federation.faults.FaultInjector` is attached) follows an
:class:`ExecutionPolicy`: a remote leg that finds its site down waits for
recovery and retries with exponential backoff; a leg stuck in a remote
queue past ``leg_timeout`` withdraws and retries; a leg interrupted
mid-execution by an outage loses its work and retries.  When a leg
exhausts its retries the executor *fails over*: the lost site's tables are
re-planned onto their local replicas and execution resumes without
re-running legs that already finished.  Queries with no replica to fall
back on are recorded as failed outcomes (IV 0) — never silently dropped.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.core.plan import QueryPlan, VersionKind
from repro.core.value import information_value
from repro.errors import ConfigError, PlanError
from repro.federation.catalog import Catalog
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.obs import events
from repro.obs.ledger import IVLedgerEntry, VersionProvenance
from repro.obs.profile import profiled
from repro.sim.scheduler import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.enumeration import CostProvider
    from repro.federation.faults import FaultInjector
    from repro.sim.trace import Tracer

__all__ = ["ExecutionPolicy", "QueryOutcome", "PlanExecutor"]


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the executor reacts to remote-leg failures.

    Attributes
    ----------
    max_retries:
        Retries *per leg* before giving up on its site.
    retry_backoff:
        Base backoff in minutes; attempt ``k`` waits ``k × retry_backoff``
        on top of any outage-recovery wait (exponential-ish, deterministic).
    leg_timeout:
        Maximum minutes a leg may sit in a remote queue before withdrawing
        and retrying (``None`` disables queue timeouts).
    failover:
        Whether a leg that exhausts retries may be re-planned onto the
        lost tables' replicas instead of failing the query.
    """

    max_retries: int = 3
    retry_backoff: float = 0.1
    leg_timeout: float | None = None
    failover: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ConfigError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.leg_timeout is not None and self.leg_timeout <= 0:
            raise ConfigError(f"leg_timeout must be > 0, got {self.leg_timeout}")


@dataclass
class QueryOutcome:
    """Realized execution record of one query."""

    plan: QueryPlan
    submitted_at: float
    started_at: float
    completed_at: float
    data_timestamp: float
    queue_wait: float
    #: Longest queueing wait among the remote legs (minutes).
    remote_wait: float = 0.0
    #: Remote-leg retry attempts consumed across the whole execution.
    retries: int = 0
    #: Times the executor re-planned lost tables onto replicas.
    failovers: int = 0
    #: Whether any fault-handling path fired (retry, failover or failure).
    degraded: bool = False
    #: The query produced no result (no retry or failover could save it).
    failed: bool = False
    #: Phase boundaries (observability): when the last remote leg settled,
    #: when the local server granted, and when local assembly finished.
    #: For failed queries all three collapse onto ``completed_at``.
    remote_done_at: float = 0.0
    local_granted_at: float = 0.0
    local_done_at: float = 0.0

    @property
    def query(self):
        """The executed query."""
        return self.plan.query

    @property
    def computational_latency(self) -> float:
        """Realized CL: submission → result receipt."""
        return self.completed_at - self.submitted_at

    @property
    def synchronization_latency(self) -> float:
        """Realized SL: stalest data read → result receipt."""
        return max(0.0, self.completed_at - self.data_timestamp)

    @property
    def information_value(self) -> float:
        """Realized IV of the delivered report (0 for failed queries)."""
        if self.failed:
            return 0.0
        return information_value(
            self.plan.query.business_value,
            self.computational_latency,
            self.synchronization_latency,
            self.plan.rates,
        )

    def describe(self) -> str:
        """One-line summary of the outcome."""
        marks = ""
        if self.failed:
            marks = " FAILED"
        elif self.degraded:
            marks = f" degraded(retries={self.retries}, failovers={self.failovers})"
        return (
            f"{self.plan.query.name}: CL={self.computational_latency:.2f} "
            f"SL={self.synchronization_latency:.2f} "
            f"IV={self.information_value:.4f} "
            f"(wait={self.queue_wait:.2f}){marks}"
        )


class PlanExecutor:
    """Runs plans on the system's sites and collects outcomes."""

    def __init__(
        self,
        sim: Simulator,
        catalog: Catalog,
        sites: dict[int, Site],
        policy: ExecutionPolicy | None = None,
        faults: "FaultInjector | None" = None,
        cost_provider: "CostProvider | None" = None,
        tracer: "Tracer | None" = None,
        audit: bool | None = None,
    ) -> None:
        """``tracer`` enables span events; ``audit`` the IV ledger.

        ``audit`` defaults to "whenever a tracer is attached" — the ledger
        rides the trace.  Both off (the default) leaves the hot path
        bit-identical to an uninstrumented executor.
        """
        self.sim = sim
        self.catalog = catalog
        self.sites = sites
        self.policy = policy or ExecutionPolicy()
        self.faults = faults
        self.cost_provider = cost_provider
        self.tracer = tracer
        self.audit = (tracer is not None) if audit is None else audit
        self.outcomes: list[QueryOutcome] = []
        #: IV audit ledger (one entry per outcome) when ``audit`` is on.
        self.ledger: list[IVLedgerEntry] = []

    def site(self, site_id: int) -> Site:
        """Look up a site (local server under :data:`LOCAL_SITE_ID`)."""
        return self.sites[site_id]

    @profiled("executor.dispatch")
    def execute(self, plan: QueryPlan):
        """Start executing a plan; returns the driving process (joinable)."""
        return self.sim.process(self._run(plan), name=f"exec:{plan.query.name}")

    def _emit(self, kind: str, plan: QueryPlan, **detail) -> None:
        """Trace one lifecycle event for ``plan``'s query (no-op untraced)."""
        if self.tracer is not None:
            self.tracer.emit(
                kind, plan.query.name, qid=plan.query.query_id, **detail
            )

    # -- simulation processes ----------------------------------------------

    def _remote_leg(self, plan: QueryPlan, site_id: int, minutes: float, record: dict):
        """One remote leg; ``record`` reports wait/retries/freshness/status."""
        sim = self.sim
        site = self.site(site_id)
        faults = self.faults
        policy = self.policy
        attempts = 0
        self._emit(events.LEG_START, plan, site=site_id)
        while True:
            if faults is not None and faults.site_down(site_id, sim.now):
                # Down before we even connect: wait out the outage, back off.
                if attempts >= policy.max_retries:
                    record["status"] = "failover"
                    self._emit(events.LEG_EXHAUSTED, plan, site=site_id)
                    return
                attempts += 1
                record["retries"] += 1
                faults.stats.legs_stalled_on_outage += 1
                up = faults.site_up_after(site_id, sim.now)
                self._emit(
                    events.LEG_BLOCKED, plan, site=site_id, until=up,
                    attempt=attempts,
                )
                yield sim.timeout(
                    max(0.0, up - sim.now) + policy.retry_backoff * attempts
                )
                continue
            request = site.server.request()
            if policy.leg_timeout is not None:
                timer = sim.timeout(policy.leg_timeout)
                yield sim.any_of([request, timer])
                if request.granted_at is None:
                    # Timed out in queue: withdraw, back off, try again.
                    request.cancel()
                    if attempts >= policy.max_retries:
                        record["status"] = "failover"
                        self._emit(events.LEG_EXHAUSTED, plan, site=site_id)
                        return
                    attempts += 1
                    record["retries"] += 1
                    self._emit(
                        events.LEG_RETRY, plan, site=site_id,
                        reason="queue-timeout", attempt=attempts,
                    )
                    yield sim.timeout(policy.retry_backoff * attempts)
                    continue
            else:
                yield request
            granted = sim.now
            record["wait"] = max(record["wait"], request.wait_time)
            self._emit(
                events.LEG_GRANTED, plan, site=site_id, wait=request.wait_time,
            )
            service = minutes
            if faults is not None:
                service += faults.leg_penalty(site_id, granted, minutes)
                outage = faults.next_outage_after(site_id, granted)
                if outage < granted + service:
                    # The site fails under us: work until the outage hits,
                    # then the partial work is lost.
                    faults.stats.legs_interrupted += 1
                    if outage > granted:
                        yield sim.timeout(outage - granted)
                    site.server.release(request)
                    if attempts >= policy.max_retries:
                        record["status"] = "failover"
                        self._emit(events.LEG_EXHAUSTED, plan, site=site_id)
                        return
                    attempts += 1
                    record["retries"] += 1
                    self._emit(
                        events.LEG_RETRY, plan, site=site_id,
                        reason="interrupted", attempt=attempts,
                    )
                    up = faults.site_up_after(site_id, sim.now)
                    yield sim.timeout(
                        max(0.0, up - sim.now) + policy.retry_backoff * attempts
                    )
                    continue
            try:
                yield sim.timeout(service)
            finally:
                site.server.release(request)
            record["freshness"] = granted  # base data is as-of leg start
            record["status"] = "ok"
            self._emit(events.LEG_DONE, plan, site=site_id, freshness=granted)
            return

    def _failover_plan(
        self, current: QueryPlan, lost_sites: list[int]
    ) -> QueryPlan | None:
        """Re-plan the lost sites' base tables onto their replicas."""
        if not self.policy.failover or self.cost_provider is None:
            return None
        # Imported lazily: enumeration sits above the federation package.
        from repro.core.enumeration import make_plan
        lost = set(lost_sites)
        lost_tables = {
            version.table
            for version in current.versions
            if version.kind is VersionKind.BASE
            and self.catalog.table(version.table).site in lost
        }
        if not lost_tables:
            return None
        if any(not self.catalog.has_replica(name) for name in lost_tables):
            return None  # no fallback copy exists; the query is lost
        try:
            return make_plan(
                current.query,
                self.catalog,
                self.cost_provider,
                current.rates,
                current.submitted_at,
                max(self.sim.now, current.submitted_at),
                current.remote_tables - lost_tables,
            )
        except PlanError:
            return None

    def _finish(
        self, outcome: QueryOutcome, versions: tuple[VersionProvenance, ...]
    ) -> QueryOutcome:
        """Record the outcome and, when auditing, its ledger entry."""
        self.outcomes.append(outcome)
        if self.audit:
            plan = outcome.plan
            entry = IVLedgerEntry(
                query=plan.query.name,
                query_id=plan.query.query_id,
                business_value=plan.query.business_value,
                lambda_cl=plan.rates.computational,
                lambda_sl=plan.rates.synchronization,
                submitted_at=outcome.submitted_at,
                started_at=outcome.started_at,
                remote_done_at=outcome.remote_done_at,
                local_granted_at=outcome.local_granted_at,
                local_done_at=outcome.local_done_at,
                completed_at=outcome.completed_at,
                data_timestamp=outcome.data_timestamp,
                queue_wait=outcome.queue_wait,
                remote_wait=outcome.remote_wait,
                retries=outcome.retries,
                failovers=outcome.failovers,
                degraded=outcome.degraded,
                failed=outcome.failed,
                reported_iv=outcome.information_value,
                versions=versions,
            )
            self.ledger.append(entry)
            if self.tracer is not None:
                # The ledger detail is exactly ``entry.to_dict()`` (no qid
                # key) so the checker can round-trip it via ``from_dict``.
                self.tracer.emit(events.LEDGER, plan.query.name, **entry.to_dict())
        return outcome

    def _run(self, plan: QueryPlan):
        sim = self.sim
        submitted_at = plan.submitted_at
        # Delayed plans wait for their scheduled start (e.g. a sync point).
        if plan.start_time > sim.now:
            yield sim.timeout(plan.start_time - sim.now)
        started_at = sim.now
        self._emit(events.EXEC_START, plan, scheduled=plan.start_time)

        # Remote legs run in parallel on their sites; a site whose leg
        # exhausts its retries triggers a failover re-plan, and legs that
        # already finished are never re-run.
        current = plan
        completed: dict[int, dict] = {}
        retries = 0
        failovers = 0
        remote_wait = 0.0
        failed = False
        while True:
            records: list[dict] = []
            legs = []
            for site_id, minutes in current.cost.site_legs:
                if site_id in completed:
                    continue
                record = {
                    "site": site_id,
                    "status": "pending",
                    "wait": 0.0,
                    "retries": 0,
                    "freshness": None,
                }
                records.append(record)
                legs.append(
                    sim.process(
                        self._remote_leg(current, site_id, minutes, record),
                        name=f"leg:{current.query.name}@{site_id}",
                    )
                )
            if legs:
                yield sim.all_of(legs)
            for record in records:
                retries += record["retries"]
                remote_wait = max(remote_wait, record["wait"])
                if record["status"] == "ok":
                    completed[record["site"]] = record
            lost = [r["site"] for r in records if r["status"] != "ok"]
            if not lost:
                break
            replacement = self._failover_plan(current, lost)
            if replacement is None:
                failed = True
                break
            failovers += 1
            self._emit(events.FAILOVER, current, lost=sorted(lost))
            current = replacement

        if failed:
            completed_at = sim.now
            self._emit(
                events.FAILED, current, retries=retries, failovers=failovers,
            )
            outcome = QueryOutcome(
                plan=current,
                submitted_at=submitted_at,
                started_at=started_at,
                completed_at=completed_at,
                data_timestamp=started_at,
                queue_wait=0.0,
                remote_wait=remote_wait,
                retries=retries,
                failovers=failovers,
                degraded=True,
                failed=True,
                remote_done_at=completed_at,
                local_granted_at=completed_at,
                local_done_at=completed_at,
            )
            return self._finish(outcome, ())

        remote_done_at = sim.now
        self._emit(events.REMOTE_DONE, current, legs=len(completed))

        # Local assembly / replica scans at the federation server.  The
        # request is opened at the remote-done instant, so its wait time is
        # exactly ``local_granted_at − remote_done_at`` — the ledger's
        # queue-wait invariant holds bit-for-bit.
        local = self.site(LOCAL_SITE_ID)
        request = local.server.request()
        yield request
        local_start = sim.now
        self._emit(events.LOCAL_GRANTED, current, wait=request.wait_time)
        try:
            yield sim.timeout(current.cost.local_minutes)
        finally:
            local.server.release(request)
        local_done_at = sim.now
        self._emit(events.LOCAL_DONE, current)

        if current.cost.transmission > 0:
            yield sim.timeout(current.cost.transmission)
        completed_at = sim.now

        # Realized freshness per version kind: base tables are as-of their
        # leg's actual start; replicas hold whatever synchronizations have
        # actually been applied by local processing start.
        freshness: list[float] = []
        provenance: list[VersionProvenance] = []
        for version in current.versions:
            if version.kind is VersionKind.BASE:
                site_id = self.catalog.table(version.table).site
                record = completed.get(site_id)
                realized = (
                    record["freshness"] if record is not None else version.freshness
                )
                freshness.append(realized)
                if self.audit:
                    provenance.append(VersionProvenance(
                        table=version.table,
                        kind="base",
                        site=site_id,
                        planned_freshness=version.freshness,
                        realized_freshness=realized,
                        last_sync_at=None,
                    ))
            else:
                replica = self.catalog.replica(version.table)
                realized = replica.realized_freshness_at(local_start)
                freshness.append(realized)
                if self.audit:
                    provenance.append(VersionProvenance(
                        table=version.table,
                        kind="replica",
                        site=None,
                        planned_freshness=version.freshness,
                        realized_freshness=realized,
                        last_sync_at=realized,
                    ))

        data_timestamp = min(freshness) if freshness else started_at
        outcome = QueryOutcome(
            plan=current,
            submitted_at=submitted_at,
            started_at=started_at,
            completed_at=completed_at,
            data_timestamp=data_timestamp,
            # Measured directly on the local request — never inferred by
            # subtracting estimated leg minutes from wall-clock.
            queue_wait=request.wait_time,
            remote_wait=remote_wait,
            retries=retries,
            failovers=failovers,
            degraded=retries > 0 or failovers > 0,
            remote_done_at=remote_done_at,
            local_granted_at=local_start,
            local_done_at=local_done_at,
        )
        self._emit(
            events.COMPLETE, current,
            iv=outcome.information_value,
            cl=outcome.computational_latency,
            sl=outcome.synchronization_latency,
        )
        return self._finish(outcome, tuple(provenance))
