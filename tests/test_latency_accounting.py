"""Regression tests for the latency-accounting bugfixes.

Each test here failed on the pre-fix code:

* ``NetworkModel.transfer_time`` returned 0.0 for zero-byte payloads,
  skipping the connection latency an empty result still pays, and
  allocated a fresh default ``SiteLink`` per unconfigured-site lookup.
* ``PlanExecutor`` inferred the local queue wait by subtracting the plan's
  *estimated* max leg minutes from wall-clock time, so remote-site
  contention (legs waiting in a remote queue) was misattributed to the
  local server — and the clamp at zero hid negative artifacts.
* ``ReplicationManager._drive`` re-derived "the previous completion" with
  a ``now - 1e-9`` epsilon lookup, so completions closer together than the
  epsilon double-counted the staleness gap.
"""

from __future__ import annotations

import pytest

from repro.core.enumeration import make_plan
from repro.core.value import DiscountRates
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import StaticCostProvider
from repro.federation.executor import PlanExecutor
from repro.federation.network import NetworkModel
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.federation.sync import ReplicationManager
from repro.sim.scheduler import Simulator
from repro.workload.query import DSSQuery

RATES = DiscountRates(0.01, 0.01)


class TestZeroByteTransfer:
    def test_zero_row_result_still_pays_base_latency(self):
        # A zero-byte (empty) result is still a round trip over the link.
        network = NetworkModel(base_latency=0.25, bandwidth=1_000.0)
        assert network.transfer_time(0.0) == pytest.approx(0.25)
        assert network.transfer_time(0.0, site=3) == pytest.approx(0.25)

    def test_transfer_time_is_latency_plus_bytes_over_bandwidth(self):
        network = NetworkModel(base_latency=0.25, bandwidth=1_000.0)
        assert network.transfer_time(500.0) == pytest.approx(0.75)

    def test_default_site_link_is_cached(self):
        # Unconfigured sites share one default SiteLink instead of
        # allocating a fresh one per lookup.
        network = NetworkModel()
        assert network.link(1) is network.link(2)
        assert network.link(1) is network.link(1)


def _executor_world():
    """One remote table at a capacity-1 site, generous local capacity."""
    sim = Simulator()
    catalog = Catalog()
    catalog.add_table(TableDef("t", site=0, row_count=100))
    sites = {
        LOCAL_SITE_ID: Site(sim, LOCAL_SITE_ID, capacity=4),
        0: Site(sim, 0, capacity=1),
    }
    provider = StaticCostProvider(
        catalog, by_remote_count={1: 4.0}, remote_leg_fraction=0.75
    )
    executor = PlanExecutor(sim, catalog, sites)
    return sim, catalog, provider, executor


class TestQueueWaitAttribution:
    def test_remote_contention_not_misattributed_to_local_queue(self):
        # Two queries contend at the capacity-1 remote site; the local
        # server is idle.  The old executor subtracted the *estimated* leg
        # minutes from wall-clock and booked the remote wait as local
        # queue_wait; the direct measurement must book it as remote_wait.
        sim, catalog, provider, executor = _executor_world()
        plans = []
        for qid in (1, 2):
            query = DSSQuery(query_id=qid, name=f"q{qid}", tables=("t",))
            plans.append(
                make_plan(
                    query, catalog, provider, RATES, 0.0, 0.0, frozenset({"t"})
                )
            )
        for plan in plans:
            executor.execute(plan)
        sim.run(until=50.0)
        assert len(executor.outcomes) == 2
        first, second = sorted(executor.outcomes, key=lambda o: o.completed_at)
        leg_minutes = 4.0 * 0.75
        assert first.queue_wait == 0.0
        assert first.remote_wait == 0.0
        # The second query waited a full leg at the remote site — and not
        # one second of it at the local server.
        assert second.remote_wait == pytest.approx(leg_minutes)
        assert second.queue_wait == 0.0

    def test_local_contention_still_measured(self):
        # Queue wait still reflects genuine local-server contention.
        sim = Simulator()
        catalog = Catalog()
        catalog.add_table(TableDef("t", site=0, row_count=100))
        catalog.add_replica("t", FixedSyncSchedule([1.0], tail_period=50.0))
        sites = {
            LOCAL_SITE_ID: Site(sim, LOCAL_SITE_ID, capacity=1),
            0: Site(sim, 0, capacity=1),
        }
        provider = StaticCostProvider(catalog, by_remote_count={0: 3.0, 1: 3.0})
        executor = PlanExecutor(sim, catalog, sites)
        for qid in (1, 2):
            query = DSSQuery(query_id=qid, name=f"q{qid}", tables=("t",))
            plan = make_plan(
                query, catalog, provider, RATES, 0.0, 0.0, frozenset()
            )
            executor.execute(plan)
        sim.run(until=50.0)
        waits = sorted(o.queue_wait for o in executor.outcomes)
        assert waits[0] == 0.0
        assert waits[1] == pytest.approx(3.0)


class TestSyncDriverStrictlyIncreasing:
    def make(self, times, tail_period):
        sim = Simulator()
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=10))
        catalog.add_replica(
            "a", FixedSyncSchedule(list(times), tail_period=tail_period)
        )
        manager = ReplicationManager(sim, catalog)
        return sim, catalog, manager

    def test_near_duplicate_completions_fire_once_each(self):
        # Two completions 5e-10 apart — closer than the old epsilon lookup
        # (now - 1e-9), which re-derived "previous completion" as the one
        # *before both* and double-counted the 5-minute staleness gap.
        sim, catalog, manager = self.make([5.0, 5.0 + 5e-10], tail_period=100.0)
        manager.start()
        sim.run(until=10.0)
        assert manager.total_syncs == 2
        assert catalog.replica("a").sync_count == 2
        first, second = manager.staleness.values
        assert first == pytest.approx(5.0)
        assert second < 1e-6  # the old epsilon lookup reported ~5.0 again
        assert manager.staleness.total < 6.0

    def test_regular_schedule_gaps_unchanged(self):
        sim, _catalog, manager = self.make([2.0, 4.0, 6.0], tail_period=100.0)
        manager.start()
        sim.run(until=7.0)
        assert manager.total_syncs == 3
        assert manager.staleness.mean == pytest.approx(2.0)

    def test_listeners_see_each_completion_once(self):
        sim, _catalog, manager = self.make([3.0, 3.0 + 5e-10], tail_period=100.0)
        seen = []
        manager.add_listener(lambda replica, now: seen.append(now))
        manager.start()
        sim.run(until=10.0)
        assert len(seen) == 2
        assert seen[0] <= seen[1]
