"""Property tests: crash/resume equivalence over random schedules.

The durable layer's headline claim — kill a journaled run at *any* byte,
resume from disk, and the merged run is bit-equal to an uninterrupted
one — must hold for every workload shape the online scheduler serves,
not just the golden fixture.  Hypothesis drives the claim across random
steady/burst/pressure schedules, random crash offsets, and both recovery
paths (scratch replay and snapshot + tail):

* the resumed decision log, window records, stats and IV ledger match
  the reference run bit-for-bit (``runs_equivalent``),
* every resumed ledger entry still satisfies
  ``recompute_iv() == reported_iv`` exactly,
* the resumed journal itself audits clean through ``verify_journal``
  (crash-during-resume composes by induction),
* with scratch replay, the regenerated-plus-continued trace passes every
  :class:`TraceChecker` rule — recovery rebuilds a trace the live run
  could have emitted, not merely equivalent totals.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.value import DiscountRates
from repro.durable import crash_and_resume, journaled_run, runs_equivalent, verify_journal
from repro.federation.costmodel import CostModel, CostParameters
from repro.mqo.ga import GAConfig
from repro.mqo.online import OnlineConfig, OnlineMQOScheduler
from repro.obs import TraceChecker
from repro.sim.trace import Tracer
from repro.workload.query import DSSQuery, Workload

from tests.test_mqo_scheduling import build_catalog

pytestmark = pytest.mark.slow

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TABLE_NAMES = [f"t{index}" for index in range(6)]


@st.composite
def crash_scenarios(draw):
    """A random schedule, scheduler config, crash offset and snapshot cadence."""
    pattern = draw(st.sampled_from(["steady", "burst", "pressure"]))
    count = draw(st.integers(min_value=3, max_value=6))
    if pattern == "steady":
        gap = draw(st.floats(min_value=0.3, max_value=1.5, allow_nan=False))
    elif pattern == "burst":
        gap = 0.01  # everything lands (nearly) at once
    else:  # pressure: arrivals outpace the window
        gap = draw(st.floats(min_value=0.05, max_value=0.2, allow_nan=False))
    workload = Workload()
    for index in range(count):
        tables = tuple(draw(st.lists(
            st.sampled_from(TABLE_NAMES), min_size=1, max_size=3, unique=True,
        )))
        workload.add(
            DSSQuery(
                query_id=index + 1,
                name=f"q{index + 1}",
                tables=tables,
                business_value=draw(
                    st.floats(min_value=0.5, max_value=4.0, allow_nan=False)
                ),
                base_work=draw(st.floats(
                    min_value=2_000.0, max_value=20_000.0, allow_nan=False
                )),
            ),
            arrival=1.0 + index * gap,
        )
    config = OnlineConfig(
        window=draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False)),
        max_pending=2 if pattern == "pressure" else draw(
            st.integers(min_value=2, max_value=count)
        ),
        iv_floor=draw(st.floats(min_value=0.0, max_value=0.2, allow_nan=False)),
        eager_start=draw(st.booleans()),
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    generations = draw(st.integers(min_value=2, max_value=6))
    fraction = draw(st.floats(min_value=0.02, max_value=0.98, allow_nan=False))
    snapshot_every = draw(st.sampled_from([0, 2, 3]))
    return workload, config, seed, generations, fraction, snapshot_every


def scheduler_factory(config, seed, generations, box=None):
    """A fresh-scheduler factory; with ``box``, each scheduler is traced.

    The tracer's clock reads the :class:`SimClock` the harness hands the
    session — captured by wrapping :meth:`scheduler.session` — so traced
    sim runs stamp records with simulation time, like the system driver.
    """

    def make():
        catalog = build_catalog()
        tracer = None
        if box is not None:
            # Explicit None check: an empty SimClock is falsy, but its
            # ``now`` (time of the final pop) is exactly the stamp the
            # drain-phase emits need.
            tracer = Tracer(
                lambda: 0.0 if box.get("clock") is None else box["clock"].now
            )
        scheduler = OnlineMQOScheduler(
            catalog,
            CostModel(catalog, params=CostParameters()),
            DiscountRates.symmetric(0.1),
            ga_config=GAConfig(generations=generations),
            seed=seed,
            tracer=tracer,
            config=config,
        )
        if box is not None:
            original = scheduler.session
            def capture(workload, clock):
                box["clock"] = clock
                return original(workload, clock)
            scheduler.session = capture
            box["scheduler"] = scheduler
        return scheduler

    return make


class TestCrashResumeEquivalenceProperty:
    @SETTINGS
    @given(crash_scenarios())
    def test_random_schedule_random_crash_resumes_bit_equal(self, drawn):
        workload, config, seed, generations, fraction, snapshot_every = drawn
        make = scheduler_factory(config, seed, generations)
        with tempfile.TemporaryDirectory() as tmp:
            ref_path = Path(tmp) / "reference.journal"
            reference = journaled_run(make(), workload, ref_path)
            size = ref_path.stat().st_size
            crash_path = Path(tmp) / "crash.journal"
            box: dict = {}
            resumed = crash_and_resume(
                scheduler_factory(config, seed, generations, box=box),
                workload,
                crash_path,
                crash_after_bytes=max(1, int(size * fraction)),
                snapshot_every=snapshot_every,
            )

            report = runs_equivalent(reference, resumed)
            assert report["equal"], report["differences"]
            for entry in resumed.ledgers:
                assert entry.recompute_iv() == entry.reported_iv

            # Scratch replay regenerates the whole trace; the merged
            # (replayed + continued) stream must satisfy every checker
            # rule, exactly as a live uninterrupted trace would.
            if snapshot_every == 0 and resumed.resumed_at_pops is not None:
                violations = TraceChecker().check(
                    box["scheduler"].tracer.records
                )
                assert violations == []

            audit = verify_journal(crash_path, make)
            assert audit["ok"], audit["mismatches"]

    @SETTINGS
    @given(crash_scenarios())
    def test_tracing_never_perturbs_the_resumed_run(self, drawn):
        # Durability is pure bookkeeping twice over: a traced resumed run
        # and an untraced one make identical decisions.
        workload, config, seed, generations, fraction, snapshot_every = drawn
        with tempfile.TemporaryDirectory() as tmp:
            ref_path = Path(tmp) / "reference.journal"
            reference = journaled_run(
                scheduler_factory(config, seed, generations)(),
                workload, ref_path,
            )
            size = ref_path.stat().st_size
            plain = crash_and_resume(
                scheduler_factory(config, seed, generations),
                workload, Path(tmp) / "plain.journal",
                crash_after_bytes=max(1, int(size * fraction)),
                snapshot_every=snapshot_every,
            )
            traced = crash_and_resume(
                scheduler_factory(config, seed, generations, box={}),
                workload, Path(tmp) / "traced.journal",
                crash_after_bytes=max(1, int(size * fraction)),
                snapshot_every=snapshot_every,
            )
            assert runs_equivalent(reference, plain)["equal"]
            assert runs_equivalent(plain, traced)["equal"]
