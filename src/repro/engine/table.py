"""In-memory tables for the mini relational engine."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.engine.schema import DType, TableSchema
from repro.errors import EngineError

__all__ = ["Table"]

_CHECKERS = {
    DType.INT: lambda v: isinstance(v, int) and not isinstance(v, bool),
    DType.FLOAT: lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    DType.STR: lambda v: isinstance(v, str),
    DType.DATE: lambda v: isinstance(v, int) and not isinstance(v, bool),
}


class Table:
    """A row-oriented in-memory table."""

    def __init__(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence] | None = None,
        validate: bool = True,
    ) -> None:
        self.schema = schema
        self._rows: list[tuple] = []
        if rows is not None:
            for row in rows:
                self.insert(row, validate=validate)

    # -- mutation ----------------------------------------------------------

    def insert(self, row: Sequence, validate: bool = True) -> None:
        """Append one row (a sequence aligned with the schema columns)."""
        values = tuple(row)
        if len(values) != len(self.schema.columns):
            raise EngineError(
                f"row arity {len(values)} != schema arity "
                f"{len(self.schema.columns)} for table {self.schema.name!r}"
            )
        if validate:
            for value, column in zip(values, self.schema.columns):
                if value is None:
                    continue  # NULLs are allowed in every column
                if not _CHECKERS[column.dtype](value):
                    raise EngineError(
                        f"value {value!r} is not a {column.dtype} "
                        f"(column {column.name!r} of {self.schema.name!r})"
                    )
        self._rows.append(values)

    def extend(self, rows: Iterable[Sequence], validate: bool = True) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row, validate=validate)

    # -- access ------------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of rows currently stored."""
        return len(self._rows)

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint."""
        return self.row_count * self.schema.row_width_bytes

    def rows(self) -> Iterator[tuple]:
        """Iterate over raw row tuples."""
        return iter(self._rows)

    def column_values(self, name: str) -> list:
        """All values of one column, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self._rows]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.schema.name!r}, rows={self.row_count})"
