"""Router factory for the paper's IVQP approach."""

from __future__ import annotations

from repro.core.optimizer import IVQPOptimizer

__all__ = ["ivqp_router"]


def ivqp_router(catalog, cost_model, rates) -> IVQPOptimizer:
    """Build the information value-driven router (Section 3.1)."""
    return IVQPOptimizer(catalog, cost_model, rates)
