"""Unit tests: business-value policies and QoS synchronization planning."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.qos import (
    audit_staleness,
    schedules_for_staleness_bounds,
)
from repro.sim.rng import RandomSource
from repro.workload.business import POLICIES, assign_business_values
from repro.workload.query import DSSQuery


def make_queries() -> list[DSSQuery]:
    return [
        DSSQuery(query_id=1, name="narrow", tables=("a",)),
        DSSQuery(query_id=2, name="medium", tables=("a", "b", "c")),
        DSSQuery(query_id=3, name="wide", tables=tuple("abcdefgh")),
    ]


class TestBusinessValues:
    def test_uniform_policy(self):
        valued = assign_business_values(make_queries(), "uniform", scale=3.0)
        assert all(query.business_value == 3.0 for query in valued)

    def test_by_footprint_monotone_in_width(self):
        valued = assign_business_values(make_queries(), "by_footprint")
        values = {query.name: query.business_value for query in valued}
        assert values["narrow"] < values["medium"] < values["wide"]

    def test_pareto_is_heavy_tailed_and_positive(self):
        queries = [
            DSSQuery(query_id=i, name=f"q{i}", tables=("a",))
            for i in range(300)
        ]
        valued = assign_business_values(queries, "pareto", seed=3)
        values = sorted(q.business_value for q in valued)
        assert all(value >= 1.0 - 1e-9 for value in values)
        top_share = sum(values[-30:]) / sum(values)
        assert top_share > 0.3  # top 10% carries an outsized share

    def test_originals_untouched(self):
        queries = make_queries()
        assign_business_values(queries, "by_footprint")
        assert all(query.business_value == 1.0 for query in queries)

    def test_deterministic_given_seed(self):
        queries = make_queries()
        a = assign_business_values(queries, "pareto", seed=7)
        b = assign_business_values(queries, "pareto", seed=7)
        assert [q.business_value for q in a] == [q.business_value for q in b]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            assign_business_values(make_queries(), "bogus")
        with pytest.raises(WorkloadError):
            assign_business_values(make_queries(), "uniform", scale=0.0)
        with pytest.raises(WorkloadError):
            assign_business_values(make_queries(), "pareto", pareto_alpha=0.0)

    def test_policy_registry(self):
        assert set(POLICIES) == {"uniform", "by_footprint", "pareto"}


class TestQosSchedules:
    def test_periods_equal_bounds(self):
        schedules = schedules_for_staleness_bounds({"a": 5.0, "b": 2.0})
        a_times = schedules["a"].completions_between(0.0, 20.0)
        gaps = [t2 - t1 for t1, t2 in zip(a_times, a_times[1:])]
        assert all(gap == pytest.approx(5.0) for gap in gaps)
        b_times = schedules["b"].completions_between(0.0, 20.0)
        assert len(b_times) > len(a_times)

    def test_stagger_with_source(self):
        source = RandomSource(3, "qos")
        schedules = schedules_for_staleness_bounds(
            {"a": 5.0, "b": 5.0}, source=source
        )
        first_a = schedules["a"].next_completion_after(0.0)
        first_b = schedules["b"].next_completion_after(0.0)
        assert first_a != first_b

    def test_validation(self):
        with pytest.raises(ConfigError):
            schedules_for_staleness_bounds({})
        with pytest.raises(ConfigError):
            schedules_for_staleness_bounds({"a": 0.0})


class TestStalenessAudit:
    def make_catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.add_table(TableDef("good", site=0, row_count=10))
        catalog.add_table(TableDef("bad", site=0, row_count=10))
        catalog.add_replica("good", FixedSyncSchedule([2.0, 4.0, 6.0, 8.0]))
        catalog.add_replica("bad", FixedSyncSchedule([2.0, 9.0]))
        return catalog

    def test_compliant_replica_passes(self):
        catalog = self.make_catalog()
        audits = audit_staleness(
            catalog, {"good": 2.5, "bad": 2.5}, horizon=10.0
        )
        by_name = {audit.table: audit for audit in audits}
        assert by_name["good"].compliant
        assert by_name["good"].worst_gap == pytest.approx(2.0)
        assert not by_name["bad"].compliant
        assert by_name["bad"].worst_gap == pytest.approx(7.0)

    def test_counts_syncs(self):
        catalog = self.make_catalog()
        # The fixed schedule extends by its tail period (2.0), so the
        # horizon of 10 sees completions at 2, 4, 6, 8 and 10.
        audits = audit_staleness(catalog, {"good": 5.0}, 10.0, tables=["good"])
        assert audits[0].sync_count == 5

    def test_tail_gap_to_horizon_counts(self):
        catalog = Catalog()
        catalog.add_table(TableDef("t", site=0, row_count=1))
        catalog.add_replica("t", FixedSyncSchedule([1.0], tail_period=100.0))
        audits = audit_staleness(catalog, {"t": 5.0}, horizon=20.0)
        assert audits[0].worst_gap == pytest.approx(19.0)
        assert not audits[0].compliant

    def test_qos_schedules_pass_their_own_audit(self):
        bounds = {"x": 3.0, "y": 7.0}
        catalog = Catalog()
        for name in bounds:
            catalog.add_table(TableDef(name, site=0, row_count=1))
        schedules = schedules_for_staleness_bounds(
            bounds, source=RandomSource(1, "q")
        )
        for name, schedule in schedules.items():
            catalog.add_replica(name, schedule)
        audits = audit_staleness(catalog, bounds, horizon=50.0)
        assert all(audit.compliant for audit in audits)

    def test_validation(self):
        catalog = self.make_catalog()
        with pytest.raises(ConfigError):
            audit_staleness(catalog, {"good": 1.0}, horizon=0.0)
        with pytest.raises(ConfigError):
            audit_staleness(catalog, {}, horizon=5.0, tables=["good"])
        catalog.add_table(TableDef("plain", site=0, row_count=1))
        with pytest.raises(ConfigError):
            audit_staleness(catalog, {"plain": 1.0}, 5.0, tables=["plain"])
