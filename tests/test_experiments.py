"""Integration tests: experiment configs and reduced-size figure runs.

These run the same code paths as the benchmark harness at very small scale,
asserting the *shapes* the paper reports rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.core.value import DiscountRates
from repro.errors import ConfigError
from repro.experiments.config import (
    FQ_FS_RATIOS,
    LAMBDA_COMBOS,
    SyntheticSetup,
    TpchSetup,
    sync_interval_for_ratio,
)
from repro.experiments.fig4_walkthrough import Fig4Config, run_fig4
from repro.experiments.fig6 import select_mid_cost_queries
from repro.experiments.runner import APPROACHES, run_single_queries, run_stream


@pytest.fixture(scope="module")
def setup() -> TpchSetup:
    return TpchSetup(scale=0.0005, seed=7)


class TestConfig:
    def test_ratio_table_matches_paper(self):
        assert set(FQ_FS_RATIOS) == {"1:0.1", "1:1", "1:10", "1:20"}
        assert len(LAMBDA_COMBOS) == 4

    def test_sync_interval_inverse_of_ratio(self):
        assert sync_interval_for_ratio(10.0) == pytest.approx(1.0)
        assert sync_interval_for_ratio(0.1) == pytest.approx(100.0)
        with pytest.raises(ConfigError):
            sync_interval_for_ratio(0.0)

    def test_tpch_setup_has_12_tables(self, setup):
        assert len(setup.table_specs()) == 12

    def test_tpch_replication_plans(self, setup):
        ivqp = setup.system_config(
            "ivqp", DiscountRates(0.01, 0.01), 1.0
        )
        partial = setup.system_config(
            "ivqp-partial", DiscountRates(0.01, 0.01), 1.0
        )
        fed = setup.system_config(
            "federation", DiscountRates(0.01, 0.01), 1.0
        )
        wh = setup.system_config(
            "warehouse", DiscountRates(0.01, 0.01), 1.0
        )
        assert len(ivqp.replicated) == 12
        assert len(partial.replicated) == 5
        assert fed.replicated == []
        assert len(wh.replicated) == 12
        with pytest.raises(ConfigError):
            setup.system_config("bogus", DiscountRates(0.01, 0.01), 1.0)

    def test_synthetic_setup_placements(self):
        skewed = SyntheticSetup(
            num_tables=24, num_sites=4, placement="skewed", seed=2
        )
        placement = skewed.placement_map()
        from collections import Counter

        counts = Counter(placement.values())
        assert counts[0] >= counts.get(1, 0) >= counts.get(2, 0)

        uniform = SyntheticSetup(
            num_tables=24, num_sites=4, placement="uniform", seed=2
        )
        assert set(uniform.placement_map().values()) <= {0, 1, 2, 3}

    def test_mid_cost_query_selection(self, setup):
        selected = select_mid_cost_queries(setup, count=15)
        assert len(selected) == 15
        rows = setup.instance.row_counts

        def footprint(query):
            return sum(rows[name] for name in query.tables)

        all_queries = setup.queries()
        cheapest = min(all_queries, key=footprint)
        priciest = max(all_queries, key=footprint)
        names = {query.name for query in selected}
        assert cheapest.name not in names
        assert priciest.name not in names


class TestFig4:
    def test_walkthrough_reproduces_paper_numbers(self):
        outcome = run_fig4(Fig4Config())
        assert outcome.scatter_iv == pytest.approx(0.9**20)
        assert outcome.initial_bound == pytest.approx(31.0)
        assert outcome.chosen.information_value == pytest.approx(
            outcome.oracle.information_value
        )
        assert outcome.chosen.information_value > outcome.scatter_iv
        assert outcome.diagnostics.bound_tightenings >= 1


class TestRunners:
    def test_unknown_approach_rejected(self, setup):
        config = setup.system_config(
            "federation", DiscountRates(0.01, 0.01), 1.0
        )
        with pytest.raises(ConfigError):
            run_stream(config, "bogus", setup.queries()[:2], 10.0)

    def test_run_stream_aggregates(self, setup):
        config = setup.system_config(
            "federation", DiscountRates(0.01, 0.01), 1.0
        )
        result = run_stream(
            config, "federation", setup.queries()[:4],
            mean_interarrival=30.0, rounds=2,
        )
        assert len(result.outcomes) == 8
        assert 0.0 < result.mean_iv <= 1.0
        assert set(result.per_query_cl) == {q.name for q in setup.queries()[:4]}

    def test_run_single_queries_isolates_each(self, setup):
        config = setup.system_config(
            "warehouse", DiscountRates(0.01, 0.01), 1.0
        )
        queries = setup.queries()[:3]
        result = run_single_queries(config, "warehouse", queries)
        assert len(result.outcomes) == 3
        assert all(outcome.queue_wait == 0.0 for outcome in result.outcomes)

    def test_approach_registry_covers_all(self):
        assert set(APPROACHES) == {
            "ivqp", "ivqp-partial", "federation", "warehouse"
        }

    def test_reissue_stream_round_trips_every_field(self):
        # Regression: the old re-id helper copied DSSQuery fields one by
        # one, silently dropping any field added to the dataclass later.
        # dataclasses.replace must preserve everything except query_id.
        import dataclasses

        from repro.experiments.runner import reissue_stream
        from repro.workload.query import DSSQuery

        query = DSSQuery(
            query_id=42,
            name="full",
            tables=("a", "b"),
            business_value=2.5,
            rates=DiscountRates(0.02, 0.07),
            base_work=1234.5,
        )
        stream = reissue_stream([query], rounds=3)
        assert [q.query_id for q in stream] == [1, 2, 3]
        for copy in stream:
            for spec in dataclasses.fields(DSSQuery):
                if spec.name == "query_id":
                    continue
                assert getattr(copy, spec.name) == getattr(query, spec.name)

    def test_reissue_stream_rejects_zero_rounds(self):
        from repro.experiments.runner import reissue_stream

        with pytest.raises(ConfigError):
            reissue_stream([], rounds=0)


class TestPaperShapesSmall:
    """Reduced-size versions of the headline comparisons."""

    @pytest.fixture(scope="class")
    def tiny(self) -> TpchSetup:
        return TpchSetup(scale=0.0005, seed=7)

    def run_three(self, tiny, ratio_multiplier, rates):
        interval = sync_interval_for_ratio(ratio_multiplier)
        results = {}
        for approach in ("ivqp", "federation", "warehouse"):
            config = tiny.system_config(approach, rates, interval)
            results[approach] = run_stream(
                config, approach, tiny.queries(),
                mean_interarrival=10.0, rounds=1,
            )
        return results

    def test_ivqp_dominates_both_baselines_at_1_10(self, tiny):
        results = self.run_three(tiny, 10.0, DiscountRates(0.05, 0.05))
        assert results["ivqp"].mean_iv >= results["federation"].mean_iv - 1e-6
        assert results["ivqp"].mean_iv >= results["warehouse"].mean_iv - 1e-6

    def test_warehouse_improves_with_sync_rate(self, tiny):
        rates = DiscountRates(0.01, 0.01)
        slow = self.run_three(tiny, 0.1, rates)["warehouse"].mean_iv
        fast = self.run_three(tiny, 20.0, rates)["warehouse"].mean_iv
        assert fast > slow

    def test_warehouse_has_lowest_cl_federation_highest(self, tiny):
        results = self.run_three(tiny, 10.0, DiscountRates(0.01, 0.01))
        assert results["warehouse"].mean_cl < results["ivqp"].mean_cl + 1e-9
        assert results["ivqp"].mean_cl <= results["federation"].mean_cl + 1e-9

    def test_ivqp_sl_at_most_warehouse_sl_per_query(self, tiny):
        rates = DiscountRates(0.01, 0.01)
        interval = sync_interval_for_ratio(10.0)
        queries = select_mid_cost_queries(tiny, count=8)
        ivqp = run_single_queries(
            tiny.system_config("ivqp", rates, interval), "ivqp", queries
        ).per_query_sl
        warehouse = run_single_queries(
            tiny.system_config("warehouse", rates, interval), "warehouse",
            queries,
        ).per_query_sl
        for name in ivqp:
            assert ivqp[name] <= warehouse[name] + 1e-6
