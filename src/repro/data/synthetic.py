"""Synthetic schema and data generator.

The paper's second data set is "randomly generated tables based on a schema
similar with TPC-H but the number of tables can vary from 10 to 300", with
120 random queries each touching 1–10 tables (Section 4.1).  This module
generates such instances: every table gets a key column, a handful of typed
attribute columns, and (with high probability) a foreign key into an earlier
table so that multi-table queries have natural equi-join paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.planner import Database
from repro.engine.schema import Column, DType, TableSchema
from repro.engine.table import Table
from repro.errors import ConfigError
from repro.sim.rng import RandomSource

__all__ = ["SyntheticInstance", "generate_synthetic"]

_ATTR_TYPES = (DType.INT, DType.FLOAT, DType.STR, DType.DATE)


@dataclass
class SyntheticInstance:
    """A generated synthetic database.

    Attributes
    ----------
    database:
        The tables, named ``t001`` .. ``tNNN``.
    table_names:
        All table names, in creation order.
    foreign_keys:
        ``table -> (referenced_table, fk_column)`` join edges; queries use
        these to build connected multi-table joins.
    """

    database: Database
    table_names: list[str]
    foreign_keys: dict[str, tuple[str, str]] = field(default_factory=dict)
    row_counts: dict[str, int] = field(default_factory=dict)

    def key_column(self, table: str) -> str:
        """Name of a table's primary key column."""
        return f"{table}_key"


def generate_synthetic(
    num_tables: int = 100,
    rows_range: tuple[int, int] = (200, 2000),
    seed: int = 11,
    fk_probability: float = 0.9,
    materialize_rows: bool = True,
) -> SyntheticInstance:
    """Generate a deterministic synthetic instance.

    Parameters
    ----------
    num_tables:
        How many tables (the paper varies 10–300, usually fixing 100).
    rows_range:
        Inclusive row-count range per table.
    seed:
        Root seed.
    fk_probability:
        Chance a table (beyond the first) references an earlier table.
    materialize_rows:
        When ``False``, tables are created empty but *reported* with the
        drawn row counts — the large-instance experiments only need the
        cardinalities, not the bytes.
    """
    if num_tables < 1:
        raise ConfigError(f"num_tables must be >= 1, got {num_tables}")
    low, high = rows_range
    if low < 1 or high < low:
        raise ConfigError(f"invalid rows_range {rows_range}")

    source = RandomSource(seed, "synthetic")
    structure = source.spawn("structure")
    database = Database()
    table_names: list[str] = []
    foreign_keys: dict[str, tuple[str, str]] = {}
    row_counts: dict[str, int] = {}

    for index in range(num_tables):
        name = f"t{index + 1:03d}"
        columns = [Column(f"{name}_key", DType.INT)]
        fk_target: str | None = None
        if table_names and structure.uniform(0.0, 1.0) < fk_probability:
            fk_target = structure.choice(table_names)
            columns.append(Column(f"{name}_fk_{fk_target}", DType.INT))
            foreign_keys[name] = (fk_target, f"{name}_fk_{fk_target}")
        for attr in range(structure.randint(2, 5)):
            dtype = structure.choice(_ATTR_TYPES)
            columns.append(Column(f"{name}_a{attr}", dtype))
        schema = TableSchema(name, tuple(columns), primary_key=(f"{name}_key",))

        rows = structure.randint(low, high)
        row_counts[name] = rows
        table = Table(schema)
        if materialize_rows:
            filler = source.spawn(f"rows/{name}")
            target_rows = row_counts.get(fk_target, 0) if fk_target else 0
            for key in range(rows):
                record: list = [key]
                if fk_target is not None:
                    record.append(filler.randint(0, max(target_rows - 1, 0)))
                for column in schema.columns[len(record):]:
                    record.append(_random_value(column.dtype, filler))
                table.insert(record, validate=False)
        database.add(table)
        table_names.append(name)

    return SyntheticInstance(
        database=database,
        table_names=table_names,
        foreign_keys=foreign_keys,
        row_counts=row_counts,
    )


def _random_value(dtype: str, rng: RandomSource):
    if dtype == DType.INT:
        return rng.randint(0, 10_000)
    if dtype == DType.FLOAT:
        return round(rng.uniform(0.0, 10_000.0), 3)
    if dtype == DType.DATE:
        return rng.randint(0, 2555)
    return f"v{rng.randint(0, 9999):04d}"
