"""Execution tracing for simulation runs.

A :class:`Tracer` records structured trace records — query submissions,
plan choices, sync completions, execution phases — with their simulation
timestamps, supporting both debugging ("why did this query wait?") and the
tests that assert causal ordering of system events.  Producers call
:meth:`Tracer.emit`; analysis goes through filters and the timeline
renderer.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    kind: str
    subject: str
    detail: dict = field(default_factory=dict)

    def format(self) -> str:
        """One line of timeline output."""
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        body = f"[{self.time:10.4f}] {self.kind:<12} {self.subject}"
        return f"{body} {extras}".rstrip()


class Tracer:
    """An append-only, time-ordered log of simulation events.

    Records are strictly time-ordered: :meth:`emit` raises
    :class:`~repro.errors.SimulationError` if the clock ever runs backwards
    (equal timestamps are fine — many events share a simulation instant).
    With a ``capacity``, the log is a sliding window over the most recent
    events: once full, each new record evicts the **oldest** retained one
    (drop-oldest, never drop-newest), and :attr:`dropped` counts the
    evictions.
    """

    def __init__(self, clock: Callable[[], float], capacity: int | None = None) -> None:
        """``clock`` supplies timestamps (usually ``lambda: sim.now``).

        ``capacity`` bounds memory: older records are dropped FIFO once the
        bound is reached (``None`` = unbounded).
        """
        if capacity is not None and capacity < 1:
            raise SimulationError("tracer capacity must be >= 1 or None")
        self._clock = clock
        self._capacity = capacity
        self._records: list[TraceRecord] = []
        self._dropped = 0
        self._last_time: float | None = None
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self.enabled = True

    # -- producing ---------------------------------------------------------

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Deliver every future record to ``callback``, as it is emitted.

        Subscribers see records *live* — including ones a bounded tracer
        later evicts — which is what streaming consumers (the live metrics
        registry, SLO monitors) need: they never depend on the retained
        window.  A subscriber may itself emit (e.g. an SLO monitor opening
        an alert); the new record is delivered to every subscriber too.
        """
        self._subscribers.append(callback)

    def emit(self, kind: str, subject: str, **detail) -> None:
        """Record one event at the current simulation time.

        Raises :class:`SimulationError` when the clock reports a time
        earlier than the previous record's — traces must stay causally
        orderable even when producers misbehave.
        """
        if not self.enabled:
            return
        now = self._clock()
        if self._last_time is not None and now < self._last_time:
            raise SimulationError(
                f"trace time went backwards: {now} after {self._last_time} "
                f"(emitting {kind!r} for {subject!r})"
            )
        self._last_time = now
        record = TraceRecord(now, kind, subject, dict(detail))
        self._records.append(record)
        if self._capacity is not None and len(self._records) > self._capacity:
            overflow = len(self._records) - self._capacity
            del self._records[:overflow]
            self._dropped += overflow
        for callback in self._subscribers:
            callback(record)

    # -- consuming ------------------------------------------------------------

    @property
    def records(self) -> list[TraceRecord]:
        """All retained records (a copy), oldest first."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """How many records the capacity bound evicted."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def filter(
        self,
        kind: str | None = None,
        subject: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> Iterator[TraceRecord]:
        """Iterate records matching every given criterion."""
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if subject is not None and record.subject != subject:
                continue
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            yield record

    def timeline(self, **filter_kwargs) -> str:
        """A printable timeline of (filtered) records."""
        lines = [record.format() for record in self.filter(**filter_kwargs)]
        if self._dropped:
            lines.insert(0, f"... {self._dropped} earlier records dropped ...")
        return "\n".join(lines)

    def drain(self) -> list[TraceRecord]:
        """Hand over (and release) the retained records.

        Unlike :meth:`clear` this keeps the monotone-time guard and the
        dropped counter intact: drained records were *delivered* (the
        caller or a subscriber now owns them), not lost.  Lets a
        long-running producer that streams records out through a
        subscriber bound its memory without faking drops.
        """
        records = self._records
        self._records = []
        return records

    def clear(self) -> None:
        """Forget everything recorded so far (and reset the time guard)."""
        self._records.clear()
        self._dropped = 0
        self._last_time = None
