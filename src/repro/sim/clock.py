"""Simulation clock.

Time in this package is a continuous ``float`` measured in **minutes**, the
natural unit for the paper's near-real-time decision support band (2–30
minutes).  The clock only ever moves forward; attempts to move it backwards
indicate a kernel bug and raise :class:`~repro.errors.SchedulingError`.

Naming note: this class was called ``Clock`` until the PR 6 serving
runtime introduced the *event-clock protocol* of the same name in
:mod:`repro.sim.clocks` — two unrelated types, one legacy monotone
simulation clock and one sim/wall time-source seam, colliding on a single
word in sibling modules.  The legacy class is now
:class:`SimulationClock`; ``repro.sim.clock.Clock`` remains as a
deprecated alias for one release.
"""

from __future__ import annotations

import typing
import warnings

from repro.errors import SchedulingError

__all__ = ["SimulationClock"]


class SimulationClock:
    """A monotonically advancing simulation clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SchedulingError(f"clock cannot start before time 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in minutes."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises
        ------
        SchedulingError
            If ``time`` lies in the past.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulationClock(now={self._now:.4f})"


def __getattr__(name: str) -> typing.Any:
    if name == "Clock":
        warnings.warn(
            "repro.sim.clock.Clock is deprecated: the monotone simulation "
            "clock is now repro.sim.clock.SimulationClock (the Clock "
            "*protocol* lives in repro.sim.clocks)",
            DeprecationWarning,
            stacklevel=2,
        )
        return SimulationClock
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
