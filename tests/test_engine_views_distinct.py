"""Unit tests: union-all views and the Distinct operator."""

from __future__ import annotations

import pytest

from repro.engine.ops import Distinct, ExecutionStats, Scan
from repro.engine.planner import Database, Planner
from repro.engine.query import QueryBuilder
from repro.engine.schema import Column, DType, TableSchema
from repro.engine.table import Table
from repro.engine.views import UnionTable
from repro.errors import EngineError


def part_schema(name: str) -> TableSchema:
    return TableSchema(
        name,
        (Column("id", DType.INT), Column("value", DType.FLOAT)),
    )


def build_view() -> tuple[UnionTable, Table, Table]:
    p1 = Table(part_schema("p1"), rows=[(1, 1.0), (2, 2.0)])
    p2 = Table(part_schema("p2"), rows=[(3, 3.0)])
    view = UnionTable(part_schema("combined"), [p1, p2])
    return view, p1, p2


class TestUnionTable:
    def test_row_count_and_size_aggregate(self):
        view, p1, p2 = build_view()
        assert view.row_count == 3
        assert len(view) == 3
        assert view.size_bytes == p1.size_bytes + p2.size_bytes

    def test_rows_chain_members_in_order(self):
        view, _p1, _p2 = build_view()
        assert list(view) == [(1, 1.0), (2, 2.0), (3, 3.0)]

    def test_column_values_concatenate(self):
        view, _p1, _p2 = build_view()
        assert view.column_values("id") == [1, 2, 3]

    def test_reflects_member_mutation(self):
        view, p1, _p2 = build_view()
        p1.insert((9, 9.0))
        assert view.row_count == 4
        assert (9, 9.0) in list(view)

    def test_insert_rejected(self):
        view, _p1, _p2 = build_view()
        with pytest.raises(EngineError):
            view.insert((5, 5.0))

    def test_members_must_match_schema(self):
        other = Table(
            TableSchema("odd", (Column("x", DType.INT),)), rows=[(1,)]
        )
        with pytest.raises(EngineError):
            UnionTable(part_schema("combined"), [other])

    def test_needs_members(self):
        with pytest.raises(EngineError):
            UnionTable(part_schema("combined"), [])

    def test_planner_queries_view_like_a_table(self):
        view, p1, p2 = build_view()
        db = Database()
        db.add(p1)
        db.add(p2)
        db.add(view)
        from repro.engine.expr import Col

        query = (
            QueryBuilder("q")
            .table("combined", "c")
            .agg("sum", Col("c.value"), "total")
            .build()
        )
        rows = Planner(db).plan(query).execute()
        assert rows[0]["total"] == pytest.approx(6.0)

    def test_tpch_lineitem_is_a_view(self, tpch_tiny):
        combined = tpch_tiny.database.table("lineitem")
        assert isinstance(combined, UnionTable)
        assert combined.row_count == sum(
            tpch_tiny.database.table(name).row_count
            for name in tpch_tiny.lineitem_partitions
        )


class TestDistinct:
    def make_scan(self):
        table = Table(part_schema("t"), rows=[
            (1, 1.0), (1, 1.0), (2, 1.0), (2, 2.0),
        ])
        return Scan(table, "t", ExecutionStats())

    def test_full_row_distinct(self):
        rows = list(Distinct(self.make_scan()))
        assert len(rows) == 3

    def test_keyed_distinct_keeps_first(self):
        rows = list(Distinct(self.make_scan(), keys=["t.id"]))
        assert [row["t.id"] for row in rows] == [1, 2]
        assert rows[1]["t.value"] == 1.0  # first occurrence wins

    def test_columns_pass_through(self):
        node = Distinct(self.make_scan())
        assert node.columns == ("t.id", "t.value")
