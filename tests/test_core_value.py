"""Unit and property tests: the information value model (paper Section 2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.value import (
    DiscountRates,
    discount_factor,
    information_value,
    max_tolerable_latency,
)
from repro.errors import ConfigError


class TestDiscountRates:
    def test_valid_rates(self):
        rates = DiscountRates(0.01, 0.05)
        assert rates.computational == 0.01
        assert rates.synchronization == 0.05

    def test_symmetric_helper(self):
        rates = DiscountRates.symmetric(0.1)
        assert rates.computational == rates.synchronization == 0.1

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ConfigError):
            DiscountRates(bad, 0.01)
        with pytest.raises(ConfigError):
            DiscountRates(0.01, bad)


class TestDiscountFactor:
    def test_zero_rate_never_discounts(self):
        assert discount_factor(0.0, 1000.0) == 1.0

    def test_zero_latency_never_discounts(self):
        assert discount_factor(0.5, 0.0) == 1.0

    def test_matches_formula(self):
        assert discount_factor(0.1, 10.0) == pytest.approx(0.9**10)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            discount_factor(0.1, -1.0)


class TestInformationValue:
    def test_paper_fig4_scatter_value(self):
        """The worked example: BV x 0.9^10 x 0.9^10."""
        rates = DiscountRates.symmetric(0.1)
        value = information_value(1.0, 10.0, 10.0, rates)
        assert value == pytest.approx(0.9**20)

    def test_full_value_at_zero_latency(self):
        rates = DiscountRates(0.05, 0.05)
        assert information_value(7.0, 0.0, 0.0, rates) == 7.0

    def test_scales_with_business_value(self):
        rates = DiscountRates(0.01, 0.01)
        one = information_value(1.0, 5.0, 5.0, rates)
        ten = information_value(10.0, 5.0, 5.0, rates)
        assert ten == pytest.approx(10 * one)

    def test_negative_business_value_rejected(self):
        with pytest.raises(ConfigError):
            information_value(-1.0, 1.0, 1.0, DiscountRates(0.01, 0.01))

    def test_report_freshness_tradeoff_from_introduction(self):
        """The intro's example: 5min/8min-old beats 2min/12min-old data
        when synchronization discounts dominate."""
        rates = DiscountRates(computational=0.01, synchronization=0.1)
        report_1 = information_value(1.0, 5.0, 8.0, rates)
        report_2 = information_value(1.0, 2.0, 12.0, rates)
        assert report_1 > report_2
        # ... and flips when computational latency is what hurts.
        flipped = DiscountRates(computational=0.1, synchronization=0.01)
        assert information_value(1.0, 2.0, 12.0, flipped) > information_value(
            1.0, 5.0, 8.0, flipped
        )


class TestMaxTolerableLatency:
    def test_paper_bound_is_twenty(self):
        """Fig 4: incumbent 0.9^20 at rate 0.1 -> CL bound of 20 minutes."""
        incumbent = 0.9**20
        bound = max_tolerable_latency(1.0, incumbent, 0.1)
        assert bound == pytest.approx(20.0)

    def test_zero_rate_gives_infinite_bound(self):
        assert max_tolerable_latency(1.0, 0.5, 0.0) == math.inf

    def test_nonpositive_incumbent_gives_infinite_bound(self):
        assert max_tolerable_latency(1.0, 0.0, 0.1) == math.inf

    def test_incumbent_at_full_value_gives_zero(self):
        assert max_tolerable_latency(1.0, 1.0, 0.1) == 0.0

    def test_requires_positive_business_value(self):
        with pytest.raises(ConfigError):
            max_tolerable_latency(0.0, 0.5, 0.1)


@settings(max_examples=200, deadline=None)
@given(
    bv=st.floats(min_value=0.01, max_value=100.0),
    cl=st.floats(min_value=0.0, max_value=500.0),
    sl=st.floats(min_value=0.0, max_value=500.0),
    rate_cl=st.floats(min_value=0.0, max_value=0.5),
    rate_sl=st.floats(min_value=0.0, max_value=0.5),
)
def test_iv_bounded_by_business_value_and_nonnegative(bv, cl, sl, rate_cl, rate_sl):
    rates = DiscountRates(rate_cl, rate_sl)
    value = information_value(bv, cl, sl, rates)
    assert 0.0 <= value <= bv + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    bv=st.floats(min_value=0.01, max_value=100.0),
    cl=st.floats(min_value=0.0, max_value=100.0),
    extra=st.floats(min_value=0.01, max_value=100.0),
    sl=st.floats(min_value=0.0, max_value=100.0),
    rate=st.floats(min_value=0.001, max_value=0.5),
)
def test_iv_monotone_decreasing_in_latency(bv, cl, extra, sl, rate):
    rates = DiscountRates(rate, rate)
    assert information_value(bv, cl + extra, sl, rates) < information_value(
        bv, cl, sl, rates
    )
    assert information_value(bv, cl, sl + extra, rates) < information_value(
        bv, cl, sl, rates
    )


@settings(max_examples=100, deadline=None)
@given(
    bv=st.floats(min_value=0.01, max_value=50.0),
    incumbent_fraction=st.floats(min_value=0.01, max_value=0.99),
    rate=st.floats(min_value=0.001, max_value=0.5),
)
def test_bound_is_tight(bv, incumbent_fraction, rate):
    """At exactly the bound the plan matches the incumbent; beyond, never."""
    incumbent = bv * incumbent_fraction
    bound = max_tolerable_latency(bv, incumbent, rate)
    at_bound = information_value(bv, bound, 0.0, DiscountRates(rate, 0.0))
    assert at_bound == pytest.approx(incumbent, rel=1e-6)
    beyond = information_value(bv, bound + 1.0, 0.0, DiscountRates(rate, 0.0))
    assert beyond < incumbent
