"""Figure 4 — scatter-and-gather worked example (paper Section 3.1).

Regenerates the walkthrough: the all-base incumbent ``0.9^10 × 0.9^10``,
the initial bound at t = 31, and the IV-optimal delayed mixed plan, checked
against the exhaustive oracle.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig4_walkthrough import Fig4Config, run_fig4


def test_fig4_walkthrough(benchmark, show):
    outcome = benchmark.pedantic(
        lambda: run_fig4(Fig4Config()), rounds=3, iterations=1
    )

    show(
        "Figure 4 walkthrough\n"
        f"scatter incumbent IV = {outcome.scatter_iv:.4f} "
        f"(paper: 0.9^20 = {0.9**20:.4f})\n"
        f"initial bound        = t={outcome.initial_bound:.1f} (paper: 31)\n"
        f"chosen plan          : {outcome.chosen.describe()}\n"
        f"oracle plan          : {outcome.oracle.describe()}\n"
        f"plans evaluated      : {outcome.diagnostics.plans_evaluated}\n\n"
        + outcome.candidates.render()
    )

    # Paper-anchored checks.
    assert outcome.scatter_iv == pytest.approx(0.9**20)
    assert outcome.initial_bound == pytest.approx(31.0)
    assert outcome.chosen.information_value == pytest.approx(
        outcome.oracle.information_value
    )
    assert outcome.chosen.information_value > outcome.scatter_iv
    assert outcome.chosen.delayed  # waiting for a sync wins here
