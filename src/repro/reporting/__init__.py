"""Result formatting shared by the CLI, examples and benchmarks."""

from repro.reporting.charts import bar_chart, grouped_bar_chart
from repro.reporting.export import render, to_csv, to_json
from repro.reporting.tables import ResultTable, format_series, format_table

__all__ = [
    "ResultTable",
    "bar_chart",
    "format_series",
    "format_table",
    "grouped_bar_chart",
    "render",
    "to_csv",
    "to_json",
]
