"""Write ``BENCH_mqo.json`` — a point-in-time MQO fast-path snapshot.

Runs the same 16-query / 50-generation GA workload as
``benchmarks/test_mqo_perf.py`` once through the fast path and once
naively, and records wall times plus the evaluator/GA counters.  Invoked
by ``make bench-mqo``; the JSON gives perf regressions a baseline to
diff against.

Usage::

    PYTHONPATH=src python benchmarks/mqo_snapshot.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_mqo_perf import build_evaluator, run_ga  # noqa: E402


def snapshot() -> dict:
    fast_eval = build_evaluator()
    started = time.perf_counter()
    fast_result = run_ga(fast_eval)
    fast_wall = time.perf_counter() - started

    naive_eval = build_evaluator(fast_path=False)
    started = time.perf_counter()
    naive_result = run_ga(naive_eval)
    naive_wall = time.perf_counter() - started

    assert fast_result.best == naive_result.best
    assert fast_result.best_fitness == naive_result.best_fitness

    stats = fast_eval.stats
    return {
        "workload": {"queries": 16, "generations": 50, "population": 32},
        "fast": {
            "wall_seconds": round(fast_wall, 4),
            "fitness_calls": fast_result.fitness_calls,
            "cache_hits": fast_result.cache_hits,
            "best_fitness": fast_result.best_fitness,
            "realize_calls": stats.realize_calls,
            "naive_realize_calls": stats.naive_realize_calls,
            "realize_reduction_factor": round(
                stats.realize_reduction_factor, 2
            ),
            "prefix_hits": stats.prefix_hits,
            "choice_hits": stats.choice_hits,
            "candidates_pruned": stats.candidates_pruned,
        },
        "naive": {
            "wall_seconds": round(naive_wall, 4),
            "fitness_calls": naive_result.fitness_calls,
            "cache_hits": naive_result.cache_hits,
            "best_fitness": naive_result.best_fitness,
        },
        "speedup": round(naive_wall / fast_wall, 2) if fast_wall else None,
    }


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_mqo.json")
    data = snapshot()
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(data, indent=2))


if __name__ == "__main__":
    main()
