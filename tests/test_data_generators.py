"""Unit tests: TPC-H and synthetic data generators, placements."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.data.placement import (
    round_robin_placement,
    skewed_placement,
    uniform_placement,
)
from repro.data.synthetic import generate_synthetic
from repro.data.tpch import (
    LINEITEM_PARTITIONS,
    generate_tpch,
    lineitem_partition_names,
)
from repro.errors import ConfigError
from repro.sim.rng import RandomSource


class TestTpch:
    def test_twelve_physical_tables(self, tpch_tiny):
        assert len(tpch_tiny.table_names) == 7 + LINEITEM_PARTITIONS

    def test_partition_names(self):
        assert lineitem_partition_names(3) == [
            "lineitem_p1", "lineitem_p2", "lineitem_p3",
        ]

    def test_partitions_union_to_combined_lineitem(self, tpch_tiny):
        combined = tpch_tiny.database.table("lineitem").row_count
        split = sum(
            tpch_tiny.database.table(name).row_count
            for name in tpch_tiny.lineitem_partitions
        )
        assert combined == split

    def test_partitioned_by_orderkey(self, tpch_tiny):
        for index, name in enumerate(tpch_tiny.lineitem_partitions):
            table = tpch_tiny.database.table(name)
            keys = table.column_values("l_orderkey")
            assert all(key % LINEITEM_PARTITIONS == index for key in keys)

    def test_relative_table_sizes(self, tpch_tiny):
        rows = tpch_tiny.row_counts
        assert rows["region"] == 5
        assert rows["nation"] == 25
        assert rows["orders"] > rows["customer"] > rows["supplier"]

    def test_foreign_keys_resolve(self, tpch_tiny):
        db = tpch_tiny.database
        customers = set(db.table("customer").column_values("c_custkey"))
        for custkey in db.table("orders").column_values("o_custkey"):
            assert custkey in customers

    def test_determinism(self):
        a = generate_tpch(scale=0.0005, seed=3)
        b = generate_tpch(scale=0.0005, seed=3)
        assert a.row_counts == b.row_counts
        assert list(a.database.table("orders")) == list(b.database.table("orders"))

    def test_seed_changes_data(self):
        a = generate_tpch(scale=0.0005, seed=3)
        b = generate_tpch(scale=0.0005, seed=4)
        assert list(a.database.table("orders")) != list(b.database.table("orders"))

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigError):
            generate_tpch(scale=0.0)

    def test_custom_partition_count(self):
        instance = generate_tpch(scale=0.0005, seed=3, partitions=3)
        assert len(instance.table_names) == 10


class TestSynthetic:
    def test_table_count_and_names(self, synthetic_small):
        assert len(synthetic_small.table_names) == 20
        assert synthetic_small.table_names[0] == "t001"

    def test_foreign_keys_reference_earlier_tables(self, synthetic_small):
        order = {name: i for i, name in enumerate(synthetic_small.table_names)}
        for child, (parent, _col) in synthetic_small.foreign_keys.items():
            assert order[parent] < order[child]

    def test_fk_values_within_parent_range(self, synthetic_small):
        for child, (parent, column) in synthetic_small.foreign_keys.items():
            table = synthetic_small.database.table(child)
            parent_rows = synthetic_small.row_counts[parent]
            for value in table.column_values(column):
                assert 0 <= value < max(parent_rows, 1)

    def test_row_counts_within_range(self, synthetic_small):
        for rows in synthetic_small.row_counts.values():
            assert 30 <= rows <= 120

    def test_schema_only_mode_reports_rows_without_materializing(self):
        instance = generate_synthetic(
            num_tables=5, rows_range=(10, 20), seed=1, materialize_rows=False
        )
        for name in instance.table_names:
            assert instance.database.table(name).row_count == 0
            assert 10 <= instance.row_counts[name] <= 20

    def test_determinism(self):
        a = generate_synthetic(num_tables=8, seed=5)
        b = generate_synthetic(num_tables=8, seed=5)
        assert a.row_counts == b.row_counts
        assert a.foreign_keys == b.foreign_keys

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            generate_synthetic(num_tables=0)
        with pytest.raises(ConfigError):
            generate_synthetic(num_tables=3, rows_range=(10, 5))

    def test_key_column_helper(self, synthetic_small):
        assert synthetic_small.key_column("t001") == "t001_key"


class TestPlacement:
    TABLES = [f"t{i}" for i in range(32)]

    def test_round_robin_spreads_evenly(self):
        placement = round_robin_placement(self.TABLES, 4)
        counts = Counter(placement.values())
        assert all(count == 8 for count in counts.values())

    def test_uniform_uses_all_sites_eventually(self):
        placement = uniform_placement(
            self.TABLES, 4, RandomSource(1, "place")
        )
        assert set(placement.values()) <= {0, 1, 2, 3}
        assert len(set(placement.values())) > 1

    def test_uniform_without_rng_degrades_to_round_robin(self):
        assert uniform_placement(self.TABLES, 4) == round_robin_placement(
            self.TABLES, 4
        )

    def test_skewed_halves_cascade(self):
        placement = skewed_placement(self.TABLES, 4)
        counts = Counter(placement.values())
        assert counts[0] == 16
        assert counts[1] == 8
        assert counts[2] == 4
        assert counts[3] == 4  # remainder lands on the last site

    def test_skewed_assigns_every_table(self):
        placement = skewed_placement(self.TABLES, 10, RandomSource(2, "p"))
        assert set(placement) == set(self.TABLES)

    def test_more_sites_than_tables(self):
        placement = skewed_placement(["a", "b"], 5)
        assert set(placement) == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ConfigError):
            round_robin_placement([], 3)
        with pytest.raises(ConfigError):
            round_robin_placement(["a"], 0)
