"""IVQP: the scatter-and-gather plan search (paper Section 3.1, Figure 4).

The search maximises information value over *when* to start and *which*
table versions to read:

1. **Scatter** — evaluate the all-base-tables immediate plan.  Its IV is the
   incumbent ``opt``; since any plan's IV is at most
   ``BV × (1 − λ_CL)^CL`` (synchronization discount can only lower it),
   no plan whose computational latency exceeds
   ``CL_max = log(opt/BV)/log(1 − λ_CL)`` can win, bounding the explored
   time line at ``b = t_q + CL_max``.

2. **Gather** — at the submission instant and then at each successive
   scheduled synchronization completion ≤ ``b``, order the query's replicas
   stalest-first and evaluate the ``m + 1`` prefix-substitution combos
   (the stalest replica is the one worth replacing with a base read, since
   SL is decided by the earliest-synchronized table).  Each improvement
   tightens ``b``.

The exhaustive enumerator from :mod:`repro.core.enumeration` serves as the
test oracle for this search.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.core.enumeration import (
    CostProvider,
    gather_combos,
    make_plan,
    split_tables,
)
from repro.core.plan import QueryPlan
from repro.core.value import DiscountRates, max_tolerable_latency
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog
from repro.obs.profile import profiled

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.faults import AvailabilityView
    from repro.workload.query import DSSQuery

__all__ = ["SearchDiagnostics", "IVQPOptimizer"]


@dataclass
class SearchDiagnostics:
    """Instrumentation of one scatter-and-gather run."""

    plans_evaluated: int = 0
    time_lines_visited: int = 0
    final_bound: float = 0.0
    bound_tightenings: int = 0
    improvements: list[float] = field(default_factory=list)
    #: True when the walk stopped at ``max_time_lines`` with time lines
    #: still inside the scatter bound — the search space was truncated,
    #: not exhausted by the bound.
    exhausted: bool = False


class IVQPOptimizer:
    """Information value-driven query plan selection."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
        max_time_lines: int = 10_000,
        availability: "AvailabilityView | None" = None,
    ) -> None:
        if max_time_lines < 1:
            raise OptimizationError("max_time_lines must be >= 1")
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates
        self.max_time_lines = max_time_lines
        #: Scheduled-fault view for degraded-mode planning: down sites'
        #: replicated tables are kept on their replicas and sync points
        #: that will skip or slip are not worth delaying for.
        self.availability = availability

    def rates_for(self, query: "DSSQuery") -> DiscountRates:
        """Per-query rates if set, otherwise the system default."""
        return query.rates if query.rates is not None else self.default_rates

    # -- main entry point -----------------------------------------------------

    @profiled("optimizer.choose_plan")
    def choose_plan(
        self,
        query: "DSSQuery",
        submitted_at: float,
        diagnostics: SearchDiagnostics | None = None,
    ) -> QueryPlan:
        """The IV-maximal plan for a query submitted at ``submitted_at``."""
        self.catalog.validate_query_tables(query.tables)
        rates = self.rates_for(query)
        diag = diagnostics if diagnostics is not None else SearchDiagnostics()

        # Scatter: the all-base immediate plan always exists and seeds the
        # bound.  (If only base tables are involved, executing immediately
        # dominates any delay — the paper's parenthetical observation.)
        # Under an availability view, replicated tables whose base site is
        # down at submission fall back to their replicas in the seed too.
        all_base = frozenset(query.tables)
        seed_combo = all_base
        if self.availability is not None:
            seed_combo = frozenset(
                name
                for name in query.tables
                if not (
                    self.catalog.has_replica(name)
                    and self.availability.is_site_down(
                        self.catalog.table(name).site, submitted_at
                    )
                )
            )
        best = make_plan(
            query, self.catalog, self.cost_provider, rates,
            submitted_at, submitted_at, seed_combo,
        )
        diag.plans_evaluated += 1
        bound = self._bound(query, best, submitted_at, rates)
        diag.final_bound = bound

        replicated, _ = split_tables(query, self.catalog)
        if not replicated:
            return best

        time_line = submitted_at
        visited = 0
        # ``bound`` is infinite when lambda_cl == 0, and ``_next_sync_point``
        # returns inf once no replica has a reliable future sync; an infinite
        # time line has nothing to evaluate, so it ends the walk rather than
        # satisfying ``inf <= inf``.
        while time_line <= bound and time_line != float("inf") and (
            visited < self.max_time_lines
        ):
            visited += 1
            diag.time_lines_visited += 1
            for combo in gather_combos(
                query, self.catalog, time_line, self.availability
            ):
                if combo == all_base and time_line > submitted_at:
                    # Delaying an all-base plan only adds CL; dominated.
                    continue
                candidate = make_plan(
                    query, self.catalog, self.cost_provider, rates,
                    submitted_at, time_line, combo,
                )
                diag.plans_evaluated += 1
                if candidate.information_value > best.information_value:
                    best = candidate
                    diag.improvements.append(candidate.information_value)
                    new_bound = self._bound(query, best, submitted_at, rates)
                    if new_bound < bound:
                        bound = new_bound
                        diag.bound_tightenings += 1
                        diag.final_bound = bound
            time_line = self._next_sync_point(query, replicated, time_line)
        if visited >= self.max_time_lines and time_line <= bound:
            diag.exhausted = True
        return best

    # -- helpers -----------------------------------------------------------------

    def _bound(
        self,
        query: "DSSQuery",
        incumbent: QueryPlan,
        submitted_at: float,
        rates: DiscountRates,
    ) -> float:
        """Latest start time worth exploring given the incumbent IV."""
        tolerable = max_tolerable_latency(
            query.business_value,
            incumbent.information_value,
            rates.computational,
        )
        return submitted_at + tolerable

    #: How many scheduled-but-unreliable completions to look past per
    #: replica before giving up on that replica's timeline.
    _UNRELIABLE_LOOKAHEAD = 32

    def _next_sync_point(
        self,
        query: "DSSQuery",
        replicated: list[str],
        after: float,
    ) -> float:
        """Earliest next synchronization completion among the replicas.

        Sync points that the availability view says will skip or slip are
        not worth delaying for; the walk advances past them (bounded per
        replica so a fully-unreliable schedule cannot loop forever).
        """
        best = float("inf")
        for name in replicated:
            replica = self.catalog.replica(name)
            point = replica.next_sync_after(after)
            if self.availability is not None:
                for _attempt in range(self._UNRELIABLE_LOOKAHEAD):
                    if not self.availability.unreliable_sync(name, point):
                        break
                    point = replica.next_sync_after(point)
                else:
                    continue
            best = min(best, point)
        return best
