"""Fault plans and runtime fault injection for the federation.

The paper *assumes* its §3.1 precondition away: "a QoS aware replication
manager is deployed to ensure updates ... within a pre-defined time
frame".  This module stresses that assumption.  A :class:`FaultPlan` is a
seeded, fully pre-scheduled description of what goes wrong in one run:

* **site outages** — down/up windows per remote site (an
  :class:`~repro.sim.faults.OutageTimeline` each);
* **sync failures** — a scheduled synchronization completion is silently
  skipped, or lands late with exponential jitter;
* **link degradation** — windows during which a site's link runs with
  latency/bandwidth multipliers on top of the static
  :class:`~repro.federation.network.NetworkModel`.

Because the plan is deterministic per seed (every decision derives from
hashed substreams, never from shared mutable RNG state), identical seeds
give identical fault timelines — the property tests assert exactly that —
and planners may inspect it: :class:`FaultPlan` satisfies
:class:`AvailabilityView`, the read-only interface the IVQP optimizer and
the MQO evaluator use for degraded-mode planning.

The :class:`FaultInjector` is the runtime half: it binds a plan to one
simulation, answers the executor's and replication manager's questions,
counts what actually happened (:class:`FaultStats`), and flips
``Site.available`` at window edges for observability.
"""

from __future__ import annotations

import typing
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs import events
from repro.sim.faults import OutageTimeline, Window, generate_outage_windows
from repro.sim.rng import RandomSource

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.catalog import Replica
    from repro.federation.network import NetworkModel
    from repro.federation.site import Site
    from repro.sim.scheduler import Simulator
    from repro.sim.trace import Tracer

__all__ = [
    "SYNC_OK",
    "SYNC_SKIP",
    "SYNC_DELAY",
    "LinkDegradation",
    "AvailabilityView",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
]

#: Sync disposition kinds returned by :meth:`FaultPlan.sync_disposition`.
SYNC_OK = "ok"
SYNC_SKIP = "skip"
SYNC_DELAY = "delay"


@dataclass(frozen=True)
class LinkDegradation:
    """One window of degraded link service at a site."""

    window: Window
    latency_multiplier: float = 1.0
    bandwidth_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_multiplier < 1.0 or self.bandwidth_multiplier < 1.0:
            raise ConfigError("degradation multipliers must be >= 1")


class AvailabilityView(typing.Protocol):
    """What degraded-mode planners may ask about scheduled faults."""

    def is_site_down(self, site: int, time: float) -> bool:
        """Whether a site is inside a scheduled outage at ``time``."""
        ...  # pragma: no cover - protocol

    def unreliable_sync(self, table: str, time: float) -> bool:
        """Whether the sync completing at ``time`` will skip or slip."""
        ...  # pragma: no cover - protocol


class FaultPlan:
    """A deterministic, pre-scheduled description of one run's faults."""

    def __init__(
        self,
        site_outages: Mapping[int, OutageTimeline] | None = None,
        degradations: Mapping[int, Sequence[LinkDegradation]] | None = None,
        sync_skip_prob: float = 0.0,
        sync_delay_prob: float = 0.0,
        sync_delay_mean: float = 2.0,
        table_sites: Mapping[str, int] | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sync_skip_prob <= 1.0 or not 0.0 <= sync_delay_prob <= 1.0:
            raise ConfigError("sync failure probabilities must be in [0, 1]")
        if sync_skip_prob + sync_delay_prob > 1.0:
            raise ConfigError("sync_skip_prob + sync_delay_prob must be <= 1")
        if sync_delay_mean <= 0:
            raise ConfigError("sync_delay_mean must be > 0")
        self.site_outages: dict[int, OutageTimeline] = dict(site_outages or {})
        self.degradations: dict[int, tuple[LinkDegradation, ...]] = {
            site: tuple(items) for site, items in (degradations or {}).items()
        }
        self.sync_skip_prob = sync_skip_prob
        self.sync_delay_prob = sync_delay_prob
        self.sync_delay_mean = sync_delay_mean
        self.table_sites: dict[str, int] = dict(table_sites or {})
        self.seed = int(seed)
        # (table, completion time) → (kind, delay); hashed-seed draws make
        # the cache purely an optimization — lookups in any order agree.
        self._sync_cache: dict[tuple[str, float], tuple[str, float]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: float,
        site_ids: Sequence[int],
        outage_rate: float = 0.0,
        outage_mean_duration: float = 10.0,
        sync_skip_prob: float = 0.0,
        sync_delay_prob: float = 0.0,
        sync_delay_mean: float = 2.0,
        degradation_rate: float = 0.0,
        degradation_mean_duration: float = 20.0,
        latency_multiplier: float = 4.0,
        bandwidth_multiplier: float = 4.0,
        table_sites: Mapping[str, int] | None = None,
    ) -> "FaultPlan":
        """Draw a reproducible fault plan for one run.

        ``outage_rate`` and ``degradation_rate`` are events per minute per
        site; durations are exponential.  Each site draws from its own
        named substream, so adding a site to a setup never perturbs the
        faults of existing sites.
        """
        source = RandomSource(seed, "faults")
        outages: dict[int, OutageTimeline] = {}
        degradations: dict[int, tuple[LinkDegradation, ...]] = {}
        for site in sorted(set(site_ids)):
            timeline = generate_outage_windows(
                source.spawn(f"outage/{site}"), horizon,
                outage_rate, outage_mean_duration,
            )
            if timeline:
                outages[site] = timeline
            degraded = generate_outage_windows(
                source.spawn(f"degrade/{site}"), horizon,
                degradation_rate, degradation_mean_duration,
            )
            if degraded:
                degradations[site] = tuple(
                    LinkDegradation(window, latency_multiplier, bandwidth_multiplier)
                    for window in degraded.windows
                )
        return cls(
            site_outages=outages,
            degradations=degradations,
            sync_skip_prob=sync_skip_prob,
            sync_delay_prob=sync_delay_prob,
            sync_delay_mean=sync_delay_mean,
            table_sites=table_sites,
            seed=seed,
        )

    # -- site outages -----------------------------------------------------

    def _timeline(self, site: int) -> OutageTimeline | None:
        return self.site_outages.get(site)

    def is_site_down(self, site: int, time: float) -> bool:
        """Whether ``site`` is inside a scheduled outage at ``time``."""
        timeline = self._timeline(site)
        return timeline is not None and timeline.is_down(time)

    def site_up_at(self, site: int, time: float) -> float:
        """Earliest instant ≥ ``time`` at which ``site`` is up."""
        timeline = self._timeline(site)
        if timeline is None:
            return time
        return timeline.up_at(time)

    def next_outage_after(self, site: int, time: float) -> float:
        """Start of the next outage (``time`` if down now, ``inf`` if none)."""
        timeline = self._timeline(site)
        if timeline is None:
            return float("inf")
        return timeline.next_down_after(time)

    # -- link degradation --------------------------------------------------

    def degradation_at(self, site: int, time: float) -> LinkDegradation | None:
        """The degradation window covering ``time`` at ``site``, if any."""
        for degradation in self.degradations.get(site, ()):
            if degradation.window.contains(time):
                return degradation
        return None

    # -- sync failures -----------------------------------------------------

    def sync_disposition(self, table: str, time: float) -> tuple[str, float]:
        """What happens to the sync of ``table`` completing at ``time``.

        Returns ``(kind, delay)`` with ``kind`` one of :data:`SYNC_OK`,
        :data:`SYNC_SKIP`, :data:`SYNC_DELAY`; ``delay`` is the slip in
        minutes (0.0 unless delayed).  A sync whose source site is mid-
        outage is always skipped — the replication manager cannot reach
        the base table.  Every other decision derives from a substream
        hashed on ``(seed, table, time)``, so it is stable regardless of
        lookup order.
        """
        key = (table, time)
        cached = self._sync_cache.get(key)
        if cached is not None:
            return cached
        site = self.table_sites.get(table)
        if site is not None and self.is_site_down(site, time):
            result = (SYNC_SKIP, 0.0)
        elif self.sync_skip_prob == 0.0 and self.sync_delay_prob == 0.0:
            result = (SYNC_OK, 0.0)
        else:
            draw = RandomSource(self.seed, f"sync/{table}/{time!r}")
            toss = draw.uniform(0.0, 1.0)
            if toss < self.sync_skip_prob:
                result = (SYNC_SKIP, 0.0)
            elif toss < self.sync_skip_prob + self.sync_delay_prob:
                result = (SYNC_DELAY, draw.expovariate(1.0 / self.sync_delay_mean))
            else:
                result = (SYNC_OK, 0.0)
        self._sync_cache[key] = result
        return result

    def unreliable_sync(self, table: str, time: float) -> bool:
        """Whether the sync completing at ``time`` will not land on time."""
        return self.sync_disposition(table, time)[0] != SYNC_OK

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(outage_sites={sorted(self.site_outages)}, "
            f"skip={self.sync_skip_prob}, delay={self.sync_delay_prob})"
        )


@dataclass
class FaultStats:
    """Counters of what the injector actually did during one run."""

    outages_scheduled: int = 0
    outage_minutes: float = 0.0
    syncs_applied: int = 0
    syncs_skipped: int = 0
    syncs_delayed: int = 0
    sync_delay_minutes: float = 0.0
    legs_interrupted: int = 0
    legs_stalled_on_outage: int = 0
    legs_degraded: int = 0
    degraded_leg_minutes: float = 0.0

    def merge(self, other: "FaultStats") -> None:
        """Accumulate another stats struct into this one (for reporting)."""
        self.outages_scheduled += other.outages_scheduled
        self.outage_minutes += other.outage_minutes
        self.syncs_applied += other.syncs_applied
        self.syncs_skipped += other.syncs_skipped
        self.syncs_delayed += other.syncs_delayed
        self.sync_delay_minutes += other.sync_delay_minutes
        self.legs_interrupted += other.legs_interrupted
        self.legs_stalled_on_outage += other.legs_stalled_on_outage
        self.legs_degraded += other.legs_degraded
        self.degraded_leg_minutes += other.degraded_leg_minutes

    def summary(self) -> str:
        """One-line digest for experiment output."""
        return (
            f"outages={self.outages_scheduled} "
            f"({self.outage_minutes:.1f}min) "
            f"syncs ok/skip/delay={self.syncs_applied}"
            f"/{self.syncs_skipped}/{self.syncs_delayed} "
            f"legs interrupted={self.legs_interrupted} "
            f"stalled={self.legs_stalled_on_outage} "
            f"degraded={self.legs_degraded}"
        )


class FaultInjector:
    """Binds a :class:`FaultPlan` to one running simulation.

    The plan is the source of truth (timelines are queried, never raced);
    the injector adds runtime bookkeeping — fault counters, ``Site.available``
    toggling at window edges, and the sync dispositions the replication
    manager consumes.
    """

    def __init__(
        self,
        sim: "Simulator",
        plan: FaultPlan,
        sites: Mapping[int, "Site"] | None = None,
        network: "NetworkModel | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.sites = dict(sites or {})
        self.network = network
        self.tracer = tracer
        self.stats = FaultStats()
        self._started = False

    def _flip(self, site: "Site", available: bool, window: Window) -> None:
        site.set_available(available)
        if self.tracer is not None:
            self.tracer.emit(
                events.FAULT_UP if available else events.FAULT_DOWN,
                f"site:{site.site_id}",
                window_start=window.start,
                window_end=window.end,
            )

    def start(self) -> None:
        """Schedule site availability flips at outage edges (idempotent)."""
        if self._started:
            return
        self._started = True
        now = self.sim.now
        for site_id, timeline in self.plan.site_outages.items():
            site = self.sites.get(site_id)
            for window in timeline.windows:
                self.stats.outages_scheduled += 1
                self.stats.outage_minutes += window.duration
                if site is None:
                    continue
                if window.start >= now:
                    self.sim.call_at(
                        window.start,
                        lambda s=site, w=window: self._flip(s, False, w),
                    )
                elif window.contains(now):
                    self._flip(site, False, window)
                if window.end >= now:
                    self.sim.call_at(
                        window.end,
                        lambda s=site, w=window: self._flip(s, True, w),
                    )

    # -- executor-facing ---------------------------------------------------

    def site_down(self, site: int, time: float) -> bool:
        """Whether ``site`` is down at ``time``."""
        return self.plan.is_site_down(site, time)

    def site_up_after(self, site: int, time: float) -> float:
        """Earliest instant ≥ ``time`` at which ``site`` is up."""
        return self.plan.site_up_at(site, time)

    def next_outage_after(self, site: int, time: float) -> float:
        """Start of the next outage of ``site`` at or after ``time``."""
        return self.plan.next_outage_after(site, time)

    def leg_penalty(self, site: int, time: float, minutes: float) -> float:
        """Extra minutes a leg starting now at ``site`` pays to degradation.

        The whole leg is scaled by the bandwidth multiplier (remote work
        and shipped bytes both ride the saturated link) and each attempt
        pays the extra connection latency once.
        """
        degradation = self.plan.degradation_at(site, time)
        if degradation is None:
            return 0.0
        base_latency = (
            self.network.link(site).base_latency
            if self.network is not None
            else 0.0
        )
        penalty = minutes * (degradation.bandwidth_multiplier - 1.0)
        penalty += base_latency * (degradation.latency_multiplier - 1.0)
        if penalty > 0.0:
            self.stats.legs_degraded += 1
            self.stats.degraded_leg_minutes += penalty
        return penalty

    # -- replication-manager-facing ---------------------------------------

    def sync_disposition(self, replica: "Replica", time: float) -> tuple[str, float]:
        """Disposition of one scheduled sync completion, with counting."""
        kind, delay = self.plan.sync_disposition(replica.name, time)
        if kind == SYNC_SKIP:
            self.stats.syncs_skipped += 1
        elif kind == SYNC_DELAY:
            self.stats.syncs_delayed += 1
            self.stats.sync_delay_minutes += delay
        else:
            self.stats.syncs_applied += 1
        return kind, delay
