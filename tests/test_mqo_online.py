"""Unit tests: the rolling-window online MQO scheduler.

Covers admission control (IV-floor shedding, bounded queue deferral and
re-queue), window accounting, warm starts, trace events, the
``FederatedSystem`` streaming submit path, ``run_stream(online=True)``
and the checker's online invariant rules.
"""

from __future__ import annotations

import pytest

from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.experiments.config import TpchSetup, sync_interval_for_ratio
from repro.experiments.runner import run_stream
from repro.federation.costmodel import CostModel, CostParameters
from repro.mqo.ga import GAConfig
from repro.mqo.online import (
    OnlineConfig,
    OnlineMQOScheduler,
    OnlineStats,
    WindowRecord,
)
from repro.obs import events
from repro.obs.checker import TraceChecker
from repro.sim.timeline import Timeline
from repro.sim.trace import TraceRecord, Tracer
from repro.workload.query import DSSQuery, Workload

from tests.test_mqo_scheduling import build_catalog, burst_workload


def build_online(
    config: OnlineConfig | None = None,
    rates: DiscountRates | None = None,
    params: CostParameters | None = None,
    tracer: Tracer | None = None,
    generations: int = 10,
    seed: int = 1,
) -> OnlineMQOScheduler:
    catalog = build_catalog()
    cost_model = CostModel(catalog, params=params or CostParameters())
    return OnlineMQOScheduler(
        catalog,
        cost_model,
        rates or DiscountRates.symmetric(0.1),
        ga_config=GAConfig(generations=generations),
        seed=seed,
        tracer=tracer,
        config=config,
    )


class TestTimeline:
    def test_orders_by_time(self):
        timeline = Timeline()
        timeline.push(3.0, "c")
        timeline.push(1.0, "a")
        timeline.push(2.0, "b")
        assert [timeline.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_within_an_instant(self):
        timeline = Timeline()
        for tag in ("first", "second", "third"):
            timeline.push(5.0, tag)
        assert [timeline.pop()[1] for _ in range(3)] == [
            "first", "second", "third",
        ]

    def test_peek_len_bool(self):
        timeline = Timeline()
        assert not timeline and len(timeline) == 0
        timeline.push(2.0, "x", payload=42)
        assert timeline and len(timeline) == 1
        assert timeline.peek_time() == 2.0
        assert timeline.pop() == (2.0, "x", 42)
        with pytest.raises(IndexError):
            timeline.pop()


class TestOnlineConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(OptimizationError):
            OnlineConfig(window=0.0)
        with pytest.raises(OptimizationError):
            OnlineConfig(max_pending=0)
        with pytest.raises(OptimizationError):
            OnlineConfig(iv_floor=-0.1)


class TestOnlineScheduling:
    def test_everyone_admitted_executes_exactly_once(self):
        scheduler = build_online(OnlineConfig(window=2.0, max_pending=16))
        workload = burst_workload(count=6)
        decision = scheduler.run(workload)
        assert sorted(decision.permutation) == [1, 2, 3, 4, 5, 6]
        assert decision.stats.dispatched == 6
        assert decision.stats.shed == 0
        assert decision.shed == []

    def test_empty_workload_rejected(self):
        scheduler = build_online()
        with pytest.raises(OptimizationError):
            scheduler.run(Workload())

    def test_windows_are_recorded(self):
        scheduler = build_online(
            OnlineConfig(window=0.3, max_pending=16, eager_start=False)
        )
        decision = scheduler.run(burst_workload(count=6, gap=0.4))
        assert decision.stats.windows == len(decision.windows) >= 2
        for earlier, later in zip(decision.windows, decision.windows[1:]):
            assert later.index == earlier.index + 1
            assert later.time >= earlier.time
        for record in decision.windows:
            assert isinstance(record, WindowRecord)
            assert record.trigger in {"window", "completion", "idle"}
            assert record.reopt_seconds >= 0.0
        assert decision.stats.reopt_seconds >= sum(
            w.reopt_seconds for w in decision.windows
        ) * 0.99

    def test_iv_floor_sheds_hopeless_queries(self):
        # A floor above every candidate's best-case IV sheds the query; the
        # remaining stream still runs.
        scheduler = build_online(
            OnlineConfig(window=2.0, max_pending=16, iv_floor=0.5)
        )
        workload = Workload()
        workload.add(
            DSSQuery(query_id=1, name="good", tables=("t0",),
                     base_work=2_000.0),
            arrival=1.0,
        )
        # Enormous base work => long processing => IV decays below any
        # reasonable floor even in the best case.
        workload.add(
            DSSQuery(query_id=2, name="doomed", tables=("t1",),
                     base_work=500_000.0),
            arrival=1.2,
        )
        decision = scheduler.run(workload)
        assert decision.shed == [2]
        assert decision.stats.shed == 1
        assert decision.permutation == [1]
        assert all(
            a.query.query_id != 2 for a in decision.result.assignments
        )

    def test_bounded_queue_defers_and_requeues(self):
        scheduler = build_online(
            OnlineConfig(window=1.0, max_pending=2, eager_start=False)
        )
        decision = scheduler.run(burst_workload(count=6, gap=0.05))
        assert decision.stats.deferred > 0
        assert decision.stats.requeued == decision.stats.deferred
        # Deferral delays, never drops: everyone still executes.
        assert sorted(decision.permutation) == [1, 2, 3, 4, 5, 6]

    def test_warm_starts_engage_across_windows(self):
        scheduler = build_online(
            OnlineConfig(window=0.15, max_pending=16, eager_start=False)
        )
        decision = scheduler.run(burst_workload(count=8, gap=0.1))
        assert decision.stats.ga_runs >= 2
        assert decision.stats.warm_seeds >= 1

    def test_online_beats_fifo_under_contention(self):
        params = CostParameters(
            local_throughput=1_000.0, remote_throughput=400.0
        )
        rates = DiscountRates.symmetric(0.15)
        scheduler = build_online(
            OnlineConfig(window=1.0, max_pending=16), rates=rates,
            params=params,
        )
        workload = burst_workload(count=6, gap=0.1)
        decision = scheduler.run(workload)

        from repro.mqo.scheduler import WorkloadScheduler

        fifo = WorkloadScheduler(
            scheduler.catalog, scheduler.cost_provider, rates
        ).fifo(workload)
        assert (
            decision.total_information_value
            >= fifo.total_information_value - 1e-9
        )

    def test_events_emitted(self):
        tracer = Tracer(lambda: 0.0)
        scheduler = build_online(
            OnlineConfig(window=2.0, max_pending=16), tracer=tracer
        )
        scheduler.run(burst_workload(count=4))
        kinds = [record.kind for record in tracer.records]
        assert kinds.count(events.MQO_ADMIT) == 4
        assert events.MQO_WINDOW in kinds
        assert TraceChecker().check(tracer.records) == []

    def test_shed_event_carries_bound_and_floor(self):
        tracer = Tracer(lambda: 0.0)
        scheduler = build_online(
            OnlineConfig(window=2.0, max_pending=16, iv_floor=0.5),
            tracer=tracer,
        )
        workload = Workload()
        workload.add(
            DSSQuery(query_id=1, name="doomed", tables=("t0",),
                     base_work=500_000.0),
            arrival=0.5,
        )
        workload.add(
            DSSQuery(query_id=2, name="fine", tables=("t1",),
                     base_work=2_000.0),
            arrival=0.6,
        )
        scheduler.run(workload)
        shed = [r for r in tracer.records if r.kind == events.MQO_SHED]
        assert len(shed) == 1
        assert shed[0].detail["qid"] == 1
        assert shed[0].detail["bound"] < shed[0].detail["floor"] == 0.5


class TestSystemIntegration:
    @pytest.fixture(scope="class")
    def setup(self) -> TpchSetup:
        return TpchSetup(scale=0.001, seed=3)

    def test_submit_workload_online_realizes_schedule(self, setup):
        from repro.experiments.runner import _build, reissue_stream
        from repro.workload.arrival import poisson_arrivals

        config = setup.system_config(
            "ivqp", DiscountRates.symmetric(0.05),
            sync_interval_for_ratio(10.0), seed=1,
        )
        system = _build(config, "ivqp")
        queries = reissue_stream(setup.queries()[:6])
        arrivals = poisson_arrivals(5.0, len(queries), seed=3)
        workload = Workload.from_queries(queries, arrivals=arrivals)
        decision = system.submit_workload_online(
            workload, config=OnlineConfig(window=8.0, max_pending=8)
        )
        system.run()
        assert system.online is decision
        executed = len(decision.result.assignments)
        assert len(system.outcomes) == executed == 6

    def test_run_stream_online_mode(self, setup):
        config = setup.system_config(
            "ivqp", DiscountRates.symmetric(0.05),
            sync_interval_for_ratio(10.0), seed=1,
        )
        result = run_stream(
            config, "ivqp", setup.queries()[:5], mean_interarrival=6.0,
            online=True,
            online_config=OnlineConfig(window=10.0, max_pending=8),
        )
        assert result.online is not None
        assert result.online.stats.submitted == 5
        assert len(result.outcomes) == result.online.stats.dispatched
        assert result.mean_iv > 0.0

    def test_run_stream_batch_mode_has_no_online_decision(self, setup):
        config = setup.system_config(
            "ivqp", DiscountRates.symmetric(0.05),
            sync_interval_for_ratio(10.0), seed=1,
        )
        result = run_stream(
            config, "ivqp", setup.queries()[:3], mean_interarrival=6.0,
        )
        assert result.online is None

    def test_online_metrics_surface_in_registry(self, setup):
        config = setup.system_config(
            "ivqp", DiscountRates.symmetric(0.05),
            sync_interval_for_ratio(10.0), seed=1,
        )
        result = run_stream(
            config, "ivqp", setup.queries()[:4], mean_interarrival=6.0,
            online=True,
            online_config=OnlineConfig(window=10.0, max_pending=8),
        )
        counters = result.system.metrics().snapshot()["counters"]
        assert counters["mqo.online.submitted"] == 4.0
        assert counters["mqo.online.dispatched"] == float(
            result.online.stats.dispatched
        )
        assert "mqo.online.reopt_seconds" in counters


class TestCheckerOnlineRules:
    def _record(self, kind, subject, time=0.0, **detail) -> TraceRecord:
        return TraceRecord(time=time, kind=kind, subject=subject, detail=detail)

    def test_window_indices_must_increase(self):
        records = [
            self._record(events.MQO_WINDOW, "window:0", index=0, order=[]),
            self._record(events.MQO_WINDOW, "window:0", index=0, order=[]),
        ]
        violations = TraceChecker().check(records)
        assert any(v.rule == "window-monotonic" for v in violations)

    def test_window_order_requires_prior_admission(self):
        records = [
            self._record(events.MQO_WINDOW, "window:0", index=0, order=[7]),
        ]
        violations = TraceChecker().check(records)
        assert any(v.rule == "window-order-admitted" for v in violations)

    def test_shed_then_admit_flagged(self):
        records = [
            self._record(events.MQO_SHED, "q", qid=1, bound=0.0, floor=0.5),
            self._record(events.MQO_ADMIT, "q", qid=1),
        ]
        violations = TraceChecker().check(records)
        assert any(v.rule == "admit-shed-exclusive" for v in violations)

    def test_double_admit_without_requeue_flagged(self):
        records = [
            self._record(events.MQO_ADMIT, "q", qid=1, requeued=False),
            self._record(events.MQO_ADMIT, "q", qid=1, requeued=False),
        ]
        violations = TraceChecker().check(records)
        assert any(v.rule == "admit-unique" for v in violations)

    def test_requeued_admission_is_legal(self):
        records = [
            self._record(events.MQO_ADMIT, "q", qid=1, requeued=False),
            self._record(events.MQO_ADMIT, "q", qid=1, requeued=True),
            self._record(
                events.MQO_WINDOW, "window:0", index=0, order=[1]
            ),
        ]
        assert TraceChecker().check(records) == []

    def test_shed_query_must_not_execute(self):
        records = [
            self._record(events.MQO_SHED, "q", qid=1, bound=0.0, floor=0.5),
            self._record(events.EXEC_START, "q", time=1.0, qid=1),
            self._record(events.COMPLETE, "q", time=2.0, qid=1),
        ]
        checker = TraceChecker(require_complete=False)
        violations = checker.check(records)
        assert any(v.rule == "shed-no-exec" for v in violations)


class TestOnlineStats:
    def test_defaults_are_zero(self):
        stats = OnlineStats()
        assert stats.submitted == stats.dispatched == stats.windows == 0
        assert stats.reopt_seconds == 0.0


class TestReoptAccounting:
    """Regression: re-optimization time is booked through the Clock seam.

    The window pass used to read the module-level ``perf_counter()``
    directly; under a :class:`~repro.sim.clocks.WallClock` that
    double-booked the cost (once as ``reopt_seconds``, again as stream
    latency measured by the same timer).  It now reads
    ``clock.perf_seconds()`` — provable with a clock whose perf counter
    is synthetic.
    """

    def test_reopt_seconds_are_read_from_the_session_clock(self):
        from repro.sim.clocks import SimClock

        class CountingClock(SimClock):
            # Every reading advances exactly 0.5 synthetic seconds, so
            # each window's (end - began) pair books exactly 0.5 — a
            # total only reachable through *this* clock.
            def __init__(self):
                super().__init__()
                self.readings = 0

            def perf_seconds(self):
                self.readings += 1
                return self.readings * 0.5

        scheduler = build_online()
        workload = burst_workload(count=4)
        clock = CountingClock()
        session = scheduler.session(workload, clock)
        ordered = workload.sorted_by_arrival()
        session.arrivals_expected = len(ordered)
        for query in ordered:
            clock.push(
                workload.arrival_of(query.query_id), "arrival", query.query_id
            )
        while clock:
            now, tag, payload = clock.pop()
            session.handle(now, tag, payload)
        session.drain()
        stats = session.stats
        assert stats.windows > 0 and clock.readings >= 2 * stats.windows
        assert stats.reopt_seconds == pytest.approx(0.5 * stats.windows)
        assert all(
            record.reopt_seconds == pytest.approx(0.5)
            for record in session.decision.windows
        )

    @pytest.mark.slow
    def test_ext4_numbers_unchanged_under_simclock(self):
        # The committed BENCH_online.json was produced by the
        # pre-refactor scheduler; the clock-agnostic session must realize
        # the exact same online total IV on the same reduced EXT4 stream.
        import json
        from pathlib import Path

        from repro.experiments.fig9 import Fig9Config, build_mqo_scheduler
        from repro.experiments.runner import reissue_stream
        from repro.workload.arrival import poisson_arrivals
        from repro.workload.generator import random_queries

        baseline = json.loads(Path("BENCH_online.json").read_text())

        scheduler, setup = build_mqo_scheduler(
            Fig9Config(ga=GAConfig(generations=30))
        )
        templates = random_queries(setup.instance, count=8, seed=23)
        stream = reissue_stream(templates, rounds=2)
        arrivals = poisson_arrivals(1.0, len(stream), seed=7)
        workload = Workload.from_queries(stream, arrivals=arrivals)
        online = OnlineMQOScheduler(
            scheduler.catalog,
            scheduler.cost_provider,
            scheduler.default_rates,
            ga_config=GAConfig(generations=20),
            seed=scheduler.seed,
            config=OnlineConfig(window=4.0, max_pending=16, iv_floor=0.02),
        )
        decision = online.run(workload)
        assert decision.total_information_value == pytest.approx(
            baseline["total_iv"]["online"], abs=1e-9,
        )


class TestRangeCache:
    """Regression: ranges were re-derived from candidates every pass.

    ``execution_ranges`` used to walk ``evaluator.candidates(query)`` for
    every pending query on *every* window pass (and ``dispatch`` probed
    candidates per event); ranges now come from
    :meth:`WorkloadEvaluator.range_of`, derived once per query and kept
    for the evaluator's lifetime.
    """

    def test_candidates_derived_once_per_query(self, monkeypatch):
        from repro.mqo.evaluator import WorkloadEvaluator

        calls: list[int] = []
        original = WorkloadEvaluator.candidates

        def counting(self, query):
            calls.append(query.query_id)
            return original(self, query)

        monkeypatch.setattr(WorkloadEvaluator, "candidates", counting)
        scheduler = build_online(
            OnlineConfig(window=0.3, max_pending=16, eager_start=False)
        )
        decision = scheduler.run(burst_workload(count=6, gap=0.4))
        # Several passes ran, yet each query's candidate set was walked
        # exactly once (at plan compilation) — not once per pass.
        assert decision.stats.windows >= 2
        assert sorted(calls) == [1, 2, 3, 4, 5, 6]

    def test_range_of_survives_rebase(self):
        from repro.federation.site import LOCAL_SITE_ID
        from repro.mqo.conflict import execution_ranges
        from repro.mqo.evaluator import WorkloadEvaluator

        catalog = build_catalog()
        cost_model = CostModel(catalog, params=CostParameters())
        workload = burst_workload(count=4)
        evaluator = WorkloadEvaluator(
            catalog, cost_model, DiscountRates.symmetric(0.1), workload
        )
        before = execution_ranges(evaluator)
        # Rebasing onto committed mid-stream state must not invalidate
        # the range cache: ranges depend only on arrival and the
        # immutable candidate set, never on server availability.
        evaluator.rebase({LOCAL_SITE_ID: 123.0, 1: 99.0})
        after = execution_ranges(evaluator)
        assert after == before
        for rng in before:
            assert rng.start == workload.arrival_of(rng.query_id)
            assert rng.end > rng.start


class TestHotPathFixes:
    """Regressions for the admission/dispatch hot-path audit."""

    def test_dispatch_never_replays_candidates_naively(self, monkeypatch):
        # The dispatcher probed the plan head by realizing every
        # candidate with the naive ``_realize`` loop on every event; it
        # now goes through the compiled choice path.
        from repro.mqo.evaluator import WorkloadEvaluator

        calls: list[int] = []
        original = WorkloadEvaluator._realize

        def counting(self, plan, arrival, free_at):
            calls.append(1)
            return original(self, plan, arrival, free_at)

        monkeypatch.setattr(WorkloadEvaluator, "_realize", counting)
        scheduler = build_online(OnlineConfig(window=2.0, max_pending=16))
        decision = scheduler.run(burst_workload(count=6))
        assert decision.stats.dispatched == 6
        assert calls == []

    def test_choose_best_matches_naive_candidate_scan(self):
        from repro.mqo.evaluator import WorkloadEvaluator

        catalog = build_catalog()
        cost_model = CostModel(catalog, params=CostParameters())
        workload = burst_workload(count=5)
        evaluator = WorkloadEvaluator(
            catalog, cost_model, DiscountRates.symmetric(0.1), workload
        )
        for free_at in ({}, {0: 3.0}, {0: 7.5, 1: 4.0, 2: 9.0}):
            for query in workload.queries:
                evaluator.fast_path = False
                b = evaluator.choose_best(query.query_id, dict(free_at))
                evaluator.fast_path = True
                a = evaluator.choose_best(query.query_id, dict(free_at))
                assert a.plan is b.plan
                assert a.begin == b.begin
                assert a.completed == b.completed
                assert a.data_timestamp == b.data_timestamp
                assert a.information_value == b.information_value
        # Repeated probes under unchanged clocks hit the choice memo.
        before = evaluator.stats.choice_hits
        evaluator.choose_best(1, {0: 3.0})
        evaluator.choose_best(1, {0: 3.0})
        assert evaluator.stats.choice_hits >= before + 1

    def test_rebase_noop_preserves_prefix_trie(self):
        from repro.mqo.evaluator import WorkloadEvaluator

        catalog = build_catalog()
        cost_model = CostModel(catalog, params=CostParameters())
        workload = burst_workload(count=4)
        evaluator = WorkloadEvaluator(
            catalog, cost_model, DiscountRates.symmetric(0.1), workload
        )
        evaluator.rebase({0: 2.0})
        evaluator.evaluate_sequence([1, 2, 3])
        warm = evaluator.stats.trie_entries
        assert warm > 0
        # Same base: the trie (a pure function of the base) must survive.
        evaluator.rebase({0: 2.0})
        assert evaluator.stats.trie_entries == warm
        # Different base: cached prefixes are stale and must go.
        evaluator.rebase({0: 5.0})
        assert evaluator.stats.trie_entries == 0

    def test_deferred_requeue_preserves_fifo_order(self):
        scheduler = build_online(
            OnlineConfig(window=1.0, max_pending=2, eager_start=False)
        )
        decision = scheduler.run(burst_workload(count=8, gap=0.05))
        session_log = [
            entry for entry in _decisions_of(scheduler, count=8)
        ]
        deferred = [qid for kind, qid in session_log if kind == "defer"]
        requeued = [qid for kind, qid in session_log if kind == "requeue"]
        assert deferred, "scenario must actually overflow the queue"
        assert requeued == deferred
        assert sorted(decision.permutation) == list(range(1, 9))

    def test_decision_log_is_deterministic_under_arrival_ties(self):
        # Depth audit: identical reruns over a stream with tied arrivals
        # must produce identical decision logs (admission order, window
        # orders, dispatch times).
        workload = Workload()
        for index in range(10):
            workload.add(
                DSSQuery(
                    query_id=index + 1, name=f"q{index + 1}",
                    tables=(f"t{index % 6}", f"t{(index + 1) % 6}"),
                    base_work=8_000.0,
                ),
                arrival=1.0 + 0.25 * (index // 2),  # pairs tie exactly
            )
        logs = []
        for _ in range(2):
            scheduler = build_online(
                OnlineConfig(window=0.5, max_pending=4, eager_start=False)
            )
            logs.append(_run_collecting_decisions(scheduler, workload))
        assert logs[0] == logs[1]

    def test_group_index_drains_with_the_plan(self):
        from repro.sim.clocks import SimClock

        scheduler = build_online(OnlineConfig(window=2.0, max_pending=16))
        workload = burst_workload(count=6)
        clock = SimClock()
        session = scheduler.session(workload, clock)
        ordered = workload.sorted_by_arrival()
        session.arrivals_expected = len(ordered)
        for query in ordered:
            clock.push(
                workload.arrival_of(query.query_id), "arrival",
                query.query_id,
            )
        while clock:
            now, tag, payload = clock.pop()
            session.handle(now, tag, payload)
        session.drain()
        # Every admitted range was retired when its query dispatched.
        assert len(session.group_index) == 0
        assert session.group_index.groups() == []
        assert session.stats.dispatched == 6


def _run_collecting_decisions(scheduler, workload):
    from repro.sim.clocks import SimClock

    clock = SimClock()
    session = scheduler.session(workload, clock)
    ordered = workload.sorted_by_arrival()
    session.arrivals_expected = len(ordered)
    for query in ordered:
        clock.push(
            workload.arrival_of(query.query_id), "arrival", query.query_id
        )
    while clock:
        now, tag, payload = clock.pop()
        session.handle(now, tag, payload)
    session.drain()
    return list(session.decisions)


def _decisions_of(scheduler, count):
    workload = burst_workload(count=count, gap=0.05)
    return [
        entry
        for entry in _run_collecting_decisions(scheduler, workload)
        if entry[0] in {"defer", "requeue"}
    ]


class TestIncrementalGroupsConfig:
    def test_sweep_and_incremental_paths_agree_bit_for_bit(self):
        results = []
        for incremental in (True, False):
            scheduler = build_online(
                OnlineConfig(
                    window=0.5, max_pending=4, eager_start=False,
                    incremental_groups=incremental,
                )
            )
            workload = burst_workload(count=8, gap=0.1)
            results.append(_run_collecting_decisions(scheduler, workload))
        assert results[0] == results[1]

    def test_verify_groups_off_still_schedules(self):
        scheduler = build_online(
            OnlineConfig(window=2.0, max_pending=16, verify_groups=False)
        )
        decision = scheduler.run(burst_workload(count=5))
        assert sorted(decision.permutation) == [1, 2, 3, 4, 5]
