"""The live-telemetry run: stream-mqo with the observability loop closed.

Where :mod:`repro.experiments.stream_mqo` compares scheduling approaches
analytically, this module runs the same online-MQO scenario with the full
live stack attached *before the first event*:

* a :class:`~repro.obs.live.LiveRegistry` folding every trace record into
  sliding-window rates and streaming quantile sketches;
* an :class:`~repro.obs.slo.SLOMonitor` evaluating declarative rules
  against each fresh snapshot, emitting ``alert.*`` events back into the
  same trace;
* optionally the wall-clock :data:`~repro.obs.profile.PROFILER`, so the
  run also yields a per-phase attribution of where the *real* time went;
* a snapshot sampler that captures the registry at every re-optimization
  window and alert edge — the time series the dashboard and HTML report
  render.

The result carries everything downstream consumers need: the drained
system (trace, ledger, metrics), the registry, the monitor's alert log,
the sampled snapshots and the profiler state.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.experiments.trace_scenarios import trace_stream_online
from repro.obs import events
from repro.obs.live import LiveRegistry
from repro.obs.profile import PROFILER, WallProfiler
from repro.obs.slo import SLOMonitor, SLORule, default_slo_rules

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.system import FederatedSystem
    from repro.sim.trace import TraceRecord

__all__ = ["LiveRunResult", "run_live"]

#: Record kinds that trigger a snapshot sample (plus the final one).
_SAMPLE_KINDS = frozenset({events.MQO_WINDOW}) | events.ALERT_KINDS


@dataclass
class LiveRunResult:
    """Everything one live run produced."""

    system: "FederatedSystem"
    registry: LiveRegistry
    monitor: SLOMonitor
    snapshots: list[dict] = field(default_factory=list)
    profiler: WallProfiler | None = None

    @property
    def alerts(self):
        """The monitor's alert log (open and closed)."""
        return self.monitor.alerts


def run_live(
    rules: "list[SLORule] | None" = None,
    profile: bool = False,
    num_queries: int = 12,
    rounds: int = 2,
    mean_interarrival: float = 4.0,
    window: float = 10.0,
    half_life: float = 10.0,
) -> LiveRunResult:
    """Run the online stream scenario with live telemetry attached.

    ``rules`` defaults to :func:`~repro.obs.slo.default_slo_rules`.  With
    ``profile=True`` the shared profiler collects for the duration of the
    run (its previous records are reset; it is disabled again on return,
    with the records kept for rendering).
    """
    registry = LiveRegistry(window=window, half_life=half_life)
    monitor = SLOMonitor(
        default_slo_rules() if rules is None else rules, registry
    )
    snapshots: list[dict] = []

    def sample(record: "TraceRecord") -> None:
        if record.kind in _SAMPLE_KINDS:
            snapshots.append(registry.snapshot(record.time))

    def hook(system: "FederatedSystem") -> None:
        registry.attach(system.tracer)
        monitor.attach(system.tracer)
        # Attached after the monitor: each sampled snapshot reflects the
        # registry *and* any alert the record just caused.
        system.tracer.subscribe(sample)

    if profile:
        PROFILER.reset()
        PROFILER.enable()
    try:
        system = trace_stream_online(
            num_queries=num_queries,
            rounds=rounds,
            mean_interarrival=mean_interarrival,
            on_system=hook,
        )
    finally:
        if profile:
            PROFILER.disable()
    # End-of-run finalization: force-close any alert still breaching so
    # the trace passes the alert-alternation audit and the dashboard
    # never shows a breach outliving the data.
    monitor.finalize(system.sim.now)
    snapshots.append(registry.snapshot(system.sim.now))
    return LiveRunResult(
        system=system,
        registry=registry,
        monitor=monitor,
        snapshots=snapshots,
        profiler=PROFILER if profile else None,
    )
