"""Plan execution inside the simulation.

Executes a chosen :class:`~repro.core.plan.QueryPlan` as simulation
processes: wait until the plan's start time, run the remote legs in
parallel on their sites' servers, assemble at the local federation server,
transmit the result, and record a :class:`QueryOutcome` with *realized*
latencies and information value.

Realized freshness is accounted honestly: a base table's data is as of the
moment its remote leg actually starts (queuing included), and a replica's
freshness is whatever the replica holds when local processing begins — if a
synchronization landed while the query sat in queue, the result is fresher
than planned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import QueryPlan, VersionKind
from repro.core.value import information_value
from repro.federation.catalog import Catalog
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.sim.scheduler import Simulator

__all__ = ["QueryOutcome", "PlanExecutor"]


@dataclass
class QueryOutcome:
    """Realized execution record of one query."""

    plan: QueryPlan
    submitted_at: float
    started_at: float
    completed_at: float
    data_timestamp: float
    queue_wait: float

    @property
    def query(self):
        """The executed query."""
        return self.plan.query

    @property
    def computational_latency(self) -> float:
        """Realized CL: submission → result receipt."""
        return self.completed_at - self.submitted_at

    @property
    def synchronization_latency(self) -> float:
        """Realized SL: stalest data read → result receipt."""
        return max(0.0, self.completed_at - self.data_timestamp)

    @property
    def information_value(self) -> float:
        """Realized IV of the delivered report."""
        return information_value(
            self.plan.query.business_value,
            self.computational_latency,
            self.synchronization_latency,
            self.plan.rates,
        )

    def describe(self) -> str:
        """One-line summary of the outcome."""
        return (
            f"{self.plan.query.name}: CL={self.computational_latency:.2f} "
            f"SL={self.synchronization_latency:.2f} "
            f"IV={self.information_value:.4f} "
            f"(wait={self.queue_wait:.2f})"
        )


class PlanExecutor:
    """Runs plans on the system's sites and collects outcomes."""

    def __init__(
        self,
        sim: Simulator,
        catalog: Catalog,
        sites: dict[int, Site],
    ) -> None:
        self.sim = sim
        self.catalog = catalog
        self.sites = sites
        self.outcomes: list[QueryOutcome] = []

    def site(self, site_id: int) -> Site:
        """Look up a site (local server under :data:`LOCAL_SITE_ID`)."""
        return self.sites[site_id]

    def execute(self, plan: QueryPlan):
        """Start executing a plan; returns the driving process (joinable)."""
        return self.sim.process(self._run(plan), name=f"exec:{plan.query.name}")

    # -- simulation processes ----------------------------------------------

    def _remote_leg(self, site_id: int, minutes: float, freshness_box: list):
        site = self.site(site_id)
        request = site.server.request()
        yield request
        freshness_box.append(self.sim.now)  # base data is as-of leg start
        try:
            yield self.sim.timeout(minutes)
        finally:
            site.server.release(request)

    def _run(self, plan: QueryPlan):
        sim = self.sim
        submitted_at = plan.submitted_at
        # Delayed plans wait for their scheduled start (e.g. a sync point).
        if plan.start_time > sim.now:
            yield sim.timeout(plan.start_time - sim.now)
        started_at = sim.now

        # Remote legs run in parallel on their sites.
        base_freshness: list[float] = []
        legs = [
            sim.process(
                self._remote_leg(site_id, minutes, base_freshness),
                name=f"leg:{plan.query.name}@{site_id}",
            )
            for site_id, minutes in plan.cost.site_legs
        ]
        if legs:
            yield sim.all_of(legs)

        # Local assembly / replica scans at the federation server.
        local = self.site(LOCAL_SITE_ID)
        request = local.server.request()
        yield request
        local_start = sim.now
        try:
            yield sim.timeout(plan.cost.local_minutes)
        finally:
            local.server.release(request)

        if plan.cost.transmission > 0:
            yield sim.timeout(plan.cost.transmission)
        completed_at = sim.now

        # Realized freshness per version kind.
        freshness: list[float] = []
        base_iter = iter(base_freshness)
        for version in plan.versions:
            if version.kind is VersionKind.BASE:
                freshness.append(version.freshness)
            else:
                replica = self.catalog.replica(version.table)
                freshness.append(replica.freshness_at(local_start))
        if base_freshness:
            # All base tables in this plan share the legs' start instants;
            # the stalest (earliest-started) leg bounds their freshness.
            earliest_leg = min(base_freshness)
            freshness = [
                earliest_leg if v.kind is VersionKind.BASE else f
                for v, f in zip(plan.versions, freshness)
            ]

        data_timestamp = min(freshness) if freshness else started_at
        outcome = QueryOutcome(
            plan=plan,
            submitted_at=submitted_at,
            started_at=started_at,
            completed_at=completed_at,
            data_timestamp=data_timestamp,
            queue_wait=local_start - started_at
            - (max((m for _s, m in plan.cost.site_legs), default=0.0)),
        )
        outcome.queue_wait = max(0.0, outcome.queue_wait)
        self.outcomes.append(outcome)
        return outcome
