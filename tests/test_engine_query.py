"""Unit tests: logical query representation and builder."""

from __future__ import annotations

import pytest

from repro.engine.expr import Col, Const
from repro.engine.query import LogicalQuery, QueryBuilder
from repro.errors import EngineError


def sample_query() -> LogicalQuery:
    return (
        QueryBuilder("q")
        .table("orders", "o")
        .table("customer", "c")
        .join("o.o_cust", "c.c_id")
        .where(Col("o.o_price") > Const(10.0))
        .group("c.c_nation")
        .agg("sum", Col("o.o_price"), "rev")
        .build()
    )


class TestValidation:
    def test_requires_tables(self):
        with pytest.raises(EngineError):
            QueryBuilder("empty").build()

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(EngineError):
            (QueryBuilder("dup")
             .table("orders", "o").table("customer", "o").build())

    def test_aggregates_and_projections_exclusive(self):
        with pytest.raises(EngineError):
            (QueryBuilder("both")
             .table("orders", "o")
             .agg("count", None, "n")
             .select("x", Col("o.o_id"))
             .build())


class TestAccessors:
    def test_aliases_and_table_names(self):
        query = sample_query()
        assert query.aliases == ("o", "c")
        assert query.table_names == ("orders", "customer")

    def test_table_names_deduplicate_self_joins(self):
        query = (
            QueryBuilder("self")
            .table("nation", "n1").table("nation", "n2")
            .join("n1.n_regionkey", "n2.n_regionkey")
            .build()
        )
        assert query.table_names == ("nation",)

    def test_table_for_alias(self):
        query = sample_query()
        assert query.table_for_alias("c") == "customer"
        with pytest.raises(EngineError):
            query.table_for_alias("zz")

    def test_join_terms_vs_filter_terms(self):
        query = sample_query()
        assert len(query.join_terms()) == 1
        assert len(query.filter_terms()) == 1

    def test_filters_for_alias(self):
        query = sample_query()
        assert len(query.filters_for_alias("o")) == 1
        assert query.filters_for_alias("c") == []

    def test_multi_table_filter_not_attributed_to_single_alias(self):
        query = (
            QueryBuilder("multi")
            .table("orders", "o").table("customer", "c")
            .join("o.o_cust", "c.c_id")
            .where(Col("o.o_price") > Col("c.c_nation"))
            .build()
        )
        assert query.filters_for_alias("o") == []
        assert query.filters_for_alias("c") == []
        assert len(query.filter_terms()) == 1


class TestBuilder:
    def test_alias_defaults_to_table_name(self):
        query = QueryBuilder("q").table("orders").build()
        assert query.aliases == ("orders",)

    def test_order_and_take(self):
        query = (
            QueryBuilder("q")
            .table("orders", "o")
            .select("id", Col("o.o_id"))
            .order("id", descending=True)
            .take(5)
            .build()
        )
        assert query.order_by == ("id",)
        assert query.descending
        assert query.limit == 5
