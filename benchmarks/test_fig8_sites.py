"""Figure 8 — information value vs number of sites (synthetic).

Reduced sweep (three site counts, 60 queries); full size via
``python -m repro fig8``.  Asserts the paper's shapes:

* IVQP beats Federation and Data Warehouse at every point;
* under uniform placement the IV of IVQP and Federation falls as sites are
  added (cross-site coordination overhead);
* under skewed placement the curves barely move once past the smallest
  configuration.
"""

from __future__ import annotations

from repro.experiments.fig8 import Fig8Config, run_fig8


def bench_config() -> Fig8Config:
    return Fig8Config(
        site_counts=(2, 10, 22),
        query_count=60,
    )


def _value(table, placement, sites, approach):
    for row in table.rows:
        if (row[0], row[1], row[2]) == (placement, sites, approach):
            return row[3]
    raise AssertionError(f"missing {placement}/{sites}/{approach}")


def test_fig8_sites(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_fig8(bench_config()), rounds=1, iterations=1
    )
    show(table.render())

    config = bench_config()
    for placement in config.placements:
        for sites in config.site_counts:
            ivqp = _value(table, placement, sites, "ivqp")
            assert ivqp >= _value(table, placement, sites, "federation") - 1e-6
            assert ivqp >= _value(table, placement, sites, "warehouse") - 1e-6

    # Uniform: more sites -> lower IV for IVQP and Federation.
    for approach in ("ivqp", "federation"):
        assert _value(table, "uniform", 22, approach) < _value(
            table, "uniform", 2, approach
        )
    # Skewed: flat beyond the smallest configuration.
    for approach in ("ivqp", "federation"):
        mid = _value(table, "skewed", 10, approach)
        wide = _value(table, "skewed", 22, approach)
        assert abs(wide - mid) < 0.02
    # Uniform degrades more than skewed from 2 to 22 sites.
    uniform_drop = _value(table, "uniform", 2, "ivqp") - _value(
        table, "uniform", 22, "ivqp"
    )
    skewed_drop = _value(table, "skewed", 2, "ivqp") - _value(
        table, "skewed", 22, "ivqp"
    )
    assert uniform_drop > skewed_drop
