"""Golden-trace regression: the fig4 walkthrough's trace is frozen.

``tests/golden/fig4_trace.jsonl`` is the canonical, committed trace of the
paper's Figure 4 scatter-and-gather walkthrough executed on the runtime.
Any behaviour change in the planner, executor, replication manager or
tracer shows up as a diff against this file.  To regenerate after an
*intentional* change::

    PYTHONPATH=src python - <<'EOF'
    from repro.experiments.trace_scenarios import trace_fig4
    from repro.obs import normalize
    with open('tests/golden/fig4_trace.jsonl', 'w') as handle:
        handle.write(normalize(trace_fig4().tracer.records) + '\n')
    EOF
"""

from __future__ import annotations

import pathlib

from repro.experiments.trace_scenarios import trace_fig4
from repro.obs import TraceChecker, from_jsonl, ledger_from_records, normalize

GOLDEN = pathlib.Path(__file__).parent / "golden" / "fig4_trace.jsonl"


def test_fig4_trace_matches_golden():
    system = trace_fig4()
    expected = GOLDEN.read_text()
    assert normalize(system.tracer.records) + "\n" == expected


def test_golden_trace_passes_the_checker():
    TraceChecker().assert_clean(from_jsonl(GOLDEN.read_text()))


def test_golden_ledger_recomputes_paper_iv():
    records = from_jsonl(GOLDEN.read_text())
    (entry,) = ledger_from_records(records)
    # The walkthrough's headline numbers (ICDCS 2009, Figure 4): the chosen
    # plan starts at the T2 sync point, reads T3 from its base site and the
    # other three tables from replicas, with the result as-of T4's refresh.
    assert entry.submitted_at == 11.0
    assert entry.started_at == 14.0
    assert entry.completed_at == 18.0
    assert entry.computational_latency == 7.0
    assert entry.data_timestamp == 12.5
    assert entry.synchronization_latency == 5.5
    assert entry.recompute_iv() == entry.reported_iv
    assert entry.stalest is not None and entry.stalest.table == "T4"
    kinds = {version.table: version.kind for version in entry.versions}
    assert kinds == {
        "T1": "replica", "T2": "replica", "T3": "base", "T4": "replica"
    }
