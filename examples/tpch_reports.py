"""Execute real TPC-H reports on the mini relational engine.

Everything upstream of the simulator is real: this example generates a
TPC-H micro-instance, runs three of the 22 reports through the engine's
planner (statistics-driven join ordering, hash joins, aggregation), prints
the actual result rows, and shows how the planner's cost estimate — the
number the federation cost model calibrates computational latency from —
compares with the measured execution work.

Run:  python examples/tpch_reports.py
"""

from __future__ import annotations

from repro.data import generate_tpch
from repro.engine import Planner
from repro.workload import tpch_queries


def main() -> None:
    instance = generate_tpch(scale=0.002)
    planner = Planner(instance.database)
    by_name = {query.name: query for query in tpch_queries(instance)}

    for name in ("Q1", "Q5", "Q10"):
        query = by_name[name]
        plan = planner.plan(query.logical)
        rows = plan.execute()
        print(f"=== {name} ===")
        print(f"join order   : {' -> '.join(plan.join_order)}")
        print(f"est. work    : {plan.estimate.work_units:,.0f} units "
              f"(measured {plan.stats.total_work:,} after execution)")
        print(f"result rows  : {len(rows)}")
        for row in rows[:5]:
            cells = ", ".join(f"{k}={_short(v)}" for k, v in row.items())
            print(f"    {cells}")
        if len(rows) > 5:
            print(f"    ... {len(rows) - 5} more")
        print()

    print("The est./measured ratio above is the planner accuracy the "
          "federation cost model inherits when it converts work units "
          "into simulated processing minutes.")


def _short(value) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


if __name__ == "__main__":
    main()
