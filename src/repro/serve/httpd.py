"""A stdlib-only asyncio HTTP/1.1 front end for :class:`QueryService`.

No web framework: requests are parsed straight off the stream reader and
answered with ``Connection: close`` semantics — one request per
connection, which keeps the parser ~50 lines and is plenty for a
reproduction-grade service (the load generator opens a connection per
query, like the paper's per-report submissions).

Routes
------

* ``POST /submit`` — body ``{"template": <index|name>,
  "business_value": float?, "wait": bool?}``.  Admission is decided live
  by the online scheduler; with ``wait`` (default true) the response
  carries the completed result and its IV ledger entry, otherwise the
  admission outcome returns immediately and ``GET /result/<qid>`` blocks
  for the result.
* ``GET /result/<qid>`` — the query's result (blocks until completion).
* ``GET /metrics`` — the :class:`~repro.obs.live.LiveRegistry` snapshot.
  ``?format=json`` (the default) returns the JSON snapshot (counters,
  gauges, rates, quantiles, histograms, per-table sync gauges at the
  current logical time); ``?format=prometheus`` returns the same state in
  Prometheus text exposition format 0.0.4 (``text/plain``).  Any other
  value is a 400 naming the supported formats.
* ``GET /status`` (also ``/``) — the live HTML dashboard.
* ``GET /healthz`` — liveness probe with clock readings.
* ``POST /shutdown`` — graceful drain: stop accepting, finish in-flight
  work, finalize SLO alerts, stop the server.

:func:`http_request` is the matching minimal client used by the load
generator and the smoke test.
"""

from __future__ import annotations

import asyncio
import json
import typing

from repro.errors import WorkloadError

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import QueryService

__all__ = ["HTTPServer", "http_request"]

#: Bound on request head + body (a submission is a tiny JSON object).
_MAX_HEAD_BYTES = 16384
_MAX_BODY_BYTES = 65536

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: dict) -> bytes:
    return _response(status, json.dumps(payload).encode("utf-8"))


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes]:
    """Parse one request: ``(method, path, headers, body)``."""
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEAD_BYTES:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line {lines[0]!r}") from None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class HTTPServer:
    """Serves one :class:`QueryService` over HTTP until shutdown."""

    def __init__(
        self,
        service: "QueryService",
        host: str = "127.0.0.1",
        port: int = 8763,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._runner: asyncio.Task | None = None
        self._shutdown = asyncio.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves port 0 after start)."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the socket and start the service's scheduling loop."""
        self._runner = asyncio.create_task(
            self.service.run(), name="repro-serve-loop"
        )
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def serve_until_shutdown(self) -> None:
        """Block until ``POST /shutdown`` (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Trigger the same graceful drain as ``POST /shutdown``."""
        self._shutdown.set()

    async def stop(self) -> None:
        """Drain the scheduling loop and close the listener."""
        self.service.begin_shutdown()
        if self._runner is not None:
            await self._runner
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, _headers, body = await _read_request(reader)
            except (
                ValueError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
            ) as error:
                writer.write(_json_response(400, {"error": str(error)}))
                return
            try:
                response = await self._route(method, path, body)
            except WorkloadError as error:
                response = _json_response(400, {"error": str(error)})
            except Exception as error:  # pragma: no cover - defensive
                response = _json_response(500, {"error": repr(error)})
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(self, method: str, path: str, body: bytes) -> bytes:
        path, _, query_string = path.partition("?")
        if path in ("/", "/status") and method == "GET":
            return _response(
                200, self.service.status_html().encode("utf-8"),
                content_type="text/html; charset=utf-8",
            )
        if path == "/metrics" and method == "GET":
            return self._metrics(query_string)
        if path == "/healthz" and method == "GET":
            return _json_response(200, {
                "ok": True,
                "accepting": self.service.accepting,
                "stream_minutes": self.service.clock.now,
                "pending_events": len(self.service.clock),
            })
        if path == "/submit" and method == "POST":
            return await self._submit(body)
        if path.startswith("/result/") and method == "GET":
            return await self._result(path[len("/result/"):])
        if path == "/checkpoint" and method == "POST":
            return _json_response(200, self.service.checkpoint())
        if path == "/shutdown" and method == "POST":
            self._shutdown.set()
            return _json_response(200, {"ok": True, "draining": True})
        if path in ("/", "/status", "/metrics", "/healthz", "/result"):
            return _json_response(405, {"error": f"{method} not allowed"})
        return _json_response(404, {"error": f"no route {path!r}"})

    #: ``/metrics`` content negotiation: formats we can actually serve.
    METRICS_FORMATS = ("json", "prometheus")

    def _metrics(self, query_string: str) -> bytes:
        requested = "json"
        for pair in query_string.split("&"):
            if not pair:
                continue
            name, _, value = pair.partition("=")
            if name == "format":
                requested = value or "json"
        if requested == "json":
            return _json_response(200, self.service.metrics_snapshot())
        if requested == "prometheus":
            return _response(
                200,
                self.service.metrics_prometheus().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        return _json_response(400, {
            "error": f"unknown metrics format {requested!r}",
            "supported": list(self.METRICS_FORMATS),
        })

    async def _submit(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return _json_response(400, {"error": f"bad JSON body: {error}"})
        if not isinstance(payload, dict) or "template" not in payload:
            return _json_response(
                400, {"error": "body must be a JSON object with 'template'"}
            )
        if not self.service.accepting:
            return _json_response(503, {"error": "service is draining"})
        business_value = payload.get("business_value")
        if business_value is not None:
            business_value = float(business_value)
        qid, decision, result = self.service.submit(
            payload["template"], business_value=business_value
        )
        outcome = await decision
        if payload.get("wait", True) and outcome != "shed":
            return _json_response(200, await result)
        if outcome == "shed":
            return _json_response(200, await result)
        return _json_response(200, {"qid": qid, "outcome": outcome})

    async def _result(self, tail: str) -> bytes:
        try:
            qid = int(tail)
        except ValueError:
            return _json_response(400, {"error": f"bad qid {tail!r}"})
        done = self.service.results.get(qid)
        if done is not None:
            return _json_response(200, done)
        future = self.service._result_futures.get(qid)
        if future is None:
            return _json_response(404, {"error": f"unknown qid {qid}"})
        return _json_response(200, await future)


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 60.0,
) -> tuple[int, object]:
    """Minimal one-shot HTTP client: ``(status, parsed-or-raw body)``.

    Opens a fresh connection per request (matching the server's
    ``Connection: close``), sends an optional JSON body, and parses a
    JSON response when the content type says so.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    content_type = ""
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-type":
            content_type = value.strip()
    if content_type.startswith("application/json"):
        return status, json.loads(body_bytes.decode("utf-8"))
    return status, body_bytes.decode("utf-8", errors="replace")
