"""Figure 5 — Information value vs synchronization frequency.

TPC-H, 12 tables (LineItem split into 5), 5 random replicas for IVQP.
For each Fq:Fs ratio in {1:0.1, 1:1, 1:10, 1:20} and each (λ_SL, λ_CL) in
{(.01,.01), (.01,.05), (.05,.01), (.05,.05)}, report the mean information
value of IVQP, Federation and Data Warehouse over a Poisson query stream.

Expected shape (paper Section 4.2): IVQP highest everywhere; Data Warehouse
improves as synchronization gets more frequent and overtakes Federation at
1:20.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.value import DiscountRates
from repro.experiments.config import (
    FQ_FS_RATIOS,
    LAMBDA_COMBOS,
    QUERY_MEAN_INTERARRIVAL,
    TpchSetup,
    sync_interval_for_ratio,
)
from repro.experiments.runner import run_stream
from repro.reporting.tables import ResultTable

__all__ = ["Fig5Config", "run_fig5", "run_fig5_cell_ci"]


@dataclass
class Fig5Config:
    """Parameters of the Figure 5 sweep."""

    setup: TpchSetup = field(default_factory=TpchSetup)
    ratios: dict[str, float] = field(default_factory=lambda: dict(FQ_FS_RATIOS))
    lambdas: list[tuple[float, float]] = field(
        default_factory=lambda: list(LAMBDA_COMBOS)
    )
    approaches: tuple[str, ...] = (
        "ivqp", "ivqp-partial", "federation", "warehouse"
    )
    rounds: int = 3
    arrival_seed: int = 3
    system_seed: int = 1


def run_fig5_cell_ci(
    ratio_label: str = "1:10",
    lambdas: tuple[float, float] = (0.05, 0.05),
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    setup: TpchSetup | None = None,
) -> ResultTable:
    """One Figure 5 cell replicated across arrival seeds, with 95% CIs.

    The paper reports single numbers; this helper quantifies the run-to-run
    spread behind one (ratio, λ) cell so the IVQP-vs-baseline gap can be
    judged against simulation noise.
    """
    from repro.experiments.replication import replicate

    setup = setup or TpchSetup()
    lambda_sl, lambda_cl = lambdas
    rates = DiscountRates(computational=lambda_cl, synchronization=lambda_sl)
    interval = sync_interval_for_ratio(FQ_FS_RATIOS[ratio_label])
    queries = setup.queries()
    table = ResultTable(
        title=(
            f"Figure 5 cell {ratio_label}, lambda_sl={lambda_sl}, "
            f"lambda_cl={lambda_cl}: mean IV with 95% CI over "
            f"{len(seeds)} arrival seeds"
        ),
        headers=["approach", "mean_iv", "ci_half_width", "seeds"],
    )
    for approach in ("ivqp", "federation", "warehouse"):
        system_config = setup.system_config(
            approach=approach, rates=rates, sync_mean_interval=interval
        )
        ci = replicate(
            lambda seed: run_stream(
                system_config, approach, queries,
                mean_interarrival=QUERY_MEAN_INTERARRIVAL,
                rounds=1, arrival_seed=seed,
            ).mean_iv,
            seeds=list(seeds),
        )
        table.add(approach, ci.mean, ci.half_width, ci.samples)
    return table


def run_fig5(config: Fig5Config | None = None) -> ResultTable:
    """Run the full Figure 5 sweep and return its result table."""
    config = config or Fig5Config()
    table = ResultTable(
        title="Figure 5: mean information value (TPC-H)",
        headers=["fq_fs", "lambda_sl", "lambda_cl", "approach", "mean_iv"],
    )
    queries = config.setup.queries()
    for ratio_label, multiplier in config.ratios.items():
        interval = sync_interval_for_ratio(multiplier)
        for lambda_sl, lambda_cl in config.lambdas:
            rates = DiscountRates(
                computational=lambda_cl, synchronization=lambda_sl
            )
            for approach in config.approaches:
                system_config = config.setup.system_config(
                    approach=approach,
                    rates=rates,
                    sync_mean_interval=interval,
                    seed=config.system_seed,
                )
                result = run_stream(
                    system_config,
                    approach,
                    queries,
                    mean_interarrival=QUERY_MEAN_INTERARRIVAL,
                    rounds=config.rounds,
                    arrival_seed=config.arrival_seed,
                )
                table.add(
                    ratio_label, lambda_sl, lambda_cl, approach, result.mean_iv
                )
    return table
