"""Data placement advisor — the paper's future work, implemented.

Given the 22-query TPC-H workload and a budget of 5 replicas, the advisor
greedily selects the tables whose replication maximizes the expected
workload information value, and we compare it against no replication and a
random pick (the paper's Section 4.2 setup).

Run:  python examples/placement_advisor.py
"""

from __future__ import annotations

from repro import DiscountRates, PlacementAdvisor
from repro.experiments import TpchSetup, placement_evaluator


def main() -> None:
    setup = TpchSetup(scale=0.001)  # smaller instance: advisor calls the
    # optimizer (22 queries x sample times) once per candidate set.
    rates = DiscountRates.symmetric(0.05)
    evaluate = placement_evaluator(
        setup, rates, sync_mean_interval=1.0, sample_times=(25.0, 60.0)
    )

    advisor = PlacementAdvisor(
        candidate_tables=setup.instance.table_names,
        evaluate=evaluate,
        budget=5,
        swap_passes=0,
    )
    recommendation = advisor.recommend()

    none_value = evaluate(frozenset())
    random_pick = frozenset(setup.replicated_for_ivqp())
    random_value = evaluate(random_pick)

    print("Replica placement for the TPC-H workload (budget: 5 tables)\n")
    print(f"  no replication : expected IV {none_value:.4f}")
    print(f"  random 5       : expected IV {random_value:.4f}  "
          f"({', '.join(sorted(random_pick))})")
    print(f"  advisor 5      : expected IV {recommendation.expected_value:.4f}  "
          f"({', '.join(sorted(recommendation.replicas))})")
    print("\nGreedy selection trace (value after adding each table):")
    for table, value in recommendation.history:
        print(f"    + {table:<14} -> {value:.4f}")

    improvement = recommendation.expected_value - random_value
    print(f"\nAdvisor beats random placement by {improvement:+.4f} expected IV "
          f"({improvement / random_value:+.2%}).")


if __name__ == "__main__":
    main()
