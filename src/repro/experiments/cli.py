"""Command-line entry point: ``python -m repro <experiment>``.

Regenerates any of the paper's figures at full size, as aligned text tables
(default), CSV, or JSON (``--format``), optionally writing to a file
(``--output``).  The benchmark suite runs reduced-size versions of the same
code; this CLI is the full-fidelity path.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable

from repro._version import __version__
from repro.experiments.ablations import (
    run_advisor_ablation,
    run_aging_ablation,
    run_ga_ablation,
    run_routing_ablation,
    run_search_ablation,
)
from repro.experiments.faults import run_fault_sweep
from repro.experiments.fig4_walkthrough import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9a, run_fig9b
from repro.experiments.load import run_load_sweep
from repro.experiments.scale import run_scale
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.stream_mqo import run_stream_mqo
from repro.reporting.charts import grouped_bar_chart
from repro.reporting.export import render
from repro.reporting.tables import ResultTable

__all__ = ["main", "EXPERIMENTS"]


def _fig4_tables() -> list[ResultTable]:
    outcome = run_fig4()
    summary = ResultTable(
        title="Figure 4 walkthrough (scatter-and-gather)",
        headers=["quantity", "value"],
    )
    summary.add("scatter_incumbent_iv", outcome.scatter_iv)
    summary.add("initial_bound", outcome.initial_bound)
    summary.add("chosen_plan", outcome.chosen.describe())
    summary.add("oracle_plan", outcome.oracle.describe())
    summary.add("plans_evaluated", outcome.diagnostics.plans_evaluated)
    summary.add("time_lines_visited", outcome.diagnostics.time_lines_visited)
    summary.add("bound_tightenings", outcome.diagnostics.bound_tightenings)
    return [summary, outcome.candidates]


#: Each experiment yields one or more result tables.
EXPERIMENTS: dict[str, Callable[[], list[ResultTable]]] = {
    "fig4": _fig4_tables,
    "fig5": lambda: [run_fig5()],
    "fig6": lambda: [run_fig6()],
    "fig7": lambda: [run_fig7()],
    "fig8": lambda: [run_fig8()],
    "fig9": lambda: [run_fig9a(), run_fig9b()],
    "ablations": lambda: [
        run_aging_ablation(),
        run_search_ablation(),
        run_advisor_ablation(),
        run_routing_ablation(),
        run_ga_ablation(),
    ],
    "sensitivity": lambda: [run_sensitivity()],
    "load": lambda: [run_load_sweep()],
    "faults": lambda: [run_fault_sweep()],
    "stream-mqo": lambda: [run_stream_mqo()],
    "scale": lambda: [run_scale()],
}

#: (group_by, series, value) specs for ``--chart``, where a grouped bar
#: rendering of the result table mirrors the paper's bar-chart figures.
CHART_SPECS: dict[str, tuple[tuple[str, ...], str, str]] = {
    "fig5": (("fq_fs", "lambda_sl", "lambda_cl"), "approach", "mean_iv"),
    "fig8": (("placement", "sites"), "approach", "mean_iv"),
    "load": (("interarrival_min",), "approach", "mean_iv"),
    "faults": (("outage_rate", "policy"), "approach", "mean_iv"),
    "stream-mqo": (("interarrival",), "approach", "mean_iv"),
}


def _run_trace(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: run a scenario, export/audit its trace."""
    import json

    from repro.experiments.trace_scenarios import TRACE_SCENARIOS
    from repro.obs import (
        TraceChecker,
        build_query_spans,
        render_span,
        to_chrome_trace,
        to_jsonl,
    )

    name = args.scenario or "fig4"
    if name not in TRACE_SCENARIOS:
        parser.error(
            f"unknown trace scenario {name!r} "
            f"(expected one of {', '.join(sorted(TRACE_SCENARIOS))})"
        )
    system = TRACE_SCENARIOS[name]()
    records = system.tracer.records

    if args.trace_format == "jsonl":
        body = to_jsonl(records)
    elif args.trace_format == "chrome":
        body = json.dumps(to_chrome_trace(records), indent=2)
    elif args.trace_format == "spans":
        body = "\n\n".join(
            render_span(span) for span in build_query_spans(records)
        )
    else:
        body = system.tracer.timeline()
    if args.metrics:
        body = f"{body}\n\n{system.metrics().to_json()}"

    exit_code = 0
    if args.check:
        violations = TraceChecker().check(records)
        if violations:
            listing = "\n".join(str(violation) for violation in violations)
            body = (
                f"{body}\n\ntrace-check: {len(violations)} violation(s)\n{listing}"
            )
            exit_code = 1
        else:
            body = (
                f"{body}\n\ntrace-check: OK "
                f"({len(records)} records, {len(system.ledger)} ledger entries)"
            )

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body + "\n")
    else:
        try:
            print(body)
        except BrokenPipeError:
            return exit_code
    return exit_code


def _run_live_stream(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """``stream-mqo --live-metrics``: the online run with telemetry attached."""
    from repro.experiments.live import run_live
    from repro.obs import TraceChecker, load_slo_rules, registry_from_system
    from repro.reporting.dashboard import live_report_html, render_dashboard

    rules = load_slo_rules(args.slo) if args.slo else None
    result = run_live(rules=rules, profile=args.profile)
    profile_table = (
        result.profiler.render() if result.profiler is not None else None
    )
    body = render_dashboard(
        result.snapshots[-1], alerts=result.alerts,
        profile_table=profile_table,
    )

    checker = TraceChecker()
    violations = checker.check_system(result.system)
    violations += checker.check_slo(
        result.system.tracer.records, result.monitor.rules,
        window=result.registry.window, half_life=result.registry.half_life,
    )
    if violations:
        listing = "\n".join(str(violation) for violation in violations)
        body += f"\ntrace-check: {len(violations)} violation(s)\n{listing}\n"
    else:
        body += (
            f"\ntrace-check: OK ({len(result.system.tracer)} records, "
            f"{len(result.alerts)} alerts audited)\n"
        )

    if args.html:
        report = live_report_html(
            result.snapshots,
            result.alerts,
            profile=(
                result.profiler.attribution()
                if result.profiler is not None
                else None
            ),
            metrics=registry_from_system(result.system).snapshot(),
        )
        with open(args.html, "w") as handle:
            handle.write(report + "\n")
        body += f"html report written to {args.html}\n"

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body)
    else:
        try:
            print(body, end="")
        except BrokenPipeError:
            pass
    return 1 if violations else 0


def _run_serve(args: argparse.Namespace) -> int:
    """``serve``: run the wall-clock HTTP query service until shutdown."""
    import asyncio

    from repro.serve import HTTPServer, QueryService, ServeConfig

    from repro.serve.service import journal_serve_config

    async def serve() -> int:
        if args.resume and args.journal:
            # The journal header's config wins: resume must rebuild the
            # crashed run's exact scheduler or the replay diverges.
            service = QueryService(
                journal_serve_config(args.journal),
                journal=args.journal, resume=True,
            )
            if service.resumed_at_pops is not None:
                print(
                    f"resumed from {args.journal} at pop "
                    f"{service.resumed_at_pops} "
                    f"({len(service.results)} results restored)"
                )
        else:
            service = QueryService(ServeConfig(
                seconds_per_minute=args.seconds_per_minute,
                snapshot_every=args.snapshot_every,
            ), journal=args.journal)
        server = HTTPServer(service, host=args.host, port=args.port)
        await server.start()
        host, port = server.address
        print(f"repro serve listening on http://{host}:{port}")
        print(
            "  POST /submit {\"template\": <index|name>, \"wait\": true} | "
            "GET /result/<qid> | /metrics | /status | /healthz | "
            "POST /checkpoint | POST /shutdown"
        )
        print(f"  templates: {', '.join(t.name for t in service.templates)}")
        try:
            await server.serve_until_shutdown()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            await server.stop()
        violations = service.check_trace()
        replay_ok = service.replay().decisions == service.session.decisions
        print(
            f"drained: {len(service.results)} results, "
            f"{len(violations)} trace violations, "
            f"replay {'equal' if replay_ok else 'DIVERGED'}"
        )
        return 0 if not violations and replay_ok else 1

    return asyncio.run(serve())


def _run_serve_bench(args: argparse.Namespace) -> int:
    """``serve-bench``: the two-phase HTTP load bench (BENCH_serve shape)."""
    import asyncio
    import json

    from repro.serve.bench import serve_bench

    data = asyncio.run(serve_bench())
    body = json.dumps(data, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body + "\n")
    else:
        print(body)
    ok = not data["trace"]["violations"] and data["trace"]["replay_equal"]
    return 0 if ok else 1


def _run_resume_verify(args: argparse.Namespace) -> int:
    """``resume-verify``: audit a serve journal end-to-end.

    Recovers the journal twice (pure replay and via its last snapshot)
    with a scheduler rebuilt from the journal header's own config, and
    requires both recoveries to agree bit-for-bit — see
    :func:`repro.durable.recovery.verify_journal`.
    """
    import json

    from repro.durable import verify_journal
    from repro.serve.service import build_serve_scheduler, journal_serve_config

    config = journal_serve_config(args.journal)
    report = verify_journal(
        args.journal, lambda: build_serve_scheduler(config)[0]
    )
    body = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body + "\n")
    else:
        print(body)
    return 0 if report["ok"] else 1


def _run_scale_fleet(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """``scale --trace/--fleet-metrics``: EXT5 with the fleet telemetry stack.

    Runs the sweep with per-shard spools, merges them through the
    :class:`~repro.obs.fleet.FleetCollector`, renders one fleet dashboard
    per schedule, optionally writes chrome traces / an HTML report, and
    exits non-zero on any cross-shard checker violation.
    """
    import json
    from dataclasses import replace

    from repro.experiments.scale import (
        DEFAULT_SCHEDULES,
        ScaleConfig,
        run_scale_sweep,
    )
    from repro.reporting.dashboard import fleet_report_html, render_fleet_dashboard

    schedules = DEFAULT_SCHEDULES
    if args.schedule:
        matching = tuple(
            spec for spec in schedules if spec.name == args.schedule
        )
        if not matching:
            parser.error(
                f"unknown schedule {args.schedule!r} "
                f"(expected one of {', '.join(s.name for s in schedules)})"
            )
        schedules = matching
    if args.queries:
        schedules = tuple(
            replace(spec, queries=args.queries) for spec in schedules
        )
    config = ScaleConfig(
        trace=args.trace or args.fleet_metrics,
        fleet_metrics=args.fleet_metrics,
        schedules=schedules,
    )

    chunks: list[str] = []
    all_violations: list = []
    snapshots: dict[str, dict] = {}

    def trace_out_path(name: str) -> str:
        if len(schedules) == 1:
            return args.trace_out
        root, dot, ext = args.trace_out.rpartition(".")
        return f"{root}.{name}.{ext}" if dot else f"{args.trace_out}.{name}"

    def on_fleet(name: str, collector, violations: list) -> None:
        all_violations.extend(violations)
        snapshot = collector.snapshot()
        snapshots[name] = snapshot
        chunks.append(render_fleet_dashboard(snapshot, title=name))
        if violations:
            listing = "\n".join(str(violation) for violation in violations)
            chunks.append(
                f"trace-check [{name}]: {len(violations)} violation(s)\n{listing}\n"
            )
        else:
            chunks.append(
                f"trace-check [{name}]: OK "
                f"({snapshot['fleet']['records']} records, "
                f"{snapshot['fleet']['ledger_entries']} ledger entries, "
                f"{snapshot['fleet']['dropped_events']} dropped)\n"
            )
        if args.trace_out:
            path = trace_out_path(name)
            with open(path, "w") as handle:
                json.dump(collector.chrome_trace(), handle)
            chunks.append(f"chrome trace written to {path}\n")

    data = run_scale_sweep(config, on_fleet=on_fleet)
    summary = ResultTable(
        title="EXT5 fleet telemetry sweep",
        headers=["schedule", "queries", "qps", "records", "dropped",
                 "violations", "collect_s", "total_iv"],
    )
    for name, metrics in data["schedules"].items():
        fleet = metrics.get("fleet", {})
        summary.add(
            name,
            metrics["queries"],
            metrics["queries_per_sec"],
            fleet.get("records", 0),
            fleet.get("dropped_events", 0),
            fleet.get("violations", 0),
            fleet.get("collect_wall_seconds", 0.0),
            metrics["total_iv"]["online"],
        )
    body = render(summary, args.fmt) + "\n\n" + "\n".join(chunks)

    if args.html:
        reports = "\n".join(
            fleet_report_html(snapshot, title=f"EXT5 fleet: {name}")
            for name, snapshot in snapshots.items()
        )
        with open(args.html, "w") as handle:
            handle.write(reports + "\n")
        body += f"html report written to {args.html}\n"

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body)
    else:
        try:
            print(body, end="")
        except BrokenPipeError:
            pass
    return 1 if all_violations else 0


def _run_bench_gate(args: argparse.Namespace) -> int:
    """``bench-gate``: re-run benchmark snapshots and fail on regressions."""
    from repro.experiments.bench_gate import render_gate, run_gate

    results = run_gate(wall_tolerance=args.wall_tolerance)
    report = render_gate(results)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return 0 if all(result.passed for result in results) else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Information Value-driven Near "
            "Real-Time Decision Support Systems' (ICDCS 2009)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "check", "trace", "bench-gate", "serve", "serve-bench",
           "serve-smoke", "resume-verify"],
        help=(
            "which figure to regenerate ('check' audits every claimed "
            "shape; 'trace' runs an observability scenario; 'bench-gate' "
            "re-runs the committed benchmark snapshots and fails on "
            "regressions; 'serve' starts the wall-clock HTTP query "
            "service; 'serve-bench'/'serve-smoke' drive it with load; "
            "'resume-verify' audits a --journal for exact resumability)"
        ),
    )
    parser.add_argument(
        "scenario", nargs="?", default=None,
        help=(
            "trace scenario ('trace' subcommand only): "
            "fig4 | stream | faults | stream-online"
        ),
    )
    parser.add_argument(
        "--format", dest="fmt", choices=("text", "csv", "json"),
        default="text", help="output format (default: text)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write results to this file instead of stdout",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="append an ASCII bar chart (fig5, fig8, load; text format only)",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome", "timeline", "spans"),
        default="timeline",
        help=(
            "trace output ('trace' only): lossless JSONL, chrome://tracing "
            "JSON, a readable timeline, or per-query span trees"
        ),
    )
    parser.add_argument(
        "--check", action="store_true",
        help="('trace' only) run the TraceChecker; non-zero exit on violations",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="('trace' only) append the metrics registry snapshot (JSON)",
    )
    parser.add_argument(
        "--live-metrics", action="store_true",
        help=(
            "('stream-mqo' only) run the online scenario with the live "
            "telemetry stack (streaming aggregators + SLO monitor) and "
            "render the terminal dashboard"
        ),
    )
    parser.add_argument(
        "--slo", default=None, metavar="FILE",
        help=(
            "(with --live-metrics) JSON file of SLO rules; defaults to "
            "the stock rule set"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "(with --live-metrics) collect the wall-clock profiler and "
            "append the per-phase attribution table"
        ),
    )
    parser.add_argument(
        "--html", default=None, metavar="FILE",
        help="(with --live-metrics) also write a self-contained HTML report",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help=(
            "('scale' only) run the sharded sweep with per-shard tracing, "
            "merge the spools through the fleet collector and run the "
            "cross-shard trace checker; non-zero exit on violations"
        ),
    )
    parser.add_argument(
        "--fleet-metrics", action="store_true",
        help=(
            "('scale' only) like --trace, plus per-shard live registries "
            "merged into one fleet registry and rendered as a dashboard"
        ),
    )
    parser.add_argument(
        "--schedule", default=None, metavar="NAME",
        help="('scale' with --trace/--fleet-metrics) run only this schedule",
    )
    parser.add_argument(
        "--queries", type=int, default=None, metavar="N",
        help=(
            "('scale' with --trace/--fleet-metrics) override the stream "
            "length of every selected schedule"
        ),
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help=(
            "('scale' with --trace/--fleet-metrics) write the merged "
            "chrome://tracing JSON here (multiple schedules add a "
            "'.<schedule>' suffix before the extension)"
        ),
    )
    parser.add_argument(
        "--wall-tolerance", type=float, default=None,
        help=(
            "('bench-gate' only) allowed wall-clock slowdown multiple; "
            "defaults to $BENCH_GATE_TOLERANCE or 3.0"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="('serve' only) interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8763,
        help="('serve' only) port to bind; 0 picks one (default: 8763)",
    )
    parser.add_argument(
        "--seconds-per-minute", type=float, default=1.0,
        help=(
            "('serve' only) wall seconds per stream minute; 60 is honest "
            "real time, smaller compresses the stream (default: 1.0)"
        ),
    )
    parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help=(
            "('serve'/'serve-smoke'/'resume-verify') durable journal "
            "path: 'serve' appends every scheduling record to it, "
            "'resume-verify' audits it"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "('serve' only) recover state from --journal before serving; "
            "the journal header's config overrides the command line"
        ),
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=0,
        help=(
            "('serve' only, with --journal) checkpoint every N pops "
            "(0 = only explicit POST /checkpoint; default: 0)"
        ),
    )
    parser.add_argument(
        "--kill-resume", action="store_true",
        help=(
            "('serve-smoke' only) run the crash/resume smoke: kill a "
            "journaled live service mid-flight and resume it"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    args = parser.parse_args(argv)

    if args.experiment == "trace":
        return _run_trace(parser, args)
    if args.scenario is not None:
        parser.error("a scenario argument is only valid with 'trace'")
    if args.experiment == "bench-gate":
        return _run_bench_gate(args)
    if args.resume and not args.journal:
        parser.error("--resume requires --journal")
    if args.experiment == "resume-verify":
        if not args.journal:
            parser.error("resume-verify requires --journal")
        return _run_resume_verify(args)
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "serve-bench":
        return _run_serve_bench(args)
    if args.experiment == "serve-smoke":
        import asyncio

        from repro.serve.bench import serve_kill_resume_smoke, serve_smoke

        if args.kill_resume:
            return asyncio.run(serve_kill_resume_smoke(args.journal))
        return asyncio.run(serve_smoke())
    fleet_mode = args.trace or args.fleet_metrics
    if fleet_mode or args.schedule or args.queries or args.trace_out:
        if not fleet_mode:
            parser.error(
                "--schedule/--queries/--trace-out require --trace or "
                "--fleet-metrics"
            )
        if args.experiment != "scale":
            parser.error("--trace/--fleet-metrics are only valid with 'scale'")
        return _run_scale_fleet(parser, args)
    if args.live_metrics:
        if args.experiment != "stream-mqo":
            parser.error("--live-metrics is only valid with 'stream-mqo'")
        return _run_live_stream(parser, args)
    if args.slo or args.profile or args.html:
        parser.error("--slo/--profile/--html require --live-metrics")

    if args.experiment == "check":
        from repro.experiments.validate import render_report, validate_all

        claims = validate_all()
        report = render_report(claims)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(report + "\n")
        else:
            print(report)
        return 0 if all(claim.passed for claim in claims) else 1

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    chunks: list[str] = []
    for name in names:
        started = time.perf_counter()
        tables = EXPERIMENTS[name]()
        body = "\n\n".join(render(table, args.fmt) for table in tables)
        if args.chart and args.fmt == "text" and name in CHART_SPECS:
            group_by, series, value = CHART_SPECS[name]
            charts = "\n\n".join(
                grouped_bar_chart(table, group_by, series, value)
                for table in tables
                if {*group_by, series, value} <= set(table.headers)
            )
            if charts:
                body = f"{body}\n\n{charts}"
        elapsed = time.perf_counter() - started
        if args.fmt == "text":
            chunks.append(f"== {name} ==\n{body}\n[{name} done in {elapsed:.1f}s]\n")
        else:
            chunks.append(body)
    output = "\n".join(chunks)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output + "\n")
    else:
        try:
            print(output)
        except BrokenPipeError:  # e.g. piped into `head`
            return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
