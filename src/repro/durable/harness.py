"""Crash/resume equivalence harness: kill at any byte, resume, compare.

The headline durability proof.  :func:`journaled_run` drives an online
session under a :class:`~repro.sim.clocks.SimClock` while journaling
every record the durable layer defines — with an optional injected crash
at an arbitrary *byte* offset (torn write included).  :func:`resume_run`
recovers the journal and finishes the run.  :func:`crash_and_resume`
composes the two and, together with an uninterrupted reference run,
backs the acceptance criterion: the resumed run's decision log and IV
ledger are **bit-equal** to the uninterrupted one, at every crash point.

The reference and the resumed run are the *same driver* — only the crash
differs — so the comparison isolates exactly the property under test:
that journal + snapshot + replay lose nothing and invent nothing.  This
is the substrate for week-long, million-query horizons run in resumable
chunks (ROADMAP items 2 and 5): any prefix of a long run can be cut at a
power-loss-shaped boundary and continued without perturbing a single
decision.
"""

from __future__ import annotations

import typing
from dataclasses import asdict, dataclass

from repro.durable.journal import InjectedCrash, JournalWriter, scan_journal
from repro.durable.recovery import (
    RecoveredRun,
    arrival_record,
    decision_record,
    header_record,
    ledger_record,
    pop_record,
    recover,
    reconcile,
    snapshot_record,
    window_record,
)
from repro.errors import OptimizationError
from repro.obs.ledger import IVLedgerEntry, completion_ledger
from repro.sim.clocks import SimClock

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.mqo.online import OnlineMQOScheduler, OnlineSession
    from repro.workload.query import Workload

__all__ = [
    "JournaledRun",
    "journaled_run",
    "resume_run",
    "crash_and_resume",
    "runs_equivalent",
]


@dataclass
class JournaledRun:
    """A finished (or resumed-and-finished) journaled run."""

    session: "OnlineSession"
    ledgers: list[IVLedgerEntry]
    pops: int
    resumed_at_pops: int | None = None  #: None = ran uninterrupted


class _Bookkeeper:
    """Per-pop journaling shared by the initial run and the resumed tail.

    Mirrors the serving loop's bookkeeping: after each handled event it
    journals any new decision-log entries and window records, and — on
    completions — synthesizes the ledger entry through the same shared
    constructor the live service uses, journaling it too.
    """

    def __init__(
        self,
        session: "OnlineSession",
        writer: JournalWriter | None,
        ledgers: list[IVLedgerEntry],
        decision_cursor: int = 0,
        window_cursor: int = 0,
    ) -> None:
        self.session = session
        self.writer = writer
        self.ledgers = ledgers
        self.decision_cursor = decision_cursor
        self.window_cursor = window_cursor

    def after_pop(self, now: float, tag: str, payload: object) -> None:
        entry = None
        if tag == "completion":
            qid = typing.cast(int, payload)
            assignment = self.session.started[qid]
            query = self.session.workload.query(qid)
            entry = completion_ledger(
                query.name,
                qid,
                query.business_value,
                assignment.plan.rates,
                submitted_at=self.session.workload.arrival_of(qid),
                begin=assignment.begin,
                completed_at=now,
                data_timestamp=assignment.data_timestamp,
            )
            self.ledgers.append(entry)
        self.flush_records()
        if entry is not None and self.writer is not None:
            self.writer.append(ledger_record(entry))

    def flush_records(self) -> None:
        """Journal decision-log and window entries not yet written."""
        if self.writer is not None:
            for entry in self.session.decisions[self.decision_cursor:]:
                self.writer.append(decision_record(entry))
            for record in self.session.decision.windows[self.window_cursor:]:
                self.writer.append(window_record(record))
        self.decision_cursor = len(self.session.decisions)
        self.window_cursor = len(self.session.decision.windows)


def journaled_run(
    scheduler: "OnlineMQOScheduler",
    workload: "Workload",
    path,
    snapshot_every: int = 0,
    fsync_every: int = 1,
    crash_after_bytes: int | None = None,
    meta: dict | None = None,
) -> JournaledRun:
    """Run the full arrival stream under SimClock, journaling everything.

    The driver is :meth:`OnlineMQOScheduler.run` with a journal bolted
    on: all arrivals push up front (heap position 0), then events pop to
    exhaustion and the session drains.  ``snapshot_every`` journals a
    full checkpoint every N pops (0 = never).  With
    ``crash_after_bytes`` set, the writer dies mid-record at that byte
    and :class:`~repro.durable.journal.InjectedCrash` propagates — the
    journal on disk then looks exactly like a power loss happened.
    """
    if len(workload) == 0:
        raise OptimizationError("cannot run an empty workload")
    writer = JournalWriter(
        path, fsync_every=fsync_every, crash_after_bytes=crash_after_bytes
    )
    clock = SimClock()
    session = scheduler.session(workload, clock)
    ordered = workload.sorted_by_arrival()
    session.arrivals_expected = len(ordered)
    run_meta = dict(meta or {})
    run_meta.setdefault("driver", "sim")
    run_meta.setdefault("arrivals_expected", len(ordered))
    run_meta.setdefault("accepting", False)
    ledgers: list[IVLedgerEntry] = []
    book = _Bookkeeper(session, writer, ledgers)
    pops = 0
    try:
        writer.append(header_record(run_meta))
        for query in ordered:
            arrival = workload.arrival_of(query.query_id)
            writer.append(arrival_record(query, arrival, pops_before=0))
            clock.push(arrival, "arrival", query.query_id)
        while clock:
            now, tag, payload = clock.pop()
            writer.append(pop_record(now, tag, payload))
            pops += 1
            session.handle(now, tag, payload)
            book.after_pop(now, tag, payload)
            if snapshot_every and pops % snapshot_every == 0:
                writer.append(snapshot_record(
                    session, clock._timeline, pops, ledgers
                ))
        session.drain()
        book.flush_records()
    finally:
        writer.close()
    return JournaledRun(session=session, ledgers=ledgers, pops=pops)


def resume_run(
    run: RecoveredRun, writer: JournalWriter | None = None
) -> JournaledRun:
    """Finish a recovered run: pop the restored heap dry, then drain.

    With ``writer`` (opened on the truncated journal), the continuation
    journals like the original run did — first reconciling any records
    the torn tail lost — so a resumed journal remains recoverable and
    verifiable; crash-during-resume composes by induction.
    """
    session, clock = run.session, run.clock
    if writer is not None:
        reconcile(run, writer)
    book = _Bookkeeper(
        session, writer, run.ledgers,
        decision_cursor=len(session.decisions),
        window_cursor=len(session.decision.windows),
    )
    pops = run.pops
    try:
        while clock:
            now, tag, payload = clock.pop()
            if writer is not None:
                writer.append(pop_record(now, tag, payload))
            pops += 1
            session.handle(now, tag, payload)
            book.after_pop(now, tag, payload)
        session.drain()
        book.flush_records()
    finally:
        if writer is not None:
            writer.close()
    return JournaledRun(
        session=session, ledgers=run.ledgers, pops=pops,
        resumed_at_pops=run.pops,
    )


def crash_and_resume(
    make_scheduler: "Callable[[], OnlineMQOScheduler]",
    workload: "Workload",
    path,
    crash_after_bytes: int,
    snapshot_every: int = 0,
    journal_resume: bool = True,
) -> JournaledRun:
    """Kill a journaled run at a byte offset, recover, finish it.

    ``make_scheduler`` must return a *fresh*, identically-configured
    scheduler per call (the crashed process and the recovering one are
    different processes in spirit — nothing in-memory survives).  If the
    crash point lies beyond the journal the run writes, the run simply
    completes and is returned uninterrupted.
    """
    import os

    try:
        return journaled_run(
            make_scheduler(), workload, path,
            snapshot_every=snapshot_every,
            crash_after_bytes=crash_after_bytes,
        )
    except InjectedCrash:
        pass
    records, _valid, _error = scan_journal(path)
    if not records:
        # The crash beat the header to stable storage: nothing durable
        # happened, so nothing needs recovering — run afresh.
        os.remove(path)
        return journaled_run(
            make_scheduler(), workload, path, snapshot_every=snapshot_every
        )
    recovered = recover(path, make_scheduler())
    writer = None
    if journal_resume:
        writer = JournalWriter(path, truncate_to=recovered.valid_bytes)
    # A crash inside the upfront arrival block loses arrivals the journal
    # never saw; the *driver* still owns the workload, so it re-supplies
    # them (exactly as a resumed sim driver re-reads its input file).
    # They can only be missing when no event ever popped, so re-pushing
    # in arrival order reproduces the reference run's FIFO sequence
    # numbers — same-time ties still pop in the original order.
    durable = {record.query_id for record in recovered.arrivals}
    for query in workload.sorted_by_arrival():
        if query.query_id in durable:
            continue
        arrival = workload.arrival_of(query.query_id)
        recovered.session.workload.add(query, arrival=arrival)
        if writer is not None:
            writer.append(
                arrival_record(query, arrival, pops_before=recovered.pops)
            )
        recovered.clock.push(arrival, "arrival", query.query_id)
    return resume_run(recovered, writer)


def runs_equivalent(reference: JournaledRun, other: JournaledRun) -> dict:
    """Bit-level comparison of two runs; the harness's pass condition.

    Compares the full decision log, every IV ledger entry field-for-field
    and the admission counters (re-optimization *time* excluded — it is
    wall-clock, the one legitimately non-deterministic quantity).
    Returns a report dict whose ``"equal"`` is the verdict.
    """
    report: dict = {"equal": True, "differences": []}

    def differ(message: str) -> None:
        report["equal"] = False
        report["differences"].append(message)

    if reference.session.decisions != other.session.decisions:
        differ("decision logs differ")
    ref_ledgers = [entry.to_dict() for entry in reference.ledgers]
    other_ledgers = [entry.to_dict() for entry in other.ledgers]
    if ref_ledgers != other_ledgers:
        differ("IV ledgers differ")
    for entry in other.ledgers:
        if entry.recompute_iv() != entry.reported_iv:
            differ(
                f"qid {entry.query_id} ledger does not recompute bit-equal"
            )
    ref_stats = asdict(reference.session.stats)
    other_stats = asdict(other.session.stats)
    ref_stats.pop("reopt_seconds")
    other_stats.pop("reopt_seconds")
    if ref_stats != other_stats:
        differ(f"stats differ: {ref_stats} vs {other_stats}")
    ref_windows = [
        (w.index, w.time, w.trigger, w.pending, w.groups, w.order)
        for w in reference.session.decision.windows
    ]
    other_windows = [
        (w.index, w.time, w.trigger, w.pending, w.groups, w.order)
        for w in other.session.decision.windows
    ]
    if ref_windows != other_windows:
        differ("window records differ")
    report["decisions"] = len(reference.session.decisions)
    report["ledgers"] = len(reference.ledgers)
    return report
