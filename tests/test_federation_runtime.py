"""Unit tests: sites, replication manager, executor, system façade."""

from __future__ import annotations

import pytest

from repro.baselines import federation_router, ivqp_router, warehouse_router
from repro.core.value import DiscountRates
from repro.errors import ConfigError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.federation.sync import ReplicationManager, build_schedules
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.sim.scheduler import Simulator
from repro.workload.query import DSSQuery, Workload


class TestSite:
    def test_local_flag(self, sim):
        assert Site(sim, LOCAL_SITE_ID).is_local
        assert not Site(sim, 3).is_local

    def test_default_names(self, sim):
        assert Site(sim, LOCAL_SITE_ID).name == "local-dss"
        assert Site(sim, 2).name == "site-2"

    def test_capacity_validation(self, sim):
        with pytest.raises(ConfigError):
            Site(sim, 0, capacity=0)


class TestBuildSchedules:
    def test_periodic_mode(self, rng):
        schedules = build_schedules(["a", "b"], "periodic", 5.0, rng)
        for schedule in schedules.values():
            times = schedule.completions_between(0.0, 50.0)
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(gap == pytest.approx(5.0) for gap in gaps)

    def test_periodic_stagger_desynchronizes(self, rng):
        schedules = build_schedules(["a", "b"], "periodic", 5.0, rng)
        a = schedules["a"].next_completion_after(0.0)
        b = schedules["b"].next_completion_after(0.0)
        assert a != b

    def test_exponential_mode_independent_streams(self, rng):
        schedules = build_schedules(["a", "b"], "exponential", 5.0, rng)
        a = schedules["a"].completions_between(0.0, 100.0)
        b = schedules["b"].completions_between(0.0, 100.0)
        assert a != b

    def test_shared_mode_splits_budget(self, rng):
        schedules = build_schedules(["a", "b", "c", "d"], "shared", 1.0, rng)
        counts = {
            name: len(schedule.completions_between(0.0, 400.0))
            for name, schedule in schedules.items()
        }
        # System-wide ~400 events, ~100 per replica.
        assert sum(counts.values()) == pytest.approx(400, rel=0.25)
        for count in counts.values():
            assert count == pytest.approx(100, rel=0.4)

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ConfigError):
            build_schedules(["a"], "warp", 1.0, rng)

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            build_schedules([], "periodic", 1.0, rng)
        with pytest.raises(ConfigError):
            build_schedules(["a"], "periodic", 0.0, rng)


class TestReplicationManager:
    def make(self, qos=None):
        sim = Simulator()
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=10))
        catalog.add_replica("a", FixedSyncSchedule([2.0, 4.0, 6.0]))
        manager = ReplicationManager(sim, catalog, qos_max_staleness=qos)
        return sim, catalog, manager

    def test_sync_events_fire_on_schedule(self):
        sim, catalog, manager = self.make()
        seen = []
        manager.add_listener(lambda replica, now: seen.append(now))
        manager.start()
        sim.run(until=7.0)
        assert seen == [2.0, 4.0, 6.0]
        assert catalog.replica("a").sync_count == 3
        assert manager.total_syncs == 3

    def test_staleness_statistics(self):
        sim, _catalog, manager = self.make()
        manager.start()
        sim.run(until=7.0)
        assert manager.staleness.mean == pytest.approx(2.0)

    def test_qos_violations_counted(self):
        sim, _catalog, manager = self.make(qos=1.5)
        manager.start()
        sim.run(until=7.0)
        assert manager.qos_violations == 3  # every 2-minute gap exceeds 1.5

    def test_start_is_idempotent(self):
        sim, _catalog, manager = self.make()
        manager.start()
        manager.start()
        sim.run(until=3.0)
        assert manager.total_syncs == 1

    def test_qos_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            ReplicationManager(sim, Catalog(), qos_max_staleness=0.0)


def small_config(replicated, **overrides) -> SystemConfig:
    defaults = dict(
        tables=[
            TableSpec("a", site=0, row_count=2_000),
            TableSpec("b", site=1, row_count=4_000),
            TableSpec("c", site=0, row_count=1_000),
        ],
        replicated=replicated,
        sync_mode="periodic",
        sync_mean_interval=5.0,
        rates=DiscountRates(0.02, 0.02),
        seed=3,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestSystemConfig:
    def test_duplicate_tables_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                tables=[TableSpec("a", 0, 10), TableSpec("a", 0, 10)],
                replicated=[],
            )

    def test_unknown_replicated_rejected(self):
        with pytest.raises(ConfigError):
            small_config(replicated=["zz"])


class TestFederatedSystem:
    def test_end_to_end_outcome_accounting(self):
        system = build_system(small_config(["a", "b", "c"]), ivqp_router)
        query = DSSQuery(query_id=1, name="q", tables=("a", "b"))
        system.submit(query, at=10.0)
        system.run()
        assert len(system.outcomes) == 1
        outcome = system.outcomes[0]
        assert outcome.submitted_at == 10.0
        assert outcome.completed_at > 10.0
        assert outcome.computational_latency > 0
        assert 0.0 <= outcome.information_value <= 1.0
        assert system.mean_information_value == pytest.approx(
            outcome.information_value
        )

    def test_submit_in_past_rejected(self):
        system = build_system(small_config(["a"]), federation_router)
        system.submit(
            DSSQuery(query_id=1, name="q", tables=("a",)), at=5.0
        )
        system.run()
        with pytest.raises(ConfigError):
            system.submit(
                DSSQuery(query_id=2, name="q2", tables=("a",)), at=1.0
            )

    def test_workload_submission(self):
        system = build_system(small_config(["a", "b", "c"]), ivqp_router)
        workload = Workload()
        for index in range(3):
            workload.add(
                DSSQuery(query_id=index + 1, name=f"q{index}", tables=("a",)),
                arrival=float(index * 5 + 1),
            )
        system.submit_workload(workload)
        system.run()
        assert len(system.outcomes) == 3

    def test_contention_queues_on_local_server(self):
        config = small_config(["a", "b", "c"], local_capacity=1)
        system = build_system(config, warehouse_router)
        for index in range(3):
            system.submit(
                DSSQuery(
                    query_id=index + 1, name=f"q{index}",
                    tables=("a", "b", "c"), base_work=20_000.0,
                ),
                at=1.0,
            )
        system.run()
        completions = sorted(o.completed_at for o in system.outcomes)
        # Serialized on the single local server: distinct completion times.
        assert completions[1] - completions[0] > 1.0
        assert completions[2] - completions[1] > 1.0

    def test_remote_legs_run_in_parallel_across_sites(self):
        config = small_config([], remote_capacity=1)
        system = build_system(config, federation_router)
        query = DSSQuery(
            query_id=1, name="q", tables=("a", "b"), base_work=30_000.0
        )
        system.submit(query, at=1.0)
        system.run()
        outcome = system.outcomes[0]
        plan = outcome.plan
        legs = dict(plan.cost.site_legs)
        # Completion reflects max leg, not the sum.
        expected = 1.0 + plan.cost.processing + plan.cost.transmission
        assert outcome.completed_at == pytest.approx(expected)
        assert len(legs) == 2

    def test_replica_freshness_realized_from_catalog(self):
        config = small_config(["a", "b", "c"])
        system = build_system(config, warehouse_router)
        query = DSSQuery(query_id=1, name="q", tables=("a",))
        system.submit(query, at=12.0)
        system.run()
        outcome = system.outcomes[0]
        replica = system.catalog.replica("a")
        assert outcome.data_timestamp == replica.freshness_at(12.0)

    def test_sync_during_queue_wait_improves_freshness(self):
        """A replica refreshed while the query waits yields fresher data
        than the plan estimated."""
        config = small_config(["a", "b", "c"], local_capacity=1)
        system = build_system(config, warehouse_router)
        blocker = DSSQuery(
            query_id=1, name="blocker", tables=("b",), base_work=40_000.0
        )
        system.submit(blocker, at=4.0)
        probe = DSSQuery(query_id=2, name="probe", tables=("a",))
        system.submit(probe, at=4.5)
        system.run()
        probe_outcome = next(
            o for o in system.outcomes if o.query.name == "probe"
        )
        planned_freshness = probe_outcome.plan.oldest_freshness
        assert probe_outcome.data_timestamp >= planned_freshness

    def test_run_until_time(self):
        system = build_system(small_config(["a"]), federation_router)
        system.submit(DSSQuery(query_id=1, name="q", tables=("a",)), at=100.0)
        system.run(until=50.0)
        assert system.outcomes == []
        assert system.sim.now == 50.0


class TestRouters:
    def test_federation_router_all_remote(self):
        system = build_system(small_config(["a", "b", "c"]), federation_router)
        plan = system.router.choose_plan(
            DSSQuery(query_id=1, name="q", tables=("a", "b")), 0.0
        )
        assert plan.remote_tables == frozenset({"a", "b"})
        assert not plan.delayed

    def test_warehouse_router_all_replica(self):
        system = build_system(small_config(["a", "b", "c"]), warehouse_router)
        plan = system.router.choose_plan(
            DSSQuery(query_id=1, name="q", tables=("a", "b")), 0.0
        )
        assert plan.remote_tables == frozenset()
        assert not plan.delayed

    def test_warehouse_requires_full_replication(self):
        system = build_system(small_config(["a"]), warehouse_router)
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            system.router.choose_plan(
                DSSQuery(query_id=1, name="q", tables=("a", "b")), 0.0
            )

    def test_ivqp_router_dominates_baselines_per_plan(self):
        """IVQP's chosen plan estimate is at least as good as both
        baseline plans for the same query and instant."""
        config = small_config(["a", "b", "c"])
        ivqp_system = build_system(config, ivqp_router)
        query = DSSQuery(query_id=1, name="q", tables=("a", "b"))
        at = 7.0
        ivqp_plan = ivqp_system.router.choose_plan(query, at)

        fed = federation_router(
            ivqp_system.catalog, ivqp_system.cost_model, config.rates
        ).choose_plan(query, at)
        wh = warehouse_router(
            ivqp_system.catalog, ivqp_system.cost_model, config.rates
        ).choose_plan(query, at)
        assert ivqp_plan.information_value >= fed.information_value - 1e-12
        assert ivqp_plan.information_value >= wh.information_value - 1e-12
