"""Write ``BENCH_faults.json`` — a point-in-time fault-runtime snapshot.

Runs a reduced EXT3 sweep (micro TPC-H, two outage rates, IVQP and
Federation under both execution policies) and records wall time, realized
IV and the fault-handling counters per cell.  Invoked by
``make bench-faults``; the JSON gives the fault-tolerant runtime a
baseline to diff against — a regression that silently drops queries or
stops retrying shows up as a counter shift here.

Usage::

    PYTHONPATH=src python benchmarks/faults_snapshot.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.experiments.config import TpchSetup
from repro.experiments.faults import FaultSweepConfig, run_fault_sweep


def snapshot() -> dict:
    config = FaultSweepConfig(
        setup=TpchSetup(scale=0.001, seed=7),
        outage_rates=(0.0, 0.01),
        outage_mean_duration=8.0,
        approaches=("ivqp", "federation"),
    )
    started = time.perf_counter()
    table = run_fault_sweep(config)
    wall = time.perf_counter() - started

    cells = [dict(zip(table.headers, row)) for row in table.rows]
    retry_failed = sum(
        cell["failed"] for cell in cells if cell["policy"] == "retry"
    )
    assert retry_failed == 0, "retry policy lost a query"

    return {
        "workload": {
            "queries": len(config.setup.queries()),
            "outage_rates": list(config.outage_rates),
            "approaches": list(config.approaches),
            "policies": list(config.policies),
        },
        "wall_seconds": round(wall, 4),
        "cells": [
            {
                "outage_rate": cell["outage_rate"],
                "approach": cell["approach"],
                "policy": cell["policy"],
                "mean_iv": round(cell["mean_iv"], 6),
                "failed": cell["failed"],
                "degraded": cell["degraded"],
                "retries": cell["retries"],
                "failovers": cell["failovers"],
                "syncs_skipped": cell["syncs_skipped"],
                "syncs_delayed": cell["syncs_delayed"],
            }
            for cell in cells
        ],
    }


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_faults.json")
    data = snapshot()
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(data, indent=2))


if __name__ == "__main__":
    main()
