"""The live query service: OnlineSession under a WallClock.

:class:`QueryService` is the serving counterpart of
:meth:`~repro.mqo.online.OnlineMQOScheduler.run`: the same clock-agnostic
:class:`~repro.mqo.online.OnlineSession` handles every event, but events
come from a :class:`~repro.sim.clocks.WallClock` — arrivals are pushed by
live submissions, window closes fire when their wall deadline is really
due, and completions resolve the submitters' futures.

Contracts the simulations already enforce carry over unchanged:

* **Checker-clean trace.**  Every admitted query gets the full lifecycle
  (``submit → plan → exec.start → complete → ledger``) with an
  :class:`~repro.obs.ledger.IVLedgerEntry` whose ``recompute_iv`` is
  bit-identical to the reported IV; shed queries get ``mqo.shed`` and no
  ``submit`` (they never enter the system).  ``TraceChecker().check``
  passes on a drained service's trace — ``serve-smoke`` asserts it.
* **Deterministic replay.**  The service records every arrival as an
  :class:`~repro.mqo.online.ArrivalRecord` (stamp + heap position);
  :meth:`QueryService.replay` re-runs the trace through a
  :class:`~repro.sim.clocks.SimClock` and reproduces the live
  ``decisions`` log exactly (the clock-equivalence property).
* **Live telemetry.**  A :class:`~repro.obs.live.LiveRegistry` and
  :class:`~repro.obs.slo.SLOMonitor` subscribe to the same tracer; the
  HTTP layer serves their snapshot as ``/metrics`` and the dashboard
  renderer as ``/status``.  Shutdown finalizes the monitor so no alert
  dangles open.

Stream time is in minutes (``WallClock.seconds_per_minute`` compresses
it); the service's *logical* clock — what the tracer stamps — is the
event time of the latest popped event, so trace times are exactly the
times the scheduling decisions were made at.
"""

from __future__ import annotations

import asyncio
import typing
from dataclasses import dataclass, replace

from repro.core.value import information_value
from repro.errors import WorkloadError
from repro.experiments.fig9 import Fig9Config, build_mqo_scheduler
from repro.mqo.ga import GAConfig
from repro.mqo.online import (
    ArrivalRecord,
    OnlineConfig,
    OnlineMQOScheduler,
    OnlineSession,
    replay_decisions,
)
from repro.obs import events
from repro.obs.checker import TraceChecker, Violation
from repro.obs.ledger import IVLedgerEntry
from repro.obs.live import LiveRegistry
from repro.obs.slo import SLOMonitor, default_slo_rules
from repro.sim.clocks import WallClock
from repro.sim.trace import Tracer
from repro.workload.generator import random_queries
from repro.workload.query import DSSQuery, Workload

__all__ = ["ServeConfig", "QueryService"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one service instance."""

    #: Wall seconds per stream minute (1.0 = compressed; 60.0 = honest
    #: real time; benches go much smaller).
    seconds_per_minute: float = 1.0
    #: Rolling re-optimization window (stream minutes).
    window: float = 2.0
    #: Pending-queue bound; overflow defers to the next window.
    max_pending: int = 16
    #: Admission floor (shed below this IV upper bound).
    iv_floor: float = 0.0
    #: Optimize immediately on arrival to an idle system.
    eager_start: bool = True
    #: How many query templates the catalog workload exposes.
    num_templates: int = 12
    #: Seed for the synthetic federation and the GA.
    seed: int = 11
    #: GA generations per group (serving favors low re-optimization cost).
    ga_generations: int = 20
    #: Tracer retention (None = unbounded; a long-lived service bounds it).
    trace_capacity: int | None = None
    #: Attach the stock SLO rule set.
    slo: bool = True


class QueryService:
    """Accepts live query submissions and schedules them in real time.

    Drive it from asyncio: start :meth:`run` as a task, call
    :meth:`submit` from request handlers, await the returned futures,
    and finish with :meth:`begin_shutdown` (the run task then drains and
    returns).  All methods are event-loop-internal — no locking, exactly
    like the single-threaded sim loop this mirrors.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        base, setup = build_mqo_scheduler(Fig9Config(seed=self.config.seed))
        self.templates: list[DSSQuery] = random_queries(
            setup.instance, count=self.config.num_templates,
            seed=self.config.seed + 1000,
        )
        self._template_by_name = {
            template.name: template for template in self.templates
        }
        self._logical_now = 0.0
        self.tracer = Tracer(
            lambda: self._logical_now, capacity=self.config.trace_capacity
        )
        self.registry = LiveRegistry().attach(self.tracer)
        self.monitor: SLOMonitor | None = None
        if self.config.slo:
            self.monitor = SLOMonitor(
                default_slo_rules(), self.registry
            ).attach(self.tracer)
        self.scheduler = OnlineMQOScheduler(
            base.catalog,
            base.cost_provider,
            base.default_rates,
            ga_config=GAConfig(generations=self.config.ga_generations),
            seed=base.seed,
            max_candidates=base.max_candidates,
            tracer=self.tracer,
            config=OnlineConfig(
                window=self.config.window,
                max_pending=self.config.max_pending,
                iv_floor=self.config.iv_floor,
                eager_start=self.config.eager_start,
            ),
        )
        self.workload = Workload()
        self.clock = WallClock(
            seconds_per_minute=self.config.seconds_per_minute
        )
        self.session: OnlineSession = self.scheduler.session(
            self.workload, self.clock
        )
        self.session.accepting = True
        self._next_qid = 0
        self._pops = 0
        self._decision_cursor = 0
        self._stop_pops: int | None = None
        self.arrival_log: list[ArrivalRecord] = []
        self.results: dict[int, dict] = {}
        self._decision_futures: dict[int, asyncio.Future] = {}
        self._result_futures: dict[int, asyncio.Future] = {}
        self._finished = asyncio.Event()

    # -- submissions ---------------------------------------------------------

    @property
    def accepting(self) -> bool:
        """Whether new submissions are currently admitted."""
        return self.session.accepting

    def _resolve_template(self, template: object) -> DSSQuery:
        if isinstance(template, int) or (
            isinstance(template, str) and template.lstrip("-").isdigit()
        ):
            index = int(template)
            if not 0 <= index < len(self.templates):
                raise WorkloadError(
                    f"template index {index} out of range "
                    f"0..{len(self.templates) - 1}"
                )
            return self.templates[index]
        if template in self._template_by_name:
            return self._template_by_name[typing.cast(str, template)]
        raise WorkloadError(
            f"unknown template {template!r}; expected an index or one of "
            f"{sorted(self._template_by_name)}"
        )

    def submit(
        self,
        template: object,
        business_value: float | None = None,
    ) -> tuple[int, asyncio.Future, asyncio.Future]:
        """Submit one query; returns ``(qid, decision, result)`` futures.

        ``decision`` resolves to ``"admitted" | "deferred" | "shed"`` once
        the scheduling loop handles the arrival; ``result`` resolves to
        the result payload (with the IV ledger entry) at completion — or
        immediately to a shed notice.  Raises
        :class:`~repro.errors.WorkloadError` on an unknown template or a
        service that is shutting down.
        """
        if not self.session.accepting:
            raise WorkloadError("service is shutting down; not accepting")
        query = self._resolve_template(template)
        qid = self._next_qid
        self._next_qid += 1
        query = replace(query, query_id=qid)
        if business_value is not None:
            query = query.with_value(business_value)
        stamp = self.clock.now
        loop = asyncio.get_running_loop()
        decision: asyncio.Future = loop.create_future()
        result: asyncio.Future = loop.create_future()
        self._decision_futures[qid] = decision
        self._result_futures[qid] = result
        self.workload.add(query, arrival=stamp)
        # The heap position (pops_before) is the half of the arrival's
        # identity a timestamp can't carry — see ArrivalRecord.
        self.arrival_log.append(ArrivalRecord(qid, stamp, self._pops))
        self.clock.push(stamp, "arrival", qid)
        return qid, decision, result

    # -- the serving loop ----------------------------------------------------

    async def run(self) -> None:
        """Pop clock events until shutdown drains the last one."""
        drained = False
        while True:
            item = await self.clock.wait_pop()
            if item is None:
                if not drained:
                    drained = True
                    self.session.drain()
                    if self.clock:  # pragma: no cover - drain is a no-op
                        continue    # when windows did their job
                break
            now, tag, payload = item
            self._pops += 1
            self._logical_now = max(self._logical_now, now)
            outcome = self.session.handle(now, tag, payload)
            if tag == "arrival":
                self._on_arrival(typing.cast(int, payload), outcome)
            self._emit_new_starts()
            if tag == "completion":
                self._on_completion(typing.cast(int, payload), now)
        if self.monitor is not None:
            self.monitor.finalize(self._logical_now)
        self._finished.set()

    def begin_shutdown(self) -> None:
        """Stop accepting and let :meth:`run` drain and return."""
        if self._stop_pops is None:
            self._stop_pops = self._pops
        self.session.accepting = False
        self.clock.stop()

    async def wait_finished(self) -> None:
        """Block until :meth:`run` has fully drained."""
        await self._finished.wait()

    # -- event bookkeeping ---------------------------------------------------

    def _on_arrival(self, qid: int, outcome: str | None) -> None:
        query = self.workload.query(qid)
        decision = self._decision_futures.pop(qid, None)
        if decision is not None and not decision.done():
            decision.set_result(outcome)
        if outcome == "shed":
            # No submit event: a shed query never enters the system, so
            # the lifecycle checker must not expect a completion.
            self._finish(qid, {
                "qid": qid, "query": query.name, "outcome": "shed",
            })
            return
        self.tracer.emit(events.SUBMIT, query.name, qid=qid)
        self.tracer.emit(
            events.PLAN, query.name,
            qid=qid, est_iv=self.session.evaluator.upper_bound(qid),
        )

    def _emit_new_starts(self) -> None:
        decisions = self.session.decisions
        for entry in decisions[self._decision_cursor:]:
            if entry[0] == "start":
                qid = entry[1]
                self.tracer.emit(
                    events.EXEC_START, self.workload.query(qid).name,
                    qid=qid, begin=entry[2],
                )
        self._decision_cursor = len(decisions)

    def _on_completion(self, qid: int, completed_at: float) -> None:
        assignment = self.session.started[qid]
        query = assignment.query
        rates = assignment.plan.rates
        submitted_at = self.workload.arrival_of(qid)
        started_at = max(assignment.begin, submitted_at)
        # The event's pop time is the completion instant the service
        # observed (>= the analytic completion when dispatch ran late);
        # using it keeps COMPLETE's trace time and the ledger bit-equal.
        cl = completed_at - submitted_at
        sl = max(0.0, completed_at - assignment.data_timestamp)
        iv = information_value(query.business_value, cl, sl, rates)
        entry = IVLedgerEntry(
            query=query.name,
            query_id=qid,
            business_value=query.business_value,
            lambda_cl=rates.computational,
            lambda_sl=rates.synchronization,
            submitted_at=submitted_at,
            started_at=started_at,
            remote_done_at=started_at,
            local_granted_at=started_at,
            local_done_at=completed_at,
            completed_at=completed_at,
            data_timestamp=assignment.data_timestamp,
            queue_wait=0.0,
            remote_wait=0.0,
            retries=0,
            failovers=0,
            degraded=False,
            failed=False,
            reported_iv=iv,
            versions=(),
        )
        self.tracer.emit(
            events.COMPLETE, query.name, qid=qid, iv=iv, cl=cl, sl=sl
        )
        self.tracer.emit(events.LEDGER, query.name, **entry.to_dict())
        self._finish(qid, {
            "qid": qid,
            "query": query.name,
            "outcome": "completed",
            "iv": iv,
            "cl": cl,
            "sl": sl,
            "submitted_at": submitted_at,
            "completed_at": completed_at,
            "ledger": entry.to_dict(),
        })

    def _finish(self, qid: int, payload: dict) -> None:
        self.results[qid] = payload
        future = self._result_futures.pop(qid, None)
        if future is not None and not future.done():
            future.set_result(payload)

    # -- introspection -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The live registry's snapshot at the current logical time."""
        return self.registry.snapshot(self._logical_now)

    def status_html(self) -> str:
        """The live status page (dashboard renderer over the registry)."""
        from repro.reporting.dashboard import live_report_html

        alerts = self.monitor.alerts if self.monitor is not None else []
        return live_report_html(
            [self.metrics_snapshot()], alerts,
            title="repro serve — live status",
        )

    def check_trace(self) -> list[Violation]:
        """Run the TraceChecker over everything traced so far."""
        return TraceChecker().check(self.tracer.records)

    def replay(self) -> OnlineSession:
        """Re-run the recorded arrival trace under a :class:`SimClock`.

        Builds a fresh tracer-less scheduler over the same federation and
        a workload carrying the recorded arrival stamps, then replays the
        arrival log at its recorded heap positions.  The returned
        session's ``decisions`` must equal this service's — the
        clock-equivalence contract behind the whole Clock seam.
        """
        scheduler = OnlineMQOScheduler(
            self.scheduler.catalog,
            self.scheduler.cost_provider,
            self.scheduler.default_rates,
            ga_config=self.scheduler.ga_config,
            seed=self.scheduler.seed,
            max_candidates=self.scheduler.max_candidates,
            tracer=None,
            config=self.scheduler.config,
        )
        workload = Workload()
        for record in self.arrival_log:
            workload.add(
                self.workload.query(record.query_id), arrival=record.time
            )
        return replay_decisions(
            scheduler, workload, self.arrival_log,
            stop_accepting_at=self._stop_pops,
        )
