"""Span trees: a query's lifecycle as nested timed intervals.

A :class:`Span` is the familiar tracing primitive — name, start, end,
children, attributes.  :func:`build_query_spans` assembles one root span
per query from a trace: the root covers submission to completion, its
children are the five CL phases from the IV audit ledger, and the remote
phase nests one child span per remote leg (granted → done), reconstructed
from the leg events.  The ASCII renderer answers "why did this query take
so long?" at a glance.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.obs import events
from repro.obs.ledger import IVLedgerEntry

__all__ = ["Span", "build_query_spans", "render_span"]


@dataclass
class Span:
    """One timed interval with nested children."""

    name: str
    start: float
    end: float
    children: list["Span"] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Minutes covered by this span."""
        return self.end - self.start

    def walk(self) -> Iterable["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def _leg_spans(
    records: Sequence, qid: int
) -> list[Span]:
    """Reconstruct per-site leg spans (granted → done) for one query."""
    spans: list[Span] = []
    granted: dict[tuple[int, int], float] = {}  # (site, attempt) -> time
    attempts: dict[int, int] = {}
    for record in records:
        if record.detail.get("qid") != qid:
            continue
        site = record.detail.get("site")
        if site is None:
            continue
        if record.kind == events.LEG_GRANTED:
            attempt = attempts.get(site, 0)
            granted[(site, attempt)] = record.time
        elif record.kind == events.LEG_RETRY:
            attempts[site] = attempts.get(site, 0) + 1
        elif record.kind == events.LEG_DONE:
            attempt = attempts.get(site, 0)
            start = granted.get((site, attempt), record.time)
            spans.append(Span(
                name=f"leg@site{site}",
                start=start,
                end=record.time,
                attrs={
                    "site": site,
                    "attempts": attempt + 1,
                    "freshness": record.detail.get("freshness"),
                },
            ))
    return spans


def build_query_spans(records: Sequence) -> list[Span]:
    """One root span per query, built from a trace's ledger + leg events.

    Queries whose ledger entry is missing (trace truncated by capacity)
    are skipped — a span tree without its timestamps would be guesswork.
    """
    spans: list[Span] = []
    for record in records:
        if record.kind != events.LEDGER:
            continue
        entry = IVLedgerEntry.from_dict(record.detail)
        root = Span(
            name=f"{entry.query}#{entry.query_id}",
            start=entry.submitted_at,
            end=entry.completed_at,
            attrs={
                "iv": entry.reported_iv,
                "cl": entry.computational_latency,
                "sl": entry.synchronization_latency,
                "failed": entry.failed,
                "degraded": entry.degraded,
            },
        )
        if entry.scheduled_delay > 0.0:
            root.children.append(Span(
                "scheduled-delay", entry.submitted_at, entry.started_at
            ))
        remote = Span("remote", entry.started_at, entry.remote_done_at)
        remote.children.extend(_leg_spans(records, entry.query_id))
        if remote.duration > 0.0 or remote.children:
            root.children.append(remote)
        if not entry.failed:
            if entry.queue_wait > 0.0:
                root.children.append(Span(
                    "local-queue", entry.remote_done_at, entry.local_granted_at
                ))
            root.children.append(Span(
                "processing", entry.local_granted_at, entry.local_done_at
            ))
            if entry.transfer > 0.0:
                root.children.append(Span(
                    "transfer", entry.local_done_at, entry.completed_at
                ))
        spans.append(root)
    return spans


def render_span(span: Span, indent: int = 0) -> str:
    """ASCII rendering of a span tree (one line per span)."""
    pad = "  " * indent
    extras = " ".join(
        f"{key}={value}" for key, value in sorted(span.attrs.items())
        if value is not None
    )
    line = (
        f"{pad}{span.name:<18} [{span.start:10.4f} → {span.end:10.4f}] "
        f"({span.duration:8.4f} min)"
    )
    if extras:
        line = f"{line} {extras}"
    lines = [line]
    for child in span.children:
        lines.append(render_span(child, indent + 1))
    return "\n".join(lines)
