"""Integration: MQO scheduling realized inside the DES via the system API."""

from __future__ import annotations

import pytest

from repro.baselines import ivqp_router
from repro.core.value import DiscountRates
from repro.federation.costmodel import CostParameters
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.mqo.ga import GAConfig
from repro.workload.query import DSSQuery, Workload


def build_config() -> SystemConfig:
    return SystemConfig(
        tables=[
            TableSpec("a", site=0, row_count=8_000),
            TableSpec("b", site=1, row_count=8_000),
            TableSpec("c", site=0, row_count=4_000),
        ],
        replicated=["a", "b", "c"],
        sync_mode="periodic",
        sync_mean_interval=5.0,
        rates=DiscountRates.symmetric(0.12),
        cost_params=CostParameters(
            local_throughput=2_000.0, remote_throughput=800.0
        ),
        local_capacity=1,
        seed=4,
    )


def build_burst() -> Workload:
    workload = Workload()
    for index in range(5):
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}",
                tables=("a", "b") if index % 2 else ("b", "c"),
            ),
            arrival=2.0 + 0.2 * index,
        )
    return workload


class TestSubmitWorkloadMqo:
    def test_decision_realizes_in_simulation(self):
        system = build_system(build_config(), ivqp_router)
        decision = system.submit_workload_mqo(
            build_burst(), ga_config=GAConfig(generations=10), seed=1
        )
        system.run()
        assert len(system.outcomes) == 5
        # Realized IVs must not fall below the analytic (conservative) plan.
        analytic = {
            a.query.query_id: a.information_value
            for a in decision.result.assignments
        }
        for outcome in system.outcomes:
            assert outcome.information_value >= (
                analytic[outcome.query.query_id] - 1e-6
            )

    def test_mqo_realization_beats_naive_submission(self):
        """The full loop: MQO-in-DES vs FIFO-in-DES on the same burst."""
        naive = build_system(build_config(), ivqp_router)
        naive.submit_workload(build_burst())
        naive.run()

        scheduled = build_system(build_config(), ivqp_router)
        scheduled.submit_workload_mqo(
            build_burst(), ga_config=GAConfig(generations=15), seed=1
        )
        scheduled.run()

        naive_total = sum(o.information_value for o in naive.outcomes)
        mqo_total = sum(o.information_value for o in scheduled.outcomes)
        assert mqo_total >= naive_total - 1e-6

    def test_decision_groups_cover_workload(self):
        system = build_system(build_config(), ivqp_router)
        decision = system.submit_workload_mqo(build_burst())
        covered = sorted(qid for group in decision.groups for qid in group)
        assert covered == [1, 2, 3, 4, 5]
        system.run()
        assert len(system.outcomes) == 5
