"""The discrete-event simulator core.

:class:`Simulator` keeps a priority queue of triggered events ordered by
firing time (ties broken by insertion order) and advances the
:class:`~repro.sim.clock.SimulationClock` from event to event — the classic
event-driven world view of JavaSim, which the paper's evaluation uses to
"simulate the distributed processing effect".
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import SimulationClock
from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Simulator"]


class Simulator:
    """An event-driven simulation kernel.

    Typical use::

        sim = Simulator()

        def customer(sim):
            yield sim.timeout(5.0)
            print("done at", sim.now)

        sim.process(customer(sim))
        sim.run(until=100.0)
    """

    def __init__(self, start: float = 0.0) -> None:
        self._clock = SimulationClock(start)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._processed = 0

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in minutes."""
        return self._clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events delivered so far."""
        return self._processed

    # -- event factories ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event that fires ``delay`` minutes from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        return AnyOf(self, list(events))

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SchedulingError(f"call_at({time}) is in the past (now={self.now})")
        event = self.timeout(time - self.now)
        event.callbacks.append(lambda _event: fn())
        return event

    # -- scheduling --------------------------------------------------------

    def schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Insert a triggered event into the queue ``delay`` minutes ahead."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay} minutes into the past")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    # -- execution ---------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Deliver the single next event."""
        if not self._queue:
            raise SimulationError("step() called on an empty event queue")
        time, _seq, event = heapq.heappop(self._queue)
        self._clock.advance_to(time)
        self._processed += 1
        event._deliver()

    def run(self, until: float | Event | None = None) -> None:
        """Run until the queue drains, a deadline passes, or an event fires.

        Parameters
        ----------
        until:
            ``None`` runs to queue exhaustion.  A ``float`` runs until the
            clock would pass that time (the clock is then advanced to it
            exactly).  An :class:`Event` runs until that event has been
            processed.
        """
        if isinstance(until, Event):
            stop = until
            if stop.processed:
                return
            done: list[bool] = []
            stop.callbacks.append(lambda _event: done.append(True))
            while not done:
                if not self._queue:
                    raise SimulationError(
                        f"simulation ran out of events before {stop!r} fired"
                    )
                self.step()
            return

        deadline = float("inf") if until is None else float(until)
        if deadline < self.now:
            raise SchedulingError(
                f"run(until={deadline}) is in the past (now={self.now})"
            )
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._clock.advance_to(deadline)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now:.4f}, queued={len(self._queue)})"
