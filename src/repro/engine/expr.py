"""Scalar and boolean expressions over qualified column names.

Expressions are evaluated against a *row namespace*: a ``dict`` mapping
``"table.column"`` qualified names to values.  The same tree supports
selectivity estimation (see :mod:`repro.engine.stats`).
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from collections.abc import Mapping

from repro.errors import EngineError

__all__ = ["Expr", "Col", "Const", "Compare", "And", "Or", "Not", "Arith"]

_COMPARATORS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expr(ABC):
    """Base class of all expressions."""

    @abstractmethod
    def evaluate(self, row: Mapping[str, object]):
        """Value of the expression in the given row namespace."""

    @abstractmethod
    def columns(self) -> set[str]:
        """Qualified column names referenced by this expression."""

    # Operator sugar so query definitions read naturally.

    def __eq__(self, other):  # type: ignore[override]
        return Compare("==", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Compare("!=", self, _wrap(other))

    def __lt__(self, other):
        return Compare("<", self, _wrap(other))

    def __le__(self, other):
        return Compare("<=", self, _wrap(other))

    def __gt__(self, other):
        return Compare(">", self, _wrap(other))

    def __ge__(self, other):
        return Compare(">=", self, _wrap(other))

    def __add__(self, other):
        return Arith("+", self, _wrap(other))

    def __sub__(self, other):
        return Arith("-", self, _wrap(other))

    def __mul__(self, other):
        return Arith("*", self, _wrap(other))

    def __truediv__(self, other):
        return Arith("/", self, _wrap(other))

    def __and__(self, other):
        return And(self, _require_bool(other))

    def __or__(self, other):
        return Or(self, _require_bool(other))

    def __invert__(self):
        return Not(_require_bool(self))

    __hash__ = None  # type: ignore[assignment]


def _wrap(value) -> "Expr":
    if isinstance(value, Expr):
        return value
    return Const(value)


def _require_bool(value) -> "Expr":
    if not isinstance(value, Expr):
        raise EngineError(f"boolean combinator needs an expression, got {value!r}")
    return value


class Col(Expr):
    """Reference to a qualified column, e.g. ``Col("orders.o_custkey")``."""

    def __init__(self, qualified: str) -> None:
        if "." not in qualified:
            raise EngineError(
                f"column reference {qualified!r} must be qualified as table.column"
            )
        self.qualified = qualified
        self.table, self.column = qualified.split(".", 1)

    def evaluate(self, row: Mapping[str, object]):
        try:
            return row[self.qualified]
        except KeyError:
            raise EngineError(f"row namespace has no column {self.qualified!r}")

    def columns(self) -> set[str]:
        return {self.qualified}

    def __repr__(self) -> str:
        return f"Col({self.qualified!r})"


class Const(Expr):
    """A literal value."""

    def __init__(self, value) -> None:
        self.value = value

    def evaluate(self, row: Mapping[str, object]):
        return self.value

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Compare(Expr):
    """A binary comparison yielding a boolean (NULL operands compare False)."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARATORS:
            raise EngineError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, object]) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        return bool(_COMPARATORS[self.op](left, right))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    @property
    def is_equi_join(self) -> bool:
        """True when this is ``colA == colB`` across two tables."""
        return (
            self.op == "=="
            and isinstance(self.left, Col)
            and isinstance(self.right, Col)
            and self.left.table != self.right.table
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Arith(Expr):
    """Binary arithmetic (NULL propagates)."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITHMETIC:
            raise EngineError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, object]):
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        return _ARITHMETIC[self.op](left, right)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    """Logical conjunction."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def conjuncts(self) -> list[Expr]:
        """Flatten nested conjunctions into a list of terms."""
        terms: list[Expr] = []
        for side in (self.left, self.right):
            if isinstance(side, And):
                terms.extend(side.conjuncts())
            else:
                terms.append(side)
        return terms

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class Or(Expr):
    """Logical disjunction."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class Not(Expr):
    """Logical negation."""

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return not bool(self.operand.evaluate(row))

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"
