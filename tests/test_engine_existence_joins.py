"""Unit and property tests: semi/anti joins and a brute-force join oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.expr import Col
from repro.engine.ops import AntiJoin, ExecutionStats, Scan, SemiJoin
from repro.engine.planner import Database, Planner
from repro.engine.query import QueryBuilder
from repro.engine.schema import Column, DType, TableSchema
from repro.engine.table import Table
from repro.errors import EngineError


def customers() -> Table:
    schema = TableSchema(
        "customers", (Column("id", DType.INT), Column("name", DType.STR)),
    )
    return Table(schema, rows=[
        (1, "with-orders"), (2, "no-orders"), (3, "with-orders-too"),
        (4, None), (None, "null-key"),
    ], validate=False)


def orders() -> Table:
    schema = TableSchema(
        "orders", (Column("oid", DType.INT), Column("cust", DType.INT)),
    )
    return Table(schema, rows=[
        (10, 1), (11, 1), (12, 3), (13, None),
    ])


class TestSemiJoin:
    def test_keeps_left_rows_with_matches_once(self):
        stats = ExecutionStats()
        node = SemiJoin(
            Scan(customers(), "c", stats), Scan(orders(), "o", stats),
            ["c.id"], ["o.cust"],
        )
        rows = list(node)
        assert [row["c.id"] for row in rows] == [1, 3]  # no duplicates

    def test_columns_are_left_side_only(self):
        stats = ExecutionStats()
        node = SemiJoin(
            Scan(customers(), "c", stats), Scan(orders(), "o", stats),
            ["c.id"], ["o.cust"],
        )
        assert node.columns == ("c.id", "c.name")

    def test_null_keys_never_match(self):
        stats = ExecutionStats()
        node = SemiJoin(
            Scan(customers(), "c", stats), Scan(orders(), "o", stats),
            ["c.id"], ["o.cust"],
        )
        assert all(row["c.id"] is not None for row in node)


class TestAntiJoin:
    def test_keeps_left_rows_without_matches(self):
        stats = ExecutionStats()
        node = AntiJoin(
            Scan(customers(), "c", stats), Scan(orders(), "o", stats),
            ["c.id"], ["o.cust"],
        )
        ids = [row["c.id"] for row in node]
        assert 2 in ids  # genuinely unmatched
        assert 4 in ids
        assert None in ids  # NULL key: NOT EXISTS keeps it
        assert 1 not in ids

    def test_semi_and_anti_partition_the_left(self):
        stats = ExecutionStats()
        semi = list(SemiJoin(
            Scan(customers(), "c", stats), Scan(orders(), "o", stats),
            ["c.id"], ["o.cust"],
        ))
        anti = list(AntiJoin(
            Scan(customers(), "c", stats), Scan(orders(), "o", stats),
            ["c.id"], ["o.cust"],
        ))
        assert len(semi) + len(anti) == customers().row_count

    def test_validation(self):
        stats = ExecutionStats()
        with pytest.raises(EngineError):
            SemiJoin(
                Scan(customers(), "c", stats), Scan(orders(), "o", stats),
                [], [],
            )
        with pytest.raises(EngineError):
            AntiJoin(
                Scan(customers(), "c", ExecutionStats()),
                Scan(orders(), "o", ExecutionStats()),
                ["c.id"], ["o.cust"],
            )


# -- brute-force oracle for the planner's join pipeline --------------------------


def _brute_force_join(left_rows, right_rows, left_key, right_key):
    result = []
    for lrow in left_rows:
        for rrow in right_rows:
            if (
                lrow[left_key] is not None
                and lrow[left_key] == rrow[right_key]
            ):
                result.append((lrow, rrow))
    return result


@settings(max_examples=60, deadline=None)
@given(
    left_keys=st.lists(
        st.integers(min_value=0, max_value=6), min_size=0, max_size=15
    ),
    right_keys=st.lists(
        st.integers(min_value=0, max_value=6), min_size=0, max_size=15
    ),
)
def test_planner_join_matches_nested_loop_oracle(left_keys, right_keys):
    """The planner's hash-join pipeline equals a brute-force nested loop."""
    left_schema = TableSchema(
        "lhs", (Column("k", DType.INT), Column("tag", DType.INT)),
    )
    right_schema = TableSchema(
        "rhs", (Column("k", DType.INT), Column("tag", DType.INT)),
    )
    db = Database()
    db.add(Table(left_schema, rows=[(k, i) for i, k in enumerate(left_keys)]))
    db.add(Table(right_schema, rows=[(k, i) for i, k in enumerate(right_keys)]))

    query = (
        QueryBuilder("oracle")
        .table("lhs", "l").table("rhs", "r")
        .join("l.k", "r.k")
        .select("lk", Col("l.k"))
        .select("ltag", Col("l.tag"))
        .select("rtag", Col("r.tag"))
        .build()
    )
    rows = Planner(db).plan(query).execute()
    got = sorted((row["lk"], row["ltag"], row["rtag"]) for row in rows)

    expected = sorted(
        (lk, li, ri)
        for li, lk in enumerate(left_keys)
        for ri, rk in enumerate(right_keys)
        if lk == rk
    )
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(
    left_keys=st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
        min_size=0, max_size=12,
    ),
    right_keys=st.lists(
        st.integers(min_value=0, max_value=4), min_size=0, max_size=12
    ),
)
def test_semi_plus_anti_equals_left_for_any_inputs(left_keys, right_keys):
    left_schema = TableSchema("lhs", (Column("k", DType.INT),))
    right_schema = TableSchema("rhs", (Column("k", DType.INT),))
    left = Table(left_schema, rows=[(k,) for k in left_keys], validate=False)
    right = Table(right_schema, rows=[(k,) for k in right_keys])
    stats = ExecutionStats()
    semi = list(SemiJoin(
        Scan(left, "l", stats), Scan(right, "r", stats), ["l.k"], ["r.k"]
    ))
    anti = list(AntiJoin(
        Scan(left, "l", stats), Scan(right, "r", stats), ["l.k"], ["r.k"]
    ))
    assert len(semi) + len(anti) == len(left_keys)
    right_set = {k for k in right_keys}
    for row in semi:
        assert row["l.k"] in right_set
    for row in anti:
        assert row["l.k"] is None or row["l.k"] not in right_set
