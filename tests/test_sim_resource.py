"""Unit tests: queueing resources (the sites' server pools)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.resource import PriorityResource, Resource


def hold(sim, resource, duration, log, tag, priority=0.0):
    request = resource.request(priority=priority)
    yield request
    log.append((tag, "start", sim.now))
    yield sim.timeout(duration)
    resource.release(request)
    log.append((tag, "end", sim.now))


class TestResourceBasics:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_immediate_grant_when_free(self, sim):
        resource = Resource(sim, capacity=1)
        log = []
        sim.process(hold(sim, resource, 2.0, log, "a"))
        sim.run()
        assert log == [("a", "start", 0.0), ("a", "end", 2.0)]

    def test_fifo_queueing(self, sim):
        resource = Resource(sim, capacity=1)
        log = []
        sim.process(hold(sim, resource, 2.0, log, "a"))
        sim.process(hold(sim, resource, 2.0, log, "b"))
        sim.run()
        starts = [(tag, t) for tag, what, t in log if what == "start"]
        assert starts == [("a", 0.0), ("b", 2.0)]

    def test_capacity_two_runs_in_parallel(self, sim):
        resource = Resource(sim, capacity=2)
        log = []
        for tag in ("a", "b"):
            sim.process(hold(sim, resource, 2.0, log, tag))
        sim.run()
        starts = [t for _tag, what, t in log if what == "start"]
        assert starts == [0.0, 0.0]

    def test_in_use_and_queue_length(self, sim):
        resource = Resource(sim, capacity=1)
        log = []
        sim.process(hold(sim, resource, 5.0, log, "a"))
        sim.process(hold(sim, resource, 5.0, log, "b"))
        sim.run(until=1.0)
        assert resource.in_use == 1
        assert resource.queue_length == 1

    def test_release_of_nonholder_raises(self, sim):
        resource = Resource(sim, capacity=1)
        holder = resource.request()
        waiter = resource.request()
        sim.run()
        del holder
        with pytest.raises(SimulationError):
            resource.release(waiter)

    def test_wait_time_accounting(self, sim):
        resource = Resource(sim, capacity=1)
        log = []
        sim.process(hold(sim, resource, 3.0, log, "a"))
        sim.process(hold(sim, resource, 1.0, log, "b"))
        sim.run()
        assert resource.total_requests == 2
        assert resource.total_wait == pytest.approx(3.0)  # b waited 3


class TestCancel:
    def test_cancel_removes_queued_request(self, sim):
        resource = Resource(sim, capacity=1)
        holder = resource.request()
        sim.run()
        waiter = resource.request()
        waiter.cancel()
        resource.release(holder)
        sim.run()
        assert resource.in_use == 0

    def test_cancel_of_granted_request_raises(self, sim):
        resource = Resource(sim, capacity=1)
        holder = resource.request()
        sim.run()
        with pytest.raises(SimulationError):
            holder.cancel()


class TestPriorityResource:
    def test_lower_priority_value_runs_first(self, sim):
        resource = PriorityResource(sim, capacity=1)
        log = []

        def submit_later(sim):
            # Occupy the server, then enqueue b (low priority number) after c.
            yield sim.timeout(0.0)
            sim.process(hold(sim, resource, 1.0, log, "c", priority=5.0))
            sim.process(hold(sim, resource, 1.0, log, "b", priority=1.0))

        sim.process(hold(sim, resource, 2.0, log, "a"))
        sim.process(submit_later(sim))
        sim.run()
        order = [tag for tag, what, _t in log if what == "start"]
        assert order == ["a", "b", "c"]
