"""Comparison approaches from Section 4.1 plus the IVQP router factory.

* **Federation** — no replicas at the DSS: every query is decomposed and
  executed at the remote servers, immediately.
* **Data Warehouse** — every base table has a local replica; queries are
  answered entirely from replicas, immediately, never contacting remote
  servers.
* **IVQP** — the paper's information value-driven router.
"""

from repro.baselines.federation import FederationRouter, federation_router
from repro.baselines.ivqp import ivqp_router
from repro.baselines.replay import ReplayRouter
from repro.baselines.warehouse import WarehouseRouter, warehouse_router

__all__ = [
    "FederationRouter",
    "ReplayRouter",
    "WarehouseRouter",
    "federation_router",
    "ivqp_router",
    "warehouse_router",
]
