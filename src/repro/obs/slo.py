"""Declarative SLO rules evaluated live over a streaming run.

An :class:`SLORule` names one metric of the :class:`~repro.obs.live.LiveRegistry`
snapshot (dotted path, e.g. ``"quantiles.query.sl.p95"``), a breach
comparison and thresholds with **hysteresis**: the alert opens when the
metric crosses ``threshold`` (after an optional ``min_dwell`` of sustained
breach, to suppress flapping on a single bad sample) and only closes once
the metric comes back past ``clear`` — which may be stricter than
``threshold``, so a metric hovering at the line doesn't open/close every
record.

:class:`SLOMonitor` folds snapshots as the run streams by (attach it after
a :class:`LiveRegistry` on the same tracer so it always reads up-to-date
state) and emits typed ``alert.open`` / ``alert.close`` trace events,
each carrying the rule name, the observed value, the thresholds and the
breach window — the :class:`~repro.obs.checker.TraceChecker` audits that
these alternate and reference real times, and
:meth:`SLOMonitor.replay` re-derives the expected alerts from any trace
so coverage ("every breach was alerted") is itself checkable.
"""

from __future__ import annotations

import json
import typing
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.obs import events
from repro.obs.live import LiveRegistry

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence

    from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "SLORule",
    "Alert",
    "SLOMonitor",
    "load_slo_rules",
    "default_slo_rules",
]

_OPS = ("above", "below")


@dataclass(frozen=True)
class SLORule:
    """One declarative service-level objective.

    Attributes
    ----------
    name:
        Unique rule name; the alert subject is ``slo:<name>``.
    metric:
        Dotted path into a live snapshot, e.g. ``"gauges.query.iv.realization"``
        or ``"quantiles.query.sl.p95"`` (first segment picks the snapshot
        section, the rest is the metric key).
    op:
        ``"above"`` breaches when the metric exceeds ``threshold``;
        ``"below"`` when it falls under.
    threshold:
        The breach line.
    clear:
        Hysteresis: the value the metric must come back past to close the
        alert (defaults to ``threshold``).  For ``op="above"`` it must be
        <= threshold, for ``"below"`` >= threshold.
    min_dwell:
        Sim minutes the breach must persist before the alert opens (0 =
        open on first breached evaluation).
    """

    name: str
    metric: str
    op: str
    threshold: float
    clear: float | None = None
    min_dwell: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SimulationError(
                f"SLO rule {self.name!r}: op must be one of {_OPS}, got {self.op!r}"
            )
        if "." not in self.metric:
            raise SimulationError(
                f"SLO rule {self.name!r}: metric must be a dotted snapshot "
                f"path, got {self.metric!r}"
            )
        if self.min_dwell < 0:
            raise SimulationError(
                f"SLO rule {self.name!r}: min_dwell must be >= 0"
            )
        if self.clear is not None:
            ordered = (
                self.clear <= self.threshold
                if self.op == "above"
                else self.clear >= self.threshold
            )
            if not ordered:
                raise SimulationError(
                    f"SLO rule {self.name!r}: clear {self.clear} is on the "
                    f"wrong side of threshold {self.threshold} for {self.op!r}"
                )

    @property
    def clear_threshold(self) -> float:
        """The close line (``clear`` or, unset, ``threshold``)."""
        return self.threshold if self.clear is None else self.clear

    def breached(self, value: float) -> bool:
        """Whether ``value`` is past the breach line."""
        return value > self.threshold if self.op == "above" else value < self.threshold

    def cleared(self, value: float) -> bool:
        """Whether ``value`` is back past the close line."""
        clear = self.clear_threshold
        return value <= clear if self.op == "above" else value >= clear

    def read(self, snapshot: dict) -> float | None:
        """Extract this rule's metric from a live snapshot (None if absent)."""
        section, _, key = self.metric.partition(".")
        table = snapshot.get(section)
        if not isinstance(table, dict):
            return None
        value = table.get(key)
        return value if isinstance(value, (int, float)) else None

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        data = {
            "name": self.name,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
        }
        if self.clear is not None:
            data["clear"] = self.clear
        if self.min_dwell:
            data["min_dwell"] = self.min_dwell
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SLORule":
        """Build a rule from a JSON object."""
        try:
            return cls(
                name=data["name"],
                metric=data["metric"],
                op=data["op"],
                threshold=float(data["threshold"]),
                clear=None if data.get("clear") is None else float(data["clear"]),
                min_dwell=float(data.get("min_dwell", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SimulationError(f"malformed SLO rule: {data!r}") from error


@dataclass
class Alert:
    """One realized breach window of a rule."""

    rule: str
    opened_at: float
    value: float            #: metric value when the alert opened
    closed_at: float | None = None
    close_value: float | None = None

    @property
    def open(self) -> bool:
        """Whether the breach is still active."""
        return self.closed_at is None


@dataclass
class _RuleState:
    breach_since: float | None = None   #: first breached evaluation of this episode
    alert: Alert | None = None          #: the currently open alert
    last_value: float | None = None     #: latest observed metric value


class SLOMonitor:
    """Evaluates SLO rules against live snapshots, emitting alert events.

    Call :meth:`attach` with the tracer *after* the registry attached so
    that on each record the registry folds first and the monitor reads the
    updated snapshot; or drive :meth:`evaluate` manually from any snapshot
    source.
    """

    def __init__(
        self,
        rules: "Sequence[SLORule]",
        registry: LiveRegistry,
        tracer: "Tracer | None" = None,
    ) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise SimulationError("duplicate SLO rule names")
        self.rules = list(rules)
        self.registry = registry
        self.tracer = tracer
        self.alerts: list[Alert] = []
        self._states: dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }

    # -- wiring -------------------------------------------------------------

    def attach(self, tracer: "Tracer") -> "SLOMonitor":
        """Evaluate after every future record of ``tracer``; returns self."""
        self.tracer = tracer
        tracer.subscribe(self._on_record)
        return self

    def _on_record(self, record: "TraceRecord") -> None:
        # Alert events are this monitor's own output: evaluating on them
        # would recurse (open emits → subscriber fires → evaluate …).
        if record.kind in events.ALERT_KINDS:
            return
        self.evaluate(self.registry.snapshot(record.time), record.time)

    # -- evaluation ---------------------------------------------------------

    @property
    def open_alerts(self) -> list[Alert]:
        """Currently breaching alerts."""
        return [alert for alert in self.alerts if alert.open]

    def evaluate(self, snapshot: dict, now: float) -> None:
        """Fold one snapshot: open/close alerts per rule with hysteresis."""
        for rule in self.rules:
            value = rule.read(snapshot)
            if value is None:
                continue
            state = self._states[rule.name]
            state.last_value = value
            if state.alert is None:
                if rule.breached(value):
                    if state.breach_since is None:
                        state.breach_since = now
                    if now - state.breach_since >= rule.min_dwell:
                        state.alert = Alert(
                            rule=rule.name, opened_at=now, value=value
                        )
                        self.alerts.append(state.alert)
                        self._emit(
                            events.ALERT_OPEN, rule, value=value,
                            since=state.breach_since,
                        )
                else:
                    state.breach_since = None
            elif rule.cleared(value):
                state.alert.closed_at = now
                state.alert.close_value = value
                self._emit(
                    events.ALERT_CLOSE, rule, value=value,
                    opened_at=state.alert.opened_at,
                )
                state.alert = None
                state.breach_since = None

    def finalize(self, now: float) -> list[Alert]:
        """Close every still-open alert at end of run.

        A run (or service) that stops while a rule is breaching would
        otherwise leave its last ``alert.open`` dangling — the trace fails
        the checker's alert-alternation audit and the HTML dashboard shows
        a breach that outlives the data.  Call this once after the final
        record: each open alert is closed at ``now`` with the last
        observed metric value and an audited ``alert.close`` carrying
        ``final=True`` (the breach did not clear; the run ended).
        Returns the alerts that were force-closed.  Idempotent.
        """
        closed: list[Alert] = []
        for rule in self.rules:
            state = self._states[rule.name]
            alert = state.alert
            if alert is None:
                continue
            value = state.last_value if state.last_value is not None else alert.value
            alert.closed_at = now
            alert.close_value = value
            self._emit(
                events.ALERT_CLOSE, rule, value=value,
                opened_at=alert.opened_at, final=True,
            )
            state.alert = None
            state.breach_since = None
            closed.append(alert)
        return closed

    def _emit(self, kind: str, rule: SLORule, **detail) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                kind, f"slo:{rule.name}",
                rule=rule.name, metric=rule.metric, op=rule.op,
                threshold=rule.threshold, clear=rule.clear_threshold,
                **detail,
            )

    # -- replay (coverage auditing) ----------------------------------------

    @classmethod
    def replay(
        cls,
        records: "Sequence[TraceRecord]",
        rules: "Sequence[SLORule]",
        window: float = 10.0,
        half_life: float = 10.0,
        qos_max_staleness: float | None = None,
    ) -> "SLOMonitor":
        """Re-derive the alerts a live run *should* have raised.

        Feeds the records (alert events excluded) through a fresh registry
        and monitor with no tracer attached; the result's :attr:`alerts`
        is the expected alert sequence — the coverage contract the checker
        compares real ``alert.*`` events against.
        """
        registry = LiveRegistry(
            window=window, half_life=half_life,
            qos_max_staleness=qos_max_staleness,
        )
        monitor = cls(rules, registry)
        for record in records:
            if record.kind in events.ALERT_KINDS:
                continue
            registry.observe(record)
            monitor.evaluate(registry.snapshot(record.time), record.time)
        return monitor


def load_slo_rules(path: str) -> list[SLORule]:
    """Read SLO rules from a JSON file (a list of rule objects)."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise SimulationError(
            f"SLO file {path!r} must contain a JSON list of rules"
        )
    return [SLORule.from_dict(item) for item in data]


def default_slo_rules() -> list[SLORule]:
    """The stock rule set the live dashboard ships with.

    One rule per failure mode the paper's IV model makes expensive:
    realized IV falling behind plan, tail synchronization latency, a shed
    spike, replica staleness and outage dwell.
    """
    return [
        SLORule(
            name="iv-realization-floor",
            metric="gauges.query.iv.realization",
            op="below", threshold=0.7, clear=0.85,
        ),
        SLORule(
            name="sl-p95-ceiling",
            metric="quantiles.query.sl.p95",
            op="above", threshold=20.0, clear=15.0,
        ),
        SLORule(
            name="shed-spike",
            metric="gauges.mqo.shed.ratio",
            op="above", threshold=0.25, clear=0.10,
        ),
        SLORule(
            name="staleness-breach",
            metric="quantiles.sync.staleness.p95",
            op="above", threshold=30.0, clear=20.0,
        ),
        SLORule(
            name="outage-dwell",
            metric="gauges.faults.outage_dwell",
            op="above", threshold=5.0, clear=0.0,
        ),
    ]
