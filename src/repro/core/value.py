"""The Information Value model (paper Section 2).

A report's *business value* is discounted by two latencies, in the style of
present-value analysis::

    IV = BusinessValue × (1 − λ_CL)^CL × (1 − λ_SL)^SL

* ``CL`` — computational latency: queuing + processing + transmission time.
* ``SL`` — synchronization latency: from the last synchronization of the
  stalest table version a plan reads until the result is received.
* ``λ_CL``, ``λ_SL`` — per-minute discount rates expressing how quickly a
  report loses value to each kind of delay (user preferences).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "DiscountRates",
    "information_value",
    "discount_factor",
    "max_tolerable_latency",
]


@dataclass(frozen=True)
class DiscountRates:
    """Per-minute discount rates for the two latency kinds.

    The paper's experiments use rates in {0.01, 0.05, 0.1, 0.15}.
    """

    computational: float
    synchronization: float

    def __post_init__(self) -> None:
        for label, rate in (
            ("computational", self.computational),
            ("synchronization", self.synchronization),
        ):
            if not 0.0 <= rate < 1.0:
                raise ConfigError(
                    f"{label} discount rate must be in [0, 1), got {rate}"
                )

    @classmethod
    def symmetric(cls, rate: float) -> "DiscountRates":
        """Both rates equal (the paper's λ_SL = λ_CL settings)."""
        return cls(rate, rate)


def discount_factor(rate: float, latency: float) -> float:
    """``(1 − rate)^latency`` for a non-negative latency in minutes."""
    if latency < 0:
        raise ConfigError(f"latency must be >= 0, got {latency}")
    if rate == 0.0:
        return 1.0
    return (1.0 - rate) ** latency


def information_value(
    business_value: float,
    computational_latency: float,
    synchronization_latency: float,
    rates: DiscountRates,
) -> float:
    """The paper's IV formula (Section 2).

    Parameters
    ----------
    business_value:
        The user-assigned importance of the report (full value at zero
        latency).
    computational_latency, synchronization_latency:
        Minutes of CL and SL incurred by the chosen plan.
    rates:
        The user's discount-rate preferences.
    """
    if business_value < 0:
        raise ConfigError(f"business value must be >= 0, got {business_value}")
    return (
        business_value
        * discount_factor(rates.computational, computational_latency)
        * discount_factor(rates.synchronization, synchronization_latency)
    )


def max_tolerable_latency(
    business_value: float,
    incumbent_value: float,
    rate: float,
) -> float:
    """Longest latency that could still match an incumbent IV (Section 3.1).

    The scatter-and-gather bound: assuming the *other* latency discounts
    nothing, a plan with latency ``L`` can only beat ``incumbent_value`` if
    ``BV × (1 − rate)^L ≥ incumbent_value``, i.e. ::

        L ≤ log(incumbent_value / BV) / log(1 − rate)

    Returns ``inf`` for a zero rate or a non-positive incumbent (nothing to
    beat), and ``0`` when the incumbent already equals the full business
    value.
    """
    if business_value <= 0:
        raise ConfigError("business value must be > 0 to bound the search")
    if incumbent_value <= 0 or rate <= 0.0:
        return math.inf
    ratio = incumbent_value / business_value
    if ratio >= 1.0:
        return 0.0
    return math.log(ratio) / math.log(1.0 - rate)
