"""Figure 6 — Computational latency per query.

λ_CL = λ_SL = 0.01 and Fq:Fs = 1:10.  "We select 15 queries which are
neither too cheap nor too expensive" — we sort the 22 TPC-H queries by their
footprint size and keep the middle 15.  Each query runs alone on a fresh
system per approach, and its realized computational latency is reported.

Expected shape: IVQP's CL does not always match the cheapest (it optimizes
IV, not CL); for some queries it equals the Data Warehouse CL because the
all-replica plan wins; Federation has the largest CL throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.value import DiscountRates
from repro.experiments.config import TpchSetup, sync_interval_for_ratio
from repro.experiments.runner import run_single_queries
from repro.reporting.tables import ResultTable
from repro.workload.query import DSSQuery

__all__ = ["Fig6Config", "select_mid_cost_queries", "run_fig6"]


@dataclass
class Fig6Config:
    """Parameters of the Figure 6 runs."""

    setup: TpchSetup = field(default_factory=TpchSetup)
    ratio_multiplier: float = 10.0  # Fq:Fs = 1:10
    lambda_both: float = 0.01
    query_count: int = 15
    approaches: tuple[str, ...] = ("ivqp", "federation", "warehouse")
    submit_at: float = 50.0
    system_seed: int = 1


def select_mid_cost_queries(
    setup: TpchSetup, count: int = 15
) -> list[DSSQuery]:
    """The ``count`` mid-cost queries ("neither too cheap nor too expensive").

    Cost rank is by total rows read (footprint); an equal number of extremes
    is dropped from both ends.
    """
    queries = setup.queries()
    rows = setup.instance.row_counts

    def footprint(query: DSSQuery) -> int:
        return sum(rows[name] for name in query.tables)

    ranked = sorted(queries, key=footprint)
    drop = len(ranked) - count
    low = drop // 2
    high = len(ranked) - (drop - low)
    selected = ranked[low:high]
    # Present in original query order (Q1..Q22) for stable figure indices.
    selected.sort(key=lambda query: query.query_id)
    return selected


def run_fig6(config: Fig6Config | None = None) -> ResultTable:
    """Run Figure 6 and return per-query computational latencies."""
    config = config or Fig6Config()
    interval = sync_interval_for_ratio(config.ratio_multiplier)
    rates = DiscountRates.symmetric(config.lambda_both)
    queries = select_mid_cost_queries(config.setup, config.query_count)
    table = ResultTable(
        title="Figure 6: computational latency (minutes) per query",
        headers=["query_index", "query", "approach", "cl_minutes"],
    )
    for approach in config.approaches:
        system_config = config.setup.system_config(
            approach=approach,
            rates=rates,
            sync_mean_interval=interval,
            seed=config.system_seed,
        )
        result = run_single_queries(
            system_config, approach, queries, submit_at=config.submit_at
        )
        latencies = result.per_query_cl
        for index, query in enumerate(queries, start=1):
            table.add(index, query.name, approach, latencies[query.name])
    return table
