"""Unit tests: the wall-clock profiler (scopes, attribution, export)."""

from __future__ import annotations

import time

import pytest

from repro.errors import SimulationError
from repro.obs.profile import (
    PROFILER,
    WallProfiler,
    profiled,
)
from repro.obs.profile import _NULL_SCOPE


class TestScopes:
    def test_nesting_records_depth_and_parent(self):
        profiler = WallProfiler(enabled=True)
        with profiler.scope("outer"):
            with profiler.scope("inner"):
                pass
            with profiler.scope("inner"):
                pass
        names = [record.name for record in profiler.records]
        assert names == ["outer", "inner", "inner"]
        outer, first, second = profiler.records
        assert outer.depth == 0 and outer.parent is None
        assert first.depth == 1 and first.parent == 0
        assert second.depth == 1 and second.parent == 0

    def test_durations_are_positive_and_nested_inside_parent(self):
        profiler = WallProfiler(enabled=True)
        with profiler.scope("outer"):
            with profiler.scope("inner"):
                time.sleep(0.002)
        outer, inner = profiler.records
        assert inner.duration > 0.0
        assert outer.duration >= inner.duration

    def test_disabled_profiler_hands_out_the_shared_null_scope(self):
        profiler = WallProfiler()
        assert profiler.scope("x") is _NULL_SCOPE
        assert profiler.scope("y") is _NULL_SCOPE
        with profiler.scope("x"):
            pass
        assert profiler.records == []

    def test_enable_disable_resume(self):
        profiler = WallProfiler()
        with profiler.scope("off"):
            pass
        profiler.enable()
        with profiler.scope("on"):
            pass
        profiler.disable()
        with profiler.scope("off-again"):
            pass
        assert [record.name for record in profiler.records] == ["on"]

    def test_reset_forgets_records(self):
        profiler = WallProfiler(enabled=True)
        with profiler.scope("x"):
            pass
        profiler.reset()
        assert profiler.records == []

    def test_reset_with_open_scope_raises(self):
        profiler = WallProfiler(enabled=True)
        scope = profiler.scope("open")
        scope.__enter__()
        with pytest.raises(SimulationError):
            profiler.reset()
        scope.__exit__(None, None, None)
        profiler.reset()  # fine once closed

    def test_out_of_order_close_raises(self):
        profiler = WallProfiler(enabled=True)
        outer = profiler.scope("outer")
        inner = profiler.scope("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(SimulationError):
            outer.__exit__(None, None, None)


class TestAttribution:
    def test_self_time_excludes_direct_children(self):
        profiler = WallProfiler(enabled=True)
        with profiler.scope("outer"):
            with profiler.scope("inner"):
                time.sleep(0.002)
        table = profiler.attribution()
        outer, inner = table["outer"], table["inner"]
        assert outer["calls"] == 1 and inner["calls"] == 1
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"]
        )
        assert inner["self_s"] == pytest.approx(inner["total_s"])
        assert inner["mean_ms"] == pytest.approx(inner["total_s"] * 1e3)

    def test_repeat_calls_accumulate(self):
        profiler = WallProfiler(enabled=True)
        for _ in range(3):
            with profiler.scope("phase"):
                pass
        row = profiler.attribution()["phase"]
        assert row["calls"] == 3
        assert row["mean_ms"] == pytest.approx(row["total_s"] * 1e3 / 3)

    def test_render_lists_phases(self):
        profiler = WallProfiler(enabled=True)
        with profiler.scope("alpha"):
            pass
        text = profiler.render()
        assert "alpha" in text and "self_s" in text
        assert WallProfiler().render() == "(no profile records)"


class TestChromeExport:
    def test_export_uses_the_wall_clock_pid(self):
        profiler = WallProfiler(enabled=True)
        with profiler.scope("outer"):
            with profiler.scope("inner"):
                pass
        trace = profiler.to_chrome_trace()
        meta = trace["traceEvents"][0]
        assert meta["ph"] == "M" and meta["args"]["name"] == "wall-clock"
        spans = trace["traceEvents"][1:]
        assert [span["name"] for span in spans] == ["outer", "inner"]
        # Complete events on pid 2 (sim-time exports own pid 1), µs units.
        assert all(span["pid"] == 2 and span["ph"] == "X" for span in spans)
        assert spans[1]["args"]["depth"] == 1
        assert spans[0]["ts"] <= spans[1]["ts"]


class TestDecorator:
    def test_profiled_times_each_call(self):
        profiler = WallProfiler(enabled=True)

        @profiled("work", profiler=profiler)
        def work(x):
            return x * 2

        assert work(3) == 6
        assert work(4) == 8
        assert profiler.attribution()["work"]["calls"] == 2

    def test_profiled_is_free_when_disabled(self):
        profiler = WallProfiler()

        @profiled("work", profiler=profiler)
        def work():
            return "done"

        assert work() == "done"
        assert profiler.records == []

    def test_profiled_defaults_to_the_shared_profiler(self):
        @profiled("shared.work")
        def work():
            return 1

        assert PROFILER.enabled is False
        before = len(PROFILER.records)
        assert work() == 1
        assert len(PROFILER.records) == before


@pytest.mark.slow
class TestInstrumentedRun:
    def test_profiled_stream_run_attributes_hot_phases(self):
        # The real instrumentation points: a profiled online streaming run
        # must surface the scheduler/GA/evaluator phases with sane nesting.
        from repro.experiments.live import run_live

        result = run_live(profile=True, num_queries=8, rounds=2)
        table = result.profiler.attribution()
        assert "system.run" in table
        assert "online.schedule" in table
        assert "ga.run" in table and "ga.generation" in table
        assert "evaluator.realize" in table
        assert "executor.dispatch" in table
        # GA generations nest inside ga.run: inclusive time dominates.
        assert table["ga.run"]["total_s"] >= table["ga.generation"]["total_s"]
        # system.run is the root: everything else is inside it.
        assert table["system.run"]["calls"] == 1
        assert (
            table["system.run"]["total_s"]
            >= table["executor.dispatch"]["total_s"]
        )
        # The run itself stays clean and the shared profiler was restored.
        assert PROFILER.enabled is False
