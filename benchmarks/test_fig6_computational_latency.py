"""Figure 6 — computational latency per query (TPC-H, λ=.01, Fq:Fs=1:10).

Asserts the paper's shape: Data Warehouse has the lowest CL, Federation the
highest, and IVQP sits in between — matching the warehouse exactly on the
queries where it chooses the all-replica plan ("IVQP has the same
computational latency with Data Warehouse ... because IVQP chooses to use
all the replications as the best plan for that query").
"""

from __future__ import annotations

from repro.experiments.config import TpchSetup
from repro.experiments.fig6 import Fig6Config, run_fig6


def bench_config() -> Fig6Config:
    return Fig6Config(setup=TpchSetup(scale=0.002, seed=7))


def _series(table, approach):
    return {
        row[1]: row[3] for row in table.rows if row[2] == approach
    }


def test_fig6_computational_latency(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_fig6(bench_config()), rounds=1, iterations=1
    )
    show(table.render())

    ivqp = _series(table, "ivqp")
    federation = _series(table, "federation")
    warehouse = _series(table, "warehouse")
    assert len(ivqp) == 15

    for name in ivqp:
        # DW lowest, Federation highest; IVQP in between, except that a
        # delayed plan may add a short wait on top ("IVQP does not always
        # choose the lowest computational latency because it aims to
        # optimize the overall information values").
        assert warehouse[name] <= federation[name] + 1e-9, name
        assert ivqp[name] <= federation[name] + 2.0, name
        assert ivqp[name] >= warehouse[name] - 1e-6, name

    # On average IVQP costs clearly more than DW and no more than a small
    # delay margin above Federation (it optimizes IV, not CL).
    def mean(series):
        return sum(series.values()) / len(series)

    assert mean(warehouse) < mean(ivqp)
    assert mean(ivqp) <= mean(federation) + 0.25

    # IVQP does not always choose the lowest computational latency ...
    assert any(ivqp[name] > warehouse[name] + 1e-6 for name in ivqp)
    # ... but for some queries it abandons the Federation route for the
    # replicas (all-replica plan, possibly waiting for a synchronization —
    # the wait is part of CL, so it may sit above the pure warehouse CL).
    assert any(ivqp[name] < federation[name] - 0.5 for name in ivqp)
