"""Unit tests: heterogeneous site links and their routing consequences."""

from __future__ import annotations

import pytest

from repro.core.optimizer import IVQPOptimizer
from repro.core.value import DiscountRates
from repro.errors import ConfigError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.federation.network import NetworkModel, SiteLink
from repro.workload.query import DSSQuery


class TestSiteLink:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SiteLink(base_latency=-1.0, bandwidth=100.0)
        with pytest.raises(ConfigError):
            SiteLink(base_latency=0.1, bandwidth=0.0)


class TestNetworkModelLinks:
    def test_default_link_used_without_override(self):
        network = NetworkModel(base_latency=0.1, bandwidth=1_000.0)
        assert network.transfer_time(500.0, site=7) == pytest.approx(0.6)

    def test_override_applies_to_its_site_only(self):
        network = NetworkModel(
            base_latency=0.1,
            bandwidth=1_000.0,
            site_links={3: SiteLink(base_latency=1.0, bandwidth=100.0)},
        )
        assert network.transfer_time(100.0, site=3) == pytest.approx(2.0)
        assert network.transfer_time(100.0, site=0) == pytest.approx(0.2)

    def test_site_links_are_immutable(self):
        network = NetworkModel(site_links={1: SiteLink(0.5, 100.0)})
        with pytest.raises(TypeError):
            network.site_links[2] = SiteLink(0.1, 100.0)  # type: ignore[index]

    def test_link_lookup(self):
        slow = SiteLink(2.0, 10.0)
        network = NetworkModel(site_links={5: slow})
        assert network.link(5) is slow
        assert network.link(0).bandwidth == network.bandwidth


class TestCostAndRoutingConsequences:
    def build(self, slow_site_latency: float):
        catalog = Catalog()
        catalog.add_table(TableDef("fast_t", site=0, row_count=5_000))
        catalog.add_table(TableDef("slow_t", site=1, row_count=5_000))
        for name in ("fast_t", "slow_t"):
            catalog.add_replica(
                name, FixedSyncSchedule([1.0], tail_period=8.0)
            )
        network = NetworkModel(
            site_links={1: SiteLink(slow_site_latency, 1_000_000.0)}
        )
        model = CostModel(
            catalog,
            network=network,
            params=CostParameters(ship_fraction=0.2),
        )
        return catalog, model

    def test_slow_link_inflates_that_sites_leg(self):
        _catalog, model = self.build(slow_site_latency=5.0)
        query = DSSQuery(
            query_id=1, name="q", tables=("fast_t", "slow_t"),
            base_work=10_000.0,
        )
        both = model.combo_cost(query, frozenset({"fast_t", "slow_t"}))
        legs = dict(both.site_legs)
        assert legs[1] > legs[0] + 4.0

    def test_ivqp_keeps_the_slow_sites_table_on_its_replica(self):
        """With one site behind a terrible link, IVQP reads that site's
        table from the replica and only the fast site remotely."""
        catalog, model = self.build(slow_site_latency=12.0)
        rates = DiscountRates(computational=0.05, synchronization=0.05)
        query = DSSQuery(
            query_id=1, name="q", tables=("fast_t", "slow_t"),
            base_work=10_000.0,
        )
        plan = IVQPOptimizer(catalog, model, rates).choose_plan(query, 30.0)
        assert "slow_t" not in plan.remote_tables

    def test_symmetric_links_treat_sites_alike(self):
        catalog = Catalog()
        catalog.add_table(TableDef("fast_t", site=0, row_count=5_000))
        catalog.add_table(TableDef("slow_t", site=1, row_count=5_000))
        # An override identical to the default link: no asymmetry.
        network = NetworkModel(
            site_links={1: SiteLink(0.05, 50_000_000.0)}
        )
        model = CostModel(
            catalog, network=network,
            params=CostParameters(ship_fraction=0.2),
        )
        query = DSSQuery(
            query_id=1, name="q", tables=("fast_t", "slow_t"),
            base_work=10_000.0,
        )
        both = model.combo_cost(query, frozenset({"fast_t", "slow_t"}))
        legs = dict(both.site_legs)
        assert legs[0] == pytest.approx(legs[1], rel=0.01)
