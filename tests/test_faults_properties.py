"""Property tests: fault plans and the fault-tolerant runtime.

Randomized seeds and fault intensities, with the invariants the rest of
the repro relies on: identical seeds give identical fault timelines,
timelines stay well-formed, and no injected fault can break value
accounting (IV bounded by BV, latencies nonnegative) or conservation
(every submitted query yields exactly one outcome).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ivqp_router
from repro.core.value import DiscountRates
from repro.federation.executor import ExecutionPolicy
from repro.federation.faults import FaultPlan
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.sim.faults import generate_outage_windows
from repro.sim.rng import RandomSource
from repro.workload.query import DSSQuery

SITE_IDS = (0, 1)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    outage_rate=st.floats(min_value=0.0, max_value=0.1),
    skip=st.floats(min_value=0.0, max_value=0.4),
    delay=st.floats(min_value=0.0, max_value=0.4),
)
def test_identical_seeds_identical_fault_timelines(
    seed, outage_rate, skip, delay
):
    kwargs = dict(
        horizon=300.0,
        site_ids=SITE_IDS,
        outage_rate=outage_rate,
        outage_mean_duration=5.0,
        sync_skip_prob=skip,
        sync_delay_prob=delay,
    )
    first = FaultPlan.generate(seed=seed, **kwargs)
    second = FaultPlan.generate(seed=seed, **kwargs)
    assert sorted(first.site_outages) == sorted(second.site_outages)
    for site, timeline in first.site_outages.items():
        assert timeline.windows == second.site_outages[site].windows
    # Dispositions agree point-for-point, not just distributionally.
    for time in (1.0, 17.5, 123.0):
        assert first.sync_disposition("a", time) == second.sync_disposition(
            "a", time
        )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    rate=st.floats(min_value=0.001, max_value=0.2),
    mean_duration=st.floats(min_value=0.5, max_value=20.0),
    probes=st.lists(
        st.floats(min_value=0.0, max_value=400.0), min_size=1, max_size=6
    ),
)
def test_generated_timelines_are_well_formed(seed, rate, mean_duration, probes):
    timeline = generate_outage_windows(
        RandomSource(seed, "prop"), 300.0, rate, mean_duration
    )
    windows = timeline.windows
    # Disjoint, ordered, positive-length, inside the horizon.
    for window in windows:
        assert window.end > window.start >= 0.0
        assert window.start < 300.0
    for earlier, later in zip(windows, windows[1:]):
        assert later.start >= earlier.end
    for probe in probes:
        up = timeline.up_at(probe)
        assert up >= probe
        assert not timeline.is_down(up)
        nxt = timeline.next_down_after(probe)
        assert nxt >= probe
        if timeline.is_down(probe):
            assert nxt == probe


def _faulty_system(fault_seed, outage_rate, skip, delay):
    plan = FaultPlan.generate(
        seed=fault_seed,
        horizon=500.0,
        site_ids=SITE_IDS,
        outage_rate=outage_rate,
        outage_mean_duration=6.0,
        sync_skip_prob=skip,
        sync_delay_prob=delay,
        sync_delay_mean=2.0,
    )
    config = SystemConfig(
        tables=[
            TableSpec("a", site=0, row_count=20_000),
            TableSpec("b", site=1, row_count=20_000),
        ],
        replicated=["a"],
        sync_mode="periodic",
        sync_mean_interval=4.0,
        rates=DiscountRates(0.05, 0.05),
        local_capacity=2,
        seed=11,
        fault_plan=plan,
        execution_policy=ExecutionPolicy(
            max_retries=2, retry_backoff=0.2, failover=True
        ),
    )
    return build_system(config, ivqp_router)


@settings(max_examples=15, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=2**31),
    outage_rate=st.floats(min_value=0.0, max_value=0.08),
    skip=st.floats(min_value=0.0, max_value=0.5),
    delay=st.floats(min_value=0.0, max_value=0.4),
)
def test_no_fault_breaks_value_accounting_or_conservation(
    fault_seed, outage_rate, skip, delay
):
    system = _faulty_system(fault_seed, outage_rate, skip, delay)
    count = 6
    for index in range(count):
        tables = ("a", "b") if index % 2 == 0 else ("a",)
        system.submit(
            DSSQuery(
                query_id=index + 1, name=f"q{index}", tables=tables,
                business_value=100.0, base_work=6_000.0,
            ),
            at=1.0 + 2.0 * index,
        )
    system.run()
    outcomes = system.outcomes
    # Conservation: every submission yields exactly one outcome — failed
    # queries are recorded, never silently dropped.
    assert len(outcomes) == count
    assert sorted(o.query.name for o in outcomes) == sorted(
        f"q{i}" for i in range(count)
    )
    for outcome in outcomes:
        assert outcome.computational_latency >= 0.0
        assert outcome.synchronization_latency >= 0.0
        assert outcome.queue_wait >= 0.0
        assert outcome.remote_wait >= 0.0
        assert 0.0 <= outcome.information_value <= outcome.query.business_value
        if outcome.failed:
            assert outcome.information_value == 0.0
            assert outcome.degraded
        if outcome.retries or outcome.failovers:
            assert outcome.degraded
    assert system.failed_count == sum(1 for o in outcomes if o.failed)
    assert system.degraded_count == sum(1 for o in outcomes if o.degraded)


@settings(max_examples=10, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=2**31),
    outage_rate=st.floats(min_value=0.0, max_value=0.05),
)
def test_identical_fault_seeds_give_identical_runs(fault_seed, outage_rate):
    results = []
    for _attempt in range(2):
        system = _faulty_system(fault_seed, outage_rate, 0.1, 0.1)
        for index in range(4):
            system.submit(
                DSSQuery(
                    query_id=index + 1, name=f"q{index}", tables=("a", "b"),
                    business_value=50.0, base_work=5_000.0,
                ),
                at=1.0 + 3.0 * index,
            )
        system.run()
        results.append(
            [
                (o.query.name, o.completed_at, o.information_value,
                 o.retries, o.failovers, o.failed)
                for o in system.outcomes
            ]
        )
    assert results[0] == results[1]
