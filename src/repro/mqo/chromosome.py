"""Permutation chromosomes: order crossover and swap mutation.

Section 3.2 (GA recombination and mutation): "the chromosomes are
permutations of unique integers ... a randomly chosen contiguous subsection
of the first parent is copied to the child, and then all remaining items in
the second parent (that have not already been taken from the first parent's
subsection) are then copied to the child in order of appearance."
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import OptimizationError
from repro.sim.rng import RandomSource

__all__ = ["validate_permutation", "order_crossover", "swap_mutation", "random_permutation"]


def validate_permutation(genes: Sequence[int]) -> None:
    """Raise unless ``genes`` is a permutation of unique integers."""
    if len(set(genes)) != len(genes):
        raise OptimizationError(f"chromosome repeats genes: {list(genes)}")


def random_permutation(genes: Sequence[int], rng: RandomSource) -> list[int]:
    """A uniformly random permutation of ``genes``."""
    shuffled = list(genes)
    rng.shuffle(shuffled)
    return shuffled


def order_crossover(
    parent_a: Sequence[int],
    parent_b: Sequence[int],
    rng: RandomSource,
) -> list[int]:
    """The paper's crossover: copy a slice of A, fill from B in order.

    A contiguous subsection of ``parent_a`` is copied into the child at the
    same positions; the remaining positions are filled with ``parent_b``'s
    genes, skipping those already present, in their order of appearance.
    """
    if sorted(parent_a) != sorted(parent_b):
        raise OptimizationError("parents must be permutations of the same genes")
    size = len(parent_a)
    if size == 0:
        return []
    if size == 1:
        return list(parent_a)
    lo = rng.randint(0, size - 1)
    hi = rng.randint(lo, size - 1)
    child: list[int | None] = [None] * size
    child[lo:hi + 1] = parent_a[lo:hi + 1]
    taken = set(parent_a[lo:hi + 1])
    fill = (gene for gene in parent_b if gene not in taken)
    for index in range(size):
        if child[index] is None:
            child[index] = next(fill)
    result = typing_cast_int_list(child)
    validate_permutation(result)
    return result


def typing_cast_int_list(child: list) -> list[int]:
    """Assert-and-cast helper for the crossover fill."""
    if any(gene is None for gene in child):  # pragma: no cover - defensive
        raise OptimizationError("crossover left unfilled positions")
    return list(child)


def swap_mutation(genes: Sequence[int], rng: RandomSource) -> list[int]:
    """Swap two random positions — "occasionally a mutation may arise"."""
    mutated = list(genes)
    if len(mutated) < 2:
        return mutated
    i = rng.randint(0, len(mutated) - 1)
    j = rng.randint(0, len(mutated) - 1)
    while j == i:
        j = rng.randint(0, len(mutated) - 1)
    mutated[i], mutated[j] = mutated[j], mutated[i]
    return mutated
