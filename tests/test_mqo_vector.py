"""Equivalence of the numpy batch evaluator with the scalar fast path.

``VectorizedEvaluator.evaluate_batch`` must realize every order exactly
like ``WorkloadEvaluator.evaluate_sequence`` — same candidate choices,
same commit arithmetic — modulo the documented ``REL_TOLERANCE`` (numpy's
``power`` and libm's ``pow`` can differ in the last ulp).  These tests
drive randomized workloads through both paths, check the GA's
``fitness_batch`` hook scores consistently with its per-chromosome
fallback, and exercise the online scheduler's opt-in end to end.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.federation.site import LOCAL_SITE_ID
from repro.mqo.evaluator import WorkloadEvaluator
from repro.mqo.ga import GAConfig, GeneticAlgorithm
from repro.mqo.online import OnlineConfig, OnlineMQOScheduler
from repro.mqo.vector import HAS_NUMPY, REL_TOLERANCE, VectorizedEvaluator
from repro.workload.query import DSSQuery, Workload

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

NUM_TABLES = 8
NUM_SITES = 3


def build_catalog() -> Catalog:
    catalog = Catalog()
    for index in range(NUM_TABLES):
        name = f"t{index}"
        catalog.add_table(
            TableDef(name, site=index % NUM_SITES, row_count=3_000)
        )
        catalog.add_replica(
            name,
            FixedSyncSchedule(
                [1.0 + index * 0.5 + k * 6.0 for k in range(30)],
                tail_period=6.0,
            ),
        )
    return catalog


def build_workload(query_specs: list[tuple[int, float, float]]) -> Workload:
    """Queries from (table_offset, arrival, base_work) triples."""
    workload = Workload()
    for index, (offset, arrival, work) in enumerate(query_specs):
        tables = tuple(
            f"t{(offset + j) % NUM_TABLES}" for j in range(1 + offset % 3)
        )
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}", tables=tables,
                base_work=work,
            ),
            arrival=arrival,
        )
    return workload


def build_evaluator(workload: Workload, **kwargs) -> WorkloadEvaluator:
    catalog = build_catalog()
    cost_model = CostModel(catalog, params=CostParameters())
    rates = DiscountRates.symmetric(0.1)
    return WorkloadEvaluator(catalog, cost_model, rates, workload, **kwargs)


def assert_batch_matches_scalar(
    evaluator: WorkloadEvaluator, orders: list[list[int]]
) -> None:
    vector = VectorizedEvaluator(evaluator)
    totals = vector.evaluate_batch(orders)
    for order, total in zip(orders, totals):
        scalar = evaluator.evaluate_sequence(order).total_information_value
        assert math.isclose(
            float(total), scalar, rel_tol=REL_TOLERANCE, abs_tol=1e-12
        ), f"batch total diverged on {order}: {total} vs {scalar}"


query_spec = st.tuples(
    st.integers(min_value=0, max_value=NUM_TABLES - 1),
    st.floats(min_value=0.0, max_value=30.0),
    st.floats(min_value=1_000.0, max_value=20_000.0),
)


class TestBatchEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(specs=st.lists(query_spec, min_size=2, max_size=6), data=st.data())
    def test_random_workloads_and_batches(self, specs, data):
        workload = build_workload(specs)
        evaluator = build_evaluator(workload)
        qids = [q.query_id for q in workload.queries]
        orders = [
            list(data.draw(st.permutations(qids))) for _ in range(4)
        ]
        assert_batch_matches_scalar(evaluator, orders)

    def test_partial_orders_score_like_sequence_fitness(self):
        # One conflict group's GA scores permutations of a *subset*.
        workload = build_workload(
            [(0, 1.0, 8_000.0), (1, 1.2, 8_000.0),
             (2, 1.4, 8_000.0), (3, 1.6, 8_000.0)]
        )
        evaluator = build_evaluator(workload)
        orders = [[1, 3], [3, 1], [2, 4], [4, 2]]
        assert_batch_matches_scalar(evaluator, orders)

    def test_honours_rebased_availability(self):
        workload = build_workload(
            [(0, 1.0, 8_000.0), (1, 1.2, 8_000.0), (2, 1.4, 8_000.0)]
        )
        evaluator = build_evaluator(workload)
        evaluator.rebase({LOCAL_SITE_ID: 9.0, 1: 4.0})
        assert_batch_matches_scalar(evaluator, [[1, 2, 3], [3, 2, 1]])
        # The vector path reads the base at call time, not compile time.
        vector = VectorizedEvaluator(evaluator)
        before = float(vector.evaluate_batch([[1, 2, 3]])[0])
        evaluator.rebase({LOCAL_SITE_ID: 400.0})
        after = float(vector.evaluate_batch([[1, 2, 3]])[0])
        scalar = evaluator.evaluate_sequence([1, 2, 3])
        assert math.isclose(
            after, scalar.total_information_value,
            rel_tol=REL_TOLERANCE, abs_tol=1e-12,
        )
        assert after < before  # later availability can only cost IV here

    def test_empty_batch_and_contract_errors(self):
        workload = build_workload([(0, 1.0, 8_000.0), (1, 1.2, 8_000.0)])
        evaluator = build_evaluator(workload)
        vector = VectorizedEvaluator(evaluator)
        assert list(vector.evaluate_batch([])) == []
        with pytest.raises(OptimizationError, match="same length"):
            vector.evaluate_batch([[1, 2], [1]])
        with pytest.raises(OptimizationError, match="not compiled"):
            vector.evaluate_batch([[99, 1]])
        with pytest.raises(OptimizationError, match=">= 1 query"):
            VectorizedEvaluator(evaluator, query_ids=[])


class TestGABatchFitness:
    def _ga_pair(self, fitness_batch):
        workload = build_workload(
            [(0, 1.0, 9_000.0), (1, 1.1, 7_000.0),
             (2, 1.3, 8_000.0), (3, 1.5, 6_000.0)]
        )
        evaluator = build_evaluator(workload)
        genes = [q.query_id for q in workload.queries]
        config = GAConfig(population_size=8, generations=6)
        scalar_ga = GeneticAlgorithm(
            genes, evaluator.sequence_fitness, config=config, seed=11
        )
        vector = VectorizedEvaluator(evaluator)
        batch_ga = GeneticAlgorithm(
            genes, evaluator.sequence_fitness, config=config, seed=11,
            fitness_batch=vector.fitness_batch if fitness_batch else None,
        )
        return scalar_ga, batch_ga

    def test_batch_hook_matches_scalar_ga(self):
        scalar_ga, batch_ga = self._ga_pair(fitness_batch=True)
        scalar = scalar_ga.run()
        batch = batch_ga.run()
        # Same RNG stream, and every scored value agrees within tolerance,
        # so the runs visit the same populations; the winning permutation
        # can only differ if a near-tie flipped (none in this workload).
        assert batch.best == scalar.best
        assert math.isclose(
            batch.best_fitness, scalar.best_fitness,
            rel_tol=REL_TOLERANCE, abs_tol=1e-12,
        )
        assert batch.fitness_calls == scalar.fitness_calls
        assert batch.cache_hits == scalar.cache_hits

    def test_none_hook_is_the_scalar_path(self):
        scalar_ga, batch_ga = self._ga_pair(fitness_batch=False)
        scalar = scalar_ga.run()
        plain = batch_ga.run()
        assert plain.best == scalar.best
        assert plain.best_fitness == scalar.best_fitness

    def test_score_fallback_routes_through_batch_hook(self):
        # _score cache misses must use the batch scorer too, so the GA
        # never mixes values from two arithmetic paths for one chromosome.
        calls: list[list[list[int]]] = []

        def fake_batch(chromosomes):
            calls.append([list(c) for c in chromosomes])
            return [float(sum(c)) for c in chromosomes]

        def exploding_fitness(chromosome):  # pragma: no cover - must not run
            raise AssertionError("scalar fitness called despite batch hook")

        ga = GeneticAlgorithm(
            [1, 2, 3], exploding_fitness,
            config=GAConfig(population_size=4, generations=2),
            seed=3, fitness_batch=fake_batch,
        )
        result = ga.run()
        assert result.best_fitness == 6.0
        assert calls  # the hook did all the scoring


class TestOnlineVectorizedOptIn:
    def _run(self, vectorized: bool):
        catalog = build_catalog()
        cost_model = CostModel(catalog, params=CostParameters())
        rates = DiscountRates.symmetric(0.1)
        workload = build_workload(
            [(0, 1.0, 9_000.0), (1, 1.05, 8_000.0), (2, 1.1, 7_000.0),
             (3, 1.15, 9_500.0), (4, 1.2, 6_500.0), (5, 1.25, 8_500.0)]
        )
        scheduler = OnlineMQOScheduler(
            catalog, cost_model, rates,
            ga_config=GAConfig(population_size=8, generations=5),
            seed=17,
            config=OnlineConfig(
                window=4.0, max_pending=16, vectorized_ga=vectorized
            ),
        )
        return scheduler.run(workload)

    def test_vectorized_run_matches_scalar_run(self):
        scalar = self._run(vectorized=False)
        vectorized = self._run(vectorized=True)
        assert vectorized.stats.dispatched == scalar.stats.dispatched
        assert math.isclose(
            vectorized.total_information_value,
            scalar.total_information_value,
            rel_tol=1e-6,
        )
