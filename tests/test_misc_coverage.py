"""Small-surface tests: corners the dedicated suites do not reach."""

from __future__ import annotations

import pytest

from repro.engine.schema import Column, DType
from repro.errors import ReproError, SimulationError
from repro.sim.monitor import Monitor
from repro.sim.rng import RandomSource
from repro.sim.scheduler import Simulator


class TestMonitorWithoutRetention:
    def test_statistics_work_without_values(self):
        monitor = Monitor()
        monitor.keep_values = False
        for value in (1.0, 2.0, 3.0):
            monitor.observe(value)
        assert monitor.mean == pytest.approx(2.0)
        assert monitor.values == []

    def test_percentile_requires_retention(self):
        monitor = Monitor()
        monitor.keep_values = False
        monitor.observe(1.0)
        with pytest.raises(SimulationError):
            monitor.percentile(50)

    def test_merge_without_retention_keeps_aggregates(self):
        a, b = Monitor(), Monitor()
        b.keep_values = False
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)


class TestDTypeWidths:
    def test_every_dtype_has_a_width(self):
        for dtype in DType.ALL:
            assert DType.WIDTH[dtype] > 0

    def test_column_width(self):
        assert Column("s", DType.STR).width_bytes == 24
        assert Column("i", DType.INT).width_bytes == 8


class TestRandomSourceConvenience:
    def test_sample_and_choice_are_deterministic(self):
        a = RandomSource(5, "x")
        b = RandomSource(5, "x")
        population = list(range(20))
        assert a.sample(population, 5) == b.sample(population, 5)
        assert a.choice(population) == b.choice(population)

    def test_shuffle_in_place(self):
        source = RandomSource(5, "x")
        items = list(range(10))
        source.shuffle(items)
        assert sorted(items) == list(range(10))

    def test_gauss_and_randint(self):
        source = RandomSource(5, "x")
        assert isinstance(source.gauss(0.0, 1.0), float)
        assert 1 <= source.randint(1, 3) <= 3


class TestSiteUtilizationHint:
    def test_hint_reflects_mean_wait(self, sim):
        from repro.federation.site import Site

        site = Site(sim, 0)
        assert site.utilization_hint == 0.0
        first = site.server.request()
        second = site.server.request()
        sim.run()
        sim.call_at(4.0, lambda: site.server.release(first))
        sim.run()
        assert second.ok
        assert site.utilization_hint == pytest.approx(2.0)  # (0 + 4) / 2


class TestOutcomeDescribe:
    def test_describe_mentions_latencies(self, fig4_world):
        from repro.core.enumeration import make_plan
        from repro.federation.executor import QueryOutcome

        catalog, provider, query, rates = fig4_world
        plan = make_plan(
            query, catalog, provider, rates, 11.0, 11.0,
            frozenset(query.tables),
        )
        outcome = QueryOutcome(
            plan=plan, submitted_at=11.0, started_at=11.0,
            completed_at=21.0, data_timestamp=11.0, queue_wait=0.0,
        )
        text = outcome.describe()
        assert "CL=10.00" in text
        assert "IV=" in text
        assert outcome.query is query


class TestErrorHierarchyMessages:
    def test_errors_carry_messages(self):
        try:
            Simulator().step()
        except ReproError as error:
            assert "empty event queue" in str(error)
        else:  # pragma: no cover
            pytest.fail("step on empty queue must raise")


class TestExecutionStatsOperators:
    def test_operator_counting(self):
        from repro.engine.ops import ExecutionStats, Filter, Scan
        from repro.engine.schema import TableSchema
        from repro.engine.table import Table
        from repro.engine.expr import Col

        table = Table(
            TableSchema("t", (Column("x", DType.INT),)), rows=[(1,), (2,)]
        )
        stats = ExecutionStats()
        node = Filter(Scan(table, "t", stats), Col("t.x") > 1)
        list(node)
        assert stats.operators == 2


class TestSelectMidCostVariants:
    def test_smaller_selection_counts(self, tpch_tiny):
        from repro.experiments.config import TpchSetup
        from repro.experiments.fig6 import select_mid_cost_queries

        setup = TpchSetup(scale=0.0005, seed=7)
        for count in (5, 10, 22):
            selected = select_mid_cost_queries(setup, count=count)
            assert len(selected) == count
            ids = [query.query_id for query in selected]
            assert ids == sorted(ids)
