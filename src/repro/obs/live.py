"""Live telemetry: streaming aggregators over the in-flight event stream.

Everything in :mod:`repro.obs.metrics` is *post-hoc*: ``registry_from_system``
reads a drained system.  This module watches the same run **while it is
running** — the online scheduler admits and sheds, the executor completes
queries, faults open and close — by subscribing to the
:class:`~repro.sim.trace.Tracer` and folding every record into bounded-memory
streaming state:

* :class:`EwmaRate` / :class:`EwmaMean` — exponentially-decayed event rates
  and means over *simulation* time (half-life, not bucket, semantics);
* :class:`WindowCounter` — an exact sliding-window event count (deque of
  timestamps, pruned as time advances);
* :class:`P2Quantile` — the Jain/Chlamtac P² streaming quantile sketch:
  five markers, O(1) memory, no stored samples — unlike
  :class:`~repro.obs.metrics.Histogram`'s fixed buckets it adapts to the
  observed scale;
* :class:`LiveRegistry` — the fold itself: counters, gauges, rates, fixed
  histograms (bit-compatible with the post-hoc registry) and sketches,
  snapshotable at any simulation instant via :meth:`LiveRegistry.snapshot`.

Equivalence contract (property-tested): feeding a checker-clean trace
incrementally yields final counters and histogram buckets **equal** to the
drained-system :func:`~repro.obs.metrics.registry_from_system` snapshot,
and sketch quantiles within the sketch's error bounds — both registries
consume the exact same ledger floats in the exact same order.
"""

from __future__ import annotations

import math
import typing
from collections import deque

from repro.errors import SimulationError
from repro.obs import events
from repro.obs.ledger import IVLedgerEntry
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.sim.trace import TraceRecord

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import Tracer

__all__ = [
    "EwmaRate",
    "EwmaMean",
    "WindowCounter",
    "P2Quantile",
    "LiveRegistry",
]

#: IV histogram bounds, matching ``registry_from_system``'s ``query.iv.hist``.
IV_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


class EwmaRate:
    """Exponentially-decayed event rate (events per minute of sim time).

    Each arrival deposits ``weight × ln2 / half_life`` onto a value that
    decays by half every ``half_life`` minutes.  With decay constant
    ``λ = ln2/half_life`` and deposits of size ``λ``, a steady stream of
    rate *r* events/minute converges to exactly *r* — the deposit rate
    ``r·λ`` balances the decay ``λ·value`` at ``value = r``.
    """

    __slots__ = ("half_life", "_value", "_last")

    def __init__(self, half_life: float) -> None:
        if half_life <= 0:
            raise SimulationError(f"half_life must be > 0, got {half_life}")
        self.half_life = half_life
        self._value = 0.0
        self._last = None

    def _decay_to(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self._value *= 2.0 ** (-(now - self._last) / self.half_life)
        if self._last is None or now > self._last:
            self._last = now

    def observe(self, now: float, weight: float = 1.0) -> None:
        """Record ``weight`` events at sim time ``now``."""
        self._decay_to(now)
        self._value += weight * math.log(2.0) / self.half_life

    def rate(self, now: float | None = None) -> float:
        """The decayed rate (events/minute), optionally advanced to ``now``."""
        if now is not None:
            self._decay_to(now)
        return self._value


class EwmaMean:
    """Exponentially-decayed weighted mean of observed values.

    The weight of an observation halves every ``half_life`` minutes of sim
    time; :meth:`mean` is the decayed value sum over the decayed weight sum
    (0.0 before any observation).
    """

    __slots__ = ("half_life", "_weighted", "_weight", "_last")

    def __init__(self, half_life: float) -> None:
        if half_life <= 0:
            raise SimulationError(f"half_life must be > 0, got {half_life}")
        self.half_life = half_life
        self._weighted = 0.0
        self._weight = 0.0
        self._last = None

    def observe(self, now: float, value: float) -> None:
        """Fold one value observed at sim time ``now``."""
        if self._last is not None and now > self._last:
            factor = 2.0 ** (-(now - self._last) / self.half_life)
            self._weighted *= factor
            self._weight *= factor
        if self._last is None or now > self._last:
            self._last = now
        self._weighted += value
        self._weight += 1.0

    def mean(self) -> float:
        """The decayed mean (0.0 when nothing was observed)."""
        return self._weighted / self._weight if self._weight else 0.0


class WindowCounter:
    """Exact count of events inside a sliding sim-time window.

    Memory is bounded by the number of events inside the window, not the
    stream length; :meth:`count` prunes as time advances.
    """

    __slots__ = ("window", "_times")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise SimulationError(f"window must be > 0, got {window}")
        self.window = window
        self._times: deque[float] = deque()

    def observe(self, now: float) -> None:
        """Record one event at sim time ``now``."""
        self._times.append(now)
        self._prune(now)

    def _prune(self, now: float) -> None:
        floor = now - self.window
        while self._times and self._times[0] <= floor:
            self._times.popleft()

    def count(self, now: float) -> int:
        """Events with timestamps in ``(now - window, now]``."""
        self._prune(now)
        return len(self._times)

    def rate(self, now: float) -> float:
        """Events per minute over the window."""
        return self.count(now) / self.window


class P2Quantile:
    """The P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Five markers track the min, the q/2, q, (1+q)/2 quantiles and the max;
    marker heights move by parabolic (falling back to linear) interpolation
    as observations stream in.  Memory is O(1) and no sample is retained.

    Error bounds: with fewer than five observations the estimate is the
    **exact** sample quantile (nearest-rank over the sorted buffer); from
    five on, the estimate is always within ``[min, max]`` of the observed
    samples and is exact for constant streams.  Accuracy on smooth
    distributions is typically within a few percent of the true quantile —
    the property suite asserts the hard guarantees, the unit tests the
    typical accuracy.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise SimulationError(f"P2 quantile q must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    @property
    def count(self) -> int:
        """Observations folded so far."""
        return self._count

    def observe(self, value: float) -> None:
        """Fold one sample."""
        value = float(value)
        self._count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights, positions = self._heights, self._positions

        # 1. Find the cell and update extreme markers.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]

        # 2. Nudge interior markers toward their desired positions.
        for index in range(1, 4):
            delta = self._desired[index] - positions[index]
            at, below, above = (
                positions[index], positions[index - 1], positions[index + 1]
            )
            if (delta >= 1.0 and above - at > 1.0) or (
                delta <= -1.0 and below - at < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[index] + step / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + step)
            * (h[index + 1] - h[index])
            / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - step)
            * (h[index] - h[index - 1])
            / (n[index] - n[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        h, n = self._heights, self._positions
        other = index + int(step)
        return h[index] + step * (h[other] - h[index]) / (n[other] - n[index])

    def value(self) -> float:
        """The current estimate (exact below five samples; 0.0 when empty)."""
        if not self._heights:
            return 0.0
        if len(self._heights) < 5 or self._count < 5:
            # Exact nearest-rank quantile over the (sorted) startup buffer.
            rank = max(0, math.ceil(self.q * len(self._heights)) - 1)
            return self._heights[rank]
        return self._heights[2]


class LiveRegistry:
    """Streaming fold of a trace into live counters, rates and sketches.

    Attach to a tracer (:meth:`attach`) or feed records explicitly
    (:meth:`observe`); read a JSON-ready view at any instant with
    :meth:`snapshot`.  All state is bounded: fixed histograms, O(1)
    sketches and EWMAs, sliding windows pruned as time advances, plus one
    small in-flight map (submitted-but-unfinished queries).

    Parameters
    ----------
    window:
        Sliding-window span (sim minutes) for the arrival/completion/shed
        windows the SLO rules read.
    half_life:
        Decay half-life (sim minutes) of the EWMA rates and means.
    qos_max_staleness:
        Replica-staleness threshold; sync gaps beyond it count as QoS
        violations (mirrors ``ReplicationManager``'s accounting).
    """

    def __init__(
        self,
        window: float = 10.0,
        half_life: float = 10.0,
        qos_max_staleness: float | None = None,
    ) -> None:
        self.window = window
        self.half_life = half_life
        self.qos_max_staleness = qos_max_staleness
        self.now = 0.0
        self.counters: dict[str, float] = {}

        self.iv_hist = Histogram("query.iv.hist", bounds=IV_BUCKETS)
        self.cl_hist = Histogram("query.cl.hist", bounds=DEFAULT_BUCKETS)
        self.sl_hist = Histogram("query.sl.hist", bounds=DEFAULT_BUCKETS)
        self.cl_p50 = P2Quantile(0.5)
        self.cl_p95 = P2Quantile(0.95)
        self.sl_p95 = P2Quantile(0.95)
        self.iv_p50 = P2Quantile(0.5)
        self.staleness_p95 = P2Quantile(0.95)

        self.arrival_rate = EwmaRate(half_life)
        self.completion_rate = EwmaRate(half_life)
        self.iv_ewma = EwmaMean(half_life)
        self.arrivals_window = WindowCounter(window)
        self.completions_window = WindowCounter(window)
        self.shed_window = WindowCounter(window)
        self.failed_window = WindowCounter(window)

        #: Realized-vs-planned IV: sums over completed queries whose plan
        #: event (``est_iv``) was seen.
        self._estimated_iv = 0.0
        self._realized_iv = 0.0
        self._pending_estimates: dict[int, float] = {}
        #: In-flight queries: submitted but not yet completed/failed.
        self._in_flight: set[int] = set()
        #: Down sites and when their current outage opened.
        self._down_since: dict[str, float] = {}
        self._staleness_sum = 0.0
        self._staleness_count = 0

    # -- wiring -------------------------------------------------------------

    def attach(self, tracer: "Tracer") -> "LiveRegistry":
        """Subscribe to every future record of ``tracer``; returns self."""
        tracer.subscribe(self.observe)
        return self

    def _inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    # -- the fold -----------------------------------------------------------

    def observe(self, record: TraceRecord) -> None:
        """Fold one trace record into the live state."""
        self.now = max(self.now, record.time)
        kind = record.kind
        detail = record.detail
        if kind == events.SUBMIT:
            self._inc("query.submitted")
            self.arrival_rate.observe(record.time)
            self.arrivals_window.observe(record.time)
            qid = detail.get("qid")
            if qid is not None:
                self._in_flight.add(qid)
        elif kind == events.PLAN:
            estimate = detail.get("est_iv")
            qid = detail.get("qid")
            if estimate is not None and qid is not None:
                self._pending_estimates[qid] = estimate
        elif kind in (events.COMPLETE, events.FAILED):
            self._inc("query.completed")
            if kind == events.FAILED:
                self._inc("query.failed")
                self.failed_window.observe(record.time)
            self.completion_rate.observe(record.time)
            self.completions_window.observe(record.time)
            qid = detail.get("qid")
            if qid is not None:
                self._in_flight.discard(qid)
                estimate = self._pending_estimates.pop(qid, None)
                if estimate is not None:
                    self._estimated_iv += estimate
                    self._realized_iv += detail.get("iv", 0.0)
            if kind == events.COMPLETE:
                self.iv_ewma.observe(record.time, detail.get("iv", 0.0))
        elif kind == events.LEDGER:
            # The ledger is the audit record: histograms and sketches read
            # its exact floats, so final buckets match the post-hoc
            # registry bit-for-bit (same values, same order).
            try:
                entry = IVLedgerEntry.from_dict(detail)
            except (KeyError, TypeError):
                self._inc("ledger.malformed")
                return
            self._inc("ledger.entries")
            self._inc("query.retries", entry.retries)
            self._inc("query.failovers", entry.failovers)
            if entry.degraded:
                self._inc("query.degraded")
            self.iv_hist.observe(entry.reported_iv)
            self.cl_hist.observe(entry.computational_latency)
            self.sl_hist.observe(entry.synchronization_latency)
            self.iv_p50.observe(entry.reported_iv)
            self.cl_p50.observe(entry.computational_latency)
            self.cl_p95.observe(entry.computational_latency)
            self.sl_p95.observe(entry.synchronization_latency)
        elif kind == events.SYNC_APPLY:
            self._inc("sync.total")
            gap = detail.get("gap", 0.0)
            self._staleness_sum += gap
            self._staleness_count += 1
            self.staleness_p95.observe(gap)
            if (
                self.qos_max_staleness is not None
                and gap > self.qos_max_staleness
            ):
                self._inc("sync.qos_violations")
        elif kind == events.SYNC_SKIP:
            self._inc("sync.skipped")
        elif kind == events.SYNC_DELAY:
            self._inc("sync.delayed")
        elif kind == events.FAULT_DOWN:
            self._inc("faults.outages")
            self._down_since[record.subject] = record.time
        elif kind == events.FAULT_UP:
            self._down_since.pop(record.subject, None)
        elif kind == events.MQO_ADMIT:
            self._inc("mqo.admitted")
            if detail.get("requeued"):
                self._inc("mqo.requeued")
        elif kind == events.MQO_SHED:
            self._inc("mqo.shed")
            self.shed_window.observe(record.time)
        elif kind == events.MQO_WINDOW:
            self._inc("mqo.windows")
        elif kind in (events.ALERT_OPEN, events.ALERT_CLOSE):
            self._inc(f"slo.{kind.split('.', 1)[1]}")

    # -- reading ------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Queries submitted but not yet completed/failed."""
        return len(self._in_flight)

    @property
    def sites_down(self) -> int:
        """Sites currently inside an outage window."""
        return len(self._down_since)

    def outage_dwell(self, now: float | None = None) -> float:
        """Longest current outage's dwell time (0.0 when all sites are up)."""
        now = self.now if now is None else now
        if not self._down_since:
            return 0.0
        return max(now - since for since in self._down_since.values())

    def iv_realization_ratio(self) -> float:
        """Realized / planned IV over completed queries (1.0 before data).

        Below 1.0 the system is delivering less value than it planned —
        the stream is decaying reports faster than the router priced in.
        """
        if self._estimated_iv <= 0.0:
            return 1.0
        return self._realized_iv / self._estimated_iv

    def shed_ratio(self, now: float | None = None) -> float:
        """Shed / arrivals inside the sliding window (0.0 when quiet)."""
        now = self.now if now is None else now
        arrivals = self.arrivals_window.count(now)
        shed = self.shed_window.count(now)
        seen = arrivals + shed  # shed queries never get a submit event
        return shed / seen if seen else 0.0

    def staleness_mean(self) -> float:
        """Mean sync gap observed so far (0.0 before any sync)."""
        if not self._staleness_count:
            return 0.0
        return self._staleness_sum / self._staleness_count

    def snapshot(self, now: float | None = None) -> dict:
        """One JSON-ready view of the live state at sim time ``now``."""
        now = self.now if now is None else now
        return {
            "time": now,
            "counters": dict(sorted(self.counters.items())),
            "gauges": {
                "query.in_flight": self.in_flight,
                "faults.sites_down": self.sites_down,
                "faults.outage_dwell": self.outage_dwell(now),
                "query.iv.realization": self.iv_realization_ratio(),
                "mqo.shed.ratio": self.shed_ratio(now),
                "sync.staleness.mean": self.staleness_mean(),
            },
            "rates": {
                "query.arrivals.ewma": self.arrival_rate.rate(now),
                "query.completions.ewma": self.completion_rate.rate(now),
                "query.arrivals.window": self.arrivals_window.rate(now),
                "query.completions.window": self.completions_window.rate(now),
                "query.failed.window": self.failed_window.rate(now),
                "query.iv.ewma": self.iv_ewma.mean(),
            },
            "quantiles": {
                "query.cl.p50": self.cl_p50.value(),
                "query.cl.p95": self.cl_p95.value(),
                "query.sl.p95": self.sl_p95.value(),
                "query.iv.p50": self.iv_p50.value(),
                "sync.staleness.p95": self.staleness_p95.value(),
            },
            "histograms": {
                "query.iv.hist": self.iv_hist.snapshot(),
                "query.cl.hist": self.cl_hist.snapshot(),
                "query.sl.hist": self.sl_hist.snapshot(),
            },
        }

    def final_counters(self) -> dict[str, float]:
        """The counters a drained-system registry should agree with.

        Keys mirror :func:`~repro.obs.metrics.registry_from_system`; the
        property suite asserts equality after feeding a full clean trace.
        """
        return {
            "query.completed": self.counters.get("query.completed", 0.0),
            "query.failed": self.counters.get("query.failed", 0.0),
            "query.degraded": self.counters.get("query.degraded", 0.0),
            "query.retries": self.counters.get("query.retries", 0.0),
            "query.failovers": self.counters.get("query.failovers", 0.0),
            "sync.total": self.counters.get("sync.total", 0.0),
            "sync.skipped": self.counters.get("sync.skipped", 0.0),
            "sync.delayed": self.counters.get("sync.delayed", 0.0),
        }
