"""EXT5 — sharded scale sweep: six-figure query streams (extension).

The paper evaluates streams of tens of queries; this extension measures
how far the online scheduler carries to 10^5–10^6-query streams by
exploiting the paper's own workload-formation argument (Section 3.2,
step 1) as a *sharding* rule: queries in different conflict groups have
non-overlapping execution ranges, so every server a group's slowest
candidate could occupy is free again before the next group's first query
arrives — groups are independently plannable and can run in different
worker processes without changing any single group's decisions.

The driver runs three arrival schedules per sweep:

* ``steady`` — a provisioned Poisson stream (service keeps up; the queue
  never builds), the throughput headline;
* ``burst`` — clumped arrivals (whole bursts conflict, forming large
  groups) optimized with a bigger GA through the numpy batch evaluator
  (``OnlineConfig(vectorized_ga=True)``), where vectorized scoring is
  measured faster than the scalar fast path;
* ``pressure`` — sustained overload against a small pending bound,
  exercising the defer/requeue admission path end to end.

Each schedule's pipeline: derive every query's execution range through
one :class:`~repro.mqo.evaluator.WorkloadEvaluator` (reported as
``ranges_per_sec``), maintain groups with
:class:`~repro.mqo.conflict.IncrementalConflictGroups`, bin-pack whole
groups onto shards (:func:`shard_assignments`), then run one
:class:`~repro.mqo.online.OnlineMQOScheduler` per shard — serially or in
spawned worker processes (``ScaleConfig.executor``).  Workers rebuild
their infrastructure from the (picklable) config rather than shipping
compiled plans, and are *spawned*, not forked, so their reported peak
RSS reflects the shard run alone and not the parent's allocation
history.

A sharded run is **not** claimed bit-equal to an unsharded one — each
shard re-optimizes on its own window clock — so the sweep reports
throughput, latency and conservation rather than IV equivalence: every
query is dispatched or shed exactly once across shards, and each shard
is individually deterministic (seeded), making the recorded totals
reproducible run to run.  Re-opt latency percentiles are taken over
optimization passes that actually ran the GA; passes over singleton-only
pending sets are near-free and would drown the signal.

``benchmarks/scale_snapshot.py`` commits this sweep as
``BENCH_scale.json``, gated by ``repro bench-gate``: ``*_per_sec``
throughput leaves may only ratchet up (within the wall tolerance),
``*_ms``/``wall_seconds`` leaves may not blow past it, and
``total_iv.online`` is held to the deterministic-IV family.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import tempfile
import time
import typing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.core.value import DiscountRates
from repro.errors import ConfigError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.mqo.conflict import IncrementalConflictGroups, execution_ranges
from repro.mqo.evaluator import WorkloadEvaluator
from repro.mqo.ga import GAConfig
from repro.mqo.online import OnlineConfig, OnlineMQOScheduler
from repro.mqo.vector import HAS_NUMPY
from repro.reporting.tables import ResultTable
from repro.workload.arrival import poisson_arrivals
from repro.workload.query import DSSQuery, Workload

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.obs.fleet import FleetCollector

__all__ = [
    "ScheduleSpec",
    "ScaleConfig",
    "DEFAULT_SCHEDULES",
    "MILLION_SCHEDULES",
    "build_catalog",
    "build_stream",
    "shard_assignments",
    "run_schedule",
    "run_scale_sweep",
    "run_scale",
]

_EXECUTORS = ("serial", "process")
_ARRIVALS = ("poisson", "burst")


@dataclass(frozen=True)
class ScheduleSpec:
    """One arrival schedule of the sweep (shape + scheduler knobs)."""

    name: str
    queries: int
    #: "poisson" (independent interarrivals) or "burst" (clumped).
    arrival: str = "poisson"
    #: Mean interarrival (poisson) or gap between bursts (burst), minutes.
    interarrival: float = 1.0
    #: Arrivals per burst instant (``arrival="burst"`` only).
    burst_size: int = 1
    max_pending: int = 32
    iv_floor: float = 0.0
    population_size: int = 4
    generations: int = 2
    #: Score GA generations through the numpy batch evaluator.  Degrades
    #: gracefully to the scalar path when numpy is absent.
    vectorized: bool = False

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ConfigError(f"queries must be >= 1, got {self.queries}")
        if self.arrival not in _ARRIVALS:
            raise ConfigError(
                f"arrival must be one of {_ARRIVALS}, got {self.arrival!r}"
            )
        if self.interarrival <= 0:
            raise ConfigError(
                f"interarrival must be > 0, got {self.interarrival}"
            )
        if self.burst_size < 1:
            raise ConfigError(
                f"burst_size must be >= 1, got {self.burst_size}"
            )


#: The committed-benchmark sweep: a 10^5-query steady stream plus smaller
#: burst and pressure schedules (sizes calibrated so `make bench-scale`
#: and the bench-gate re-run stay within a CI-friendly budget).
DEFAULT_SCHEDULES = (
    ScheduleSpec("steady", queries=100_000, arrival="poisson",
                 interarrival=1.0),
    ScheduleSpec("burst", queries=4_096, arrival="burst", interarrival=25.0,
                 burst_size=16, max_pending=64,
                 population_size=24, generations=8, vectorized=True),
    ScheduleSpec("pressure", queries=4_000, arrival="poisson",
                 interarrival=0.45, max_pending=16),
)

#: The full-scale variant: the steady stream at 10^6 queries (several
#: minutes of wall clock; run via ``ScaleConfig(schedules=...)``, never
#: from the committed benchmark).
MILLION_SCHEDULES = (
    replace(DEFAULT_SCHEDULES[0], queries=1_000_000),
) + DEFAULT_SCHEDULES[1:]


@dataclass(frozen=True)
class ScaleConfig:
    """Shared infrastructure + sharding knobs of one sweep."""

    tables: int = 6
    sites: int = 3
    row_count: int = 2_000
    templates: int = 12
    base_work: float = 400.0
    work_step: float = 80.0
    max_candidates: int = 4
    window: float = 8.0
    seed: int = 17
    arrival_seed: int = 7
    shards: int = 2
    #: "serial" runs shards in-process; "process" spawns one worker per
    #: shard (fresh interpreters, so per-shard peak RSS is honest).
    executor: str = "process"
    schedules: tuple[ScheduleSpec, ...] = DEFAULT_SCHEDULES
    #: Attach per-shard tracers + spools and merge them at join (the
    #: ``repro.obs.fleet`` path).  Off by default: every committed number
    #: is produced telemetry-free.
    trace: bool = False
    #: Additionally ship each shard's :class:`~repro.obs.live.LiveRegistry`
    #: state for the merged fleet registry (implies the spool machinery).
    fleet_metrics: bool = False
    #: Bound on each shard tracer's retained records (``None`` =
    #: unbounded).  The spool sees every record via subscription either
    #: way; a bound only caps worker memory and surfaces ``dropped_events``.
    trace_capacity: int | None = None
    #: Directory for the shard spool files; ``None`` uses a temporary
    #: directory removed after collection.
    spool_dir: str | None = None

    def __post_init__(self) -> None:
        if self.tables < 1:
            raise ConfigError(f"tables must be >= 1, got {self.tables}")
        if not 1 <= self.sites <= self.tables:
            raise ConfigError(
                f"sites must be in [1, tables], got {self.sites}"
            )
        if self.templates < 1:
            raise ConfigError(
                f"templates must be >= 1, got {self.templates}"
            )
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.executor not in _EXECUTORS:
            raise ConfigError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if not self.schedules:
            raise ConfigError("a sweep needs at least one schedule")
        if self.trace_capacity is not None and self.trace_capacity < 1:
            raise ConfigError(
                f"trace_capacity must be >= 1 or None, got {self.trace_capacity}"
            )

    @property
    def telemetry(self) -> bool:
        """Whether shard workers run with the fleet telemetry stack."""
        return self.trace or self.fleet_metrics


def build_catalog(config: ScaleConfig) -> Catalog:
    """The sweep's deterministic federation: staggered sync schedules."""
    catalog = Catalog()
    for index in range(config.tables):
        name = f"t{index}"
        catalog.add_table(
            TableDef(name, site=index % config.sites,
                     row_count=config.row_count)
        )
        catalog.add_replica(
            name,
            FixedSyncSchedule(
                [1.0 + index * 0.5 + k * 6.0 for k in range(10)],
                tail_period=6.0,
            ),
        )
    return catalog


def _infrastructure(config: ScaleConfig):
    catalog = build_catalog(config)
    cost_model = CostModel(catalog, params=CostParameters())
    rates = DiscountRates.symmetric(0.1)
    return catalog, cost_model, rates


def build_stream(config: ScaleConfig, spec: ScheduleSpec) -> Workload:
    """The schedule's full arrival stream (template-cycled queries)."""
    queries = []
    for index in range(spec.queries):
        template = index % config.templates
        span = 1 + template % 2
        tables = tuple(
            f"t{(template + j) % config.tables}" for j in range(span)
        )
        queries.append(DSSQuery(
            query_id=index + 1, name=f"q{index + 1}", tables=tables,
            base_work=config.base_work + config.work_step * (template % 5),
        ))
    if spec.arrival == "poisson":
        arrivals = poisson_arrivals(
            spec.interarrival, spec.queries, seed=config.arrival_seed
        )
    else:
        # Bursts of `burst_size` arrivals 0.05 min apart, every
        # `interarrival` minutes — whole bursts conflict by construction.
        arrivals = [
            (index // spec.burst_size) * spec.interarrival
            + 0.05 * (index % spec.burst_size)
            for index in range(spec.queries)
        ]
    return Workload.from_queries(queries, arrivals=arrivals)


def shard_assignments(
    groups: list[list[int]], shards: int
) -> list[list[int]]:
    """Deterministic greedy bin-packing of conflict groups onto shards.

    Groups arrive in sweep order; each goes whole onto the currently
    lightest shard (ties to the lowest index), so co-contending queries
    are always planned by the same worker and shard loads stay balanced
    without any randomness.
    """
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    loads = [0] * shards
    assigned: list[list[int]] = [[] for _ in range(shards)]
    for group in groups:
        lightest = min(range(shards), key=lambda shard: (loads[shard], shard))
        assigned[lightest].extend(group)
        loads[lightest] += len(group)
    return assigned


def _traced_run(config, spec, scheduler, workload, shard, spool_path):
    """Replay :meth:`OnlineMQOScheduler.run` with the telemetry stack attached.

    Same event loop, same decisions: the session handles the identical pop
    sequence, so stats, dispatch order and total IV are bit-equal to the
    untraced :meth:`~repro.mqo.online.OnlineMQOScheduler.run`.  Around each
    pop this driver adds the serving tier's lifecycle emissions — SUBMIT +
    PLAN on non-shed arrivals, EXEC_START per new ``("start", ...)``
    decision, COMPLETE + LEDGER (via the shared
    :func:`~repro.obs.ledger.completion_ledger` constructor) on completion
    pops — streamed onto the shard spool by subscription while the tracer
    itself is drained to bound worker memory.  One extra pop loop after
    :meth:`~repro.mqo.online.OnlineSession.drain` flushes the completions
    drain-dispatched queries push (the untraced loop never pops them; they
    change no decision, only telemetry coverage).
    """
    from repro.obs import events
    from repro.obs.fleet import ShardSpoolWriter
    from repro.obs.ledger import completion_ledger
    from repro.obs.live import LiveRegistry
    from repro.sim.clocks import SimClock
    from repro.sim.trace import Tracer

    clock = SimClock()
    tracer = Tracer(lambda: clock.now, capacity=config.trace_capacity)
    scheduler.tracer = tracer
    session = scheduler.session(workload, clock)
    cursor = 0

    def emit_starts() -> None:
        nonlocal cursor
        for entry in session.decisions[cursor:]:
            if entry[0] == "start":
                qid = entry[1]
                tracer.emit(
                    events.EXEC_START, workload.query(qid).name,
                    qid=qid, begin=entry[2],
                )
        cursor = len(session.decisions)

    def handle(now: float, tag: str, event_payload) -> None:
        outcome = session.handle(now, tag, event_payload)
        if tag == "arrival" and outcome != "shed":
            qid = event_payload
            query = workload.query(qid)
            tracer.emit(events.SUBMIT, query.name, qid=qid)
            tracer.emit(
                events.PLAN, query.name,
                qid=qid, est_iv=session.evaluator.upper_bound(qid),
            )
        emit_starts()
        if tag == "completion":
            qid = event_payload
            assignment = session.started[qid]
            query = workload.query(qid)
            entry = completion_ledger(
                query.name, qid, query.business_value, assignment.plan.rates,
                submitted_at=workload.arrival_of(qid),
                begin=assignment.begin,
                completed_at=now,
                data_timestamp=assignment.data_timestamp,
            )
            cl = entry.completed_at - entry.submitted_at
            sl = max(0.0, entry.completed_at - entry.data_timestamp)
            tracer.emit(
                events.COMPLETE, query.name,
                qid=qid, iv=entry.reported_iv, cl=cl, sl=sl,
            )
            tracer.emit(events.LEDGER, query.name, **entry.to_dict())
        tracer.drain()

    with ShardSpoolWriter(
        spool_path, shard, meta={"schedule": spec.name, "seed": config.seed},
    ) as spool:
        spool.attach(tracer)
        registry = (
            LiveRegistry().attach(tracer) if config.fleet_metrics else None
        )
        ordered = workload.sorted_by_arrival()
        session.arrivals_expected = len(ordered)
        for query in ordered:
            clock.push(
                workload.arrival_of(query.query_id), "arrival", query.query_id
            )
        while clock:
            now, tag, event_payload = clock.pop()
            handle(now, tag, event_payload)
        session.drain()
        emit_starts()
        while clock:
            now, tag, event_payload = clock.pop()
            handle(now, tag, event_payload)
        tracer.drain()
        if registry is not None:
            spool.registry(registry)
        decision = session.decision
        spool.summary(
            total_iv=decision.total_information_value,
            dropped_events=tracer.dropped,
            queries=len(ordered),
            dispatched=decision.stats.dispatched,
            shed=decision.stats.shed,
            deferred=decision.stats.deferred,
        )
    return decision


def _run_shard(payload) -> dict:
    """One shard's online run (module-level: spawned workers pickle it).

    Rebuilds catalog, cost model and stream from the config — cheaper and
    start-method-agnostic versus pickling 10^5 compiled plans — then runs
    the online scheduler over this shard's subset of the arrival stream
    (original ids and arrival times, stream order preserved).  With a
    spool path the run goes through :func:`_traced_run` (same decisions,
    telemetry shipped home); without one it is exactly the untraced
    scheduler loop.
    """
    config, spec, shard_ids, shard, spool_path = payload
    catalog, cost_model, rates = _infrastructure(config)
    members = set(shard_ids)
    stream = build_stream(config, spec)
    workload = Workload()
    for query in stream.queries:
        if query.query_id in members:
            workload.add(query, arrival=stream.arrival_of(query.query_id))
    scheduler = OnlineMQOScheduler(
        catalog, cost_model, rates,
        ga_config=GAConfig(
            population_size=spec.population_size,
            generations=spec.generations,
        ),
        seed=config.seed,
        max_candidates=config.max_candidates,
        config=OnlineConfig(
            window=config.window,
            max_pending=spec.max_pending,
            iv_floor=spec.iv_floor,
            verify_groups=False,
            vectorized_ga=spec.vectorized and HAS_NUMPY,
        ),
    )
    if spool_path is None:
        decision = scheduler.run(workload)
    else:
        decision = _traced_run(
            config, spec, scheduler, workload, shard, spool_path
        )
    stats = decision.stats
    return {
        "queries": len(shard_ids),
        "dispatched": stats.dispatched,
        "shed": stats.shed,
        "deferred": stats.deferred,
        "windows": stats.windows,
        "ga_runs": stats.ga_runs,
        "total_iv": decision.total_information_value,
        "reopt_seconds": [
            window.reopt_seconds
            for window in decision.windows
            if window.ga_runs > 0
        ],
        "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _percentile_ms(reopts: list[float], fraction: float) -> float:
    """Nearest-rank percentile of re-opt times, in milliseconds."""
    if not reopts:
        return 0.0
    rank = max(0, int(round(fraction * len(reopts))) - 1)
    return reopts[rank] * 1000.0


def run_schedule(
    config: ScaleConfig,
    spec: ScheduleSpec,
    on_fleet: "Callable[[str, FleetCollector, list], None] | None" = None,
) -> dict:
    """One schedule end to end: group, shard, run, aggregate.

    With telemetry enabled (``config.trace`` / ``config.fleet_metrics``)
    each worker writes a shard spool; the spools are merged at join into a
    :class:`~repro.obs.fleet.FleetCollector`, audited by the cross-shard
    checker, and summarized under the ``"fleet"`` metrics key.  Pass
    ``on_fleet`` to receive ``(schedule_name, collector, violations)``
    before the spool directory is cleaned up (the CLI renders dashboards
    and chrome traces from it).
    """
    catalog, cost_model, rates = _infrastructure(config)
    stream = build_stream(config, spec)

    formation_started = time.perf_counter()
    evaluator = WorkloadEvaluator(
        catalog, cost_model, rates, stream,
        max_candidates=config.max_candidates,
    )
    ranges = execution_ranges(evaluator)
    tracker = IncrementalConflictGroups()
    for rng in ranges:
        tracker.add(rng)
    groups = tracker.groups()
    formation_wall = time.perf_counter() - formation_started

    spool_tmp: tempfile.TemporaryDirectory | None = None
    spool_dir = config.spool_dir
    if config.telemetry:
        if spool_dir is None:
            spool_tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            spool_dir = spool_tmp.name
        else:
            os.makedirs(spool_dir, exist_ok=True)
    try:
        assigned = [
            shard_ids
            for shard_ids in shard_assignments(groups, config.shards)
            if shard_ids
        ]
        payloads = []
        spool_paths = []
        for shard, shard_ids in enumerate(assigned):
            spool_path = None
            if config.telemetry:
                spool_path = os.path.join(
                    spool_dir, f"{spec.name}-shard{shard}.spool"
                )
                spool_paths.append(spool_path)
            payloads.append((config, spec, shard_ids, shard, spool_path))
        run_started = time.perf_counter()
        if config.executor == "process":
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=len(payloads), mp_context=context
            ) as pool:
                shard_results = list(pool.map(_run_shard, payloads))
        else:
            shard_results = [_run_shard(payload) for payload in payloads]
        run_wall = time.perf_counter() - run_started

        reopts = sorted(
            value
            for result in shard_results
            for value in result["reopt_seconds"]
        )
        dispatched = sum(result["dispatched"] for result in shard_results)
        total_wall = formation_wall + run_wall
        rss_kbs = [result["max_rss_kb"] for result in shard_results]
        metrics = {
            "queries": spec.queries,
            "shards": len(payloads),
            "group_formation": {
                "wall_seconds": round(formation_wall, 3),
                "ranges_per_sec": round(len(ranges) / formation_wall, 1),
                "groups": len(groups),
                "largest_group": max(len(group) for group in groups),
            },
            "wall_seconds": round(run_wall, 3),
            "queries_per_sec": round(dispatched / total_wall, 1),
            "dispatched": dispatched,
            "shed": sum(result["shed"] for result in shard_results),
            "deferred": sum(result["deferred"] for result in shard_results),
            "windows": sum(result["windows"] for result in shard_results),
            "ga_runs": sum(result["ga_runs"] for result in shard_results),
            "reopt": {
                "p50_ms": round(_percentile_ms(reopts, 0.50), 3),
                "p95_ms": round(_percentile_ms(reopts, 0.95), 3),
                "p99_ms": round(_percentile_ms(reopts, 0.99), 3),
            },
            "total_iv": {
                "online": sum(
                    result["total_iv"] for result in shard_results
                ),
                **{
                    f"shard{shard}": result["total_iv"]
                    for shard, result in enumerate(shard_results)
                },
            },
            "peak_rss_mb": round(max(rss_kbs) / 1024.0, 1),
            # Peak-of-shards hides both skew and the fleet's real footprint;
            # record each worker's peak and their sum alongside the max.
            "rss": {
                **{
                    f"shard{shard}_rss_mb": round(kb / 1024.0, 1)
                    for shard, kb in enumerate(rss_kbs)
                },
                "sum_rss_mb": round(sum(rss_kbs) / 1024.0, 1),
            },
        }
        if config.telemetry:
            from repro.obs.fleet import FleetCollector

            collect_started = time.perf_counter()
            collector = FleetCollector.from_paths(spool_paths)
            violations = collector.check()
            snapshot = collector.snapshot()
            collect_wall = time.perf_counter() - collect_started
            fleet = snapshot["fleet"]
            metrics["fleet"] = {
                "records": fleet["records"],
                "dropped_events": fleet["dropped_events"],
                "ledger_entries": fleet["ledger_entries"],
                "violations": len(violations),
                "collect_wall_seconds": round(collect_wall, 3),
            }
            if "total_iv" in fleet:
                metrics["fleet"]["total_iv"] = fleet["total_iv"]
            if on_fleet is not None:
                on_fleet(spec.name, collector, violations)
        return metrics
    finally:
        if spool_tmp is not None:
            spool_tmp.cleanup()


def run_scale_sweep(
    config: ScaleConfig | None = None,
    on_fleet: "Callable[[str, FleetCollector, list], None] | None" = None,
) -> dict:
    """The full sweep as the ``BENCH_scale.json`` metrics dict."""
    config = config or ScaleConfig()
    schedules = {}
    for spec in config.schedules:
        schedules[spec.name] = run_schedule(config, spec, on_fleet=on_fleet)
    return {
        "config": {
            "tables": config.tables,
            "sites": config.sites,
            "templates": config.templates,
            "shards": config.shards,
            "executor": config.executor,
            "window": config.window,
            "max_candidates": config.max_candidates,
            "numpy": HAS_NUMPY,
            "trace": config.trace,
            "fleet_metrics": config.fleet_metrics,
        },
        "schedules": schedules,
    }


def run_scale(config: ScaleConfig | None = None) -> ResultTable:
    """EXT5 as a CLI result table (``python -m repro scale``)."""
    data = run_scale_sweep(config)
    table = ResultTable(
        title="EXT5: sharded scale sweep (conflict-group sharding)",
        headers=[
            "schedule", "queries", "shards", "qps", "ranges_per_sec",
            "p50_ms", "p95_ms", "p99_ms", "shed", "deferred",
            "total_iv", "rss_mb",
        ],
    )
    for name, metrics in data["schedules"].items():
        table.add(
            name,
            metrics["queries"],
            metrics["shards"],
            metrics["queries_per_sec"],
            metrics["group_formation"]["ranges_per_sec"],
            metrics["reopt"]["p50_ms"],
            metrics["reopt"]["p95_ms"],
            metrics["reopt"]["p99_ms"],
            metrics["shed"],
            metrics["deferred"],
            metrics["total_iv"]["online"],
            metrics["peak_rss_mb"],
        )
    table.add_footnote(
        "qps = dispatched / (group formation + shard runs); re-opt "
        "percentiles are over GA-bearing passes only"
    )
    table.add_footnote(
        "shards are whole conflict groups (independently plannable); "
        "per-shard runs are seeded and deterministic"
    )
    return table
