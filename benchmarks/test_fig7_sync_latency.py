"""Figure 7 — synchronization latency per query (IVQP vs Data Warehouse).

Asserts the paper's shape: "IVQP can always get smaller or equal
synchronization latency to Data Warehouse method", across Fq:Fs ratios
1:1, 1:10 and 1:20.
"""

from __future__ import annotations

from repro.experiments.config import TpchSetup
from repro.experiments.fig7 import Fig7Config, run_fig7


def bench_config() -> Fig7Config:
    return Fig7Config(setup=TpchSetup(scale=0.001, seed=7))


def test_fig7_sync_latency(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_fig7(bench_config()), rounds=1, iterations=1
    )
    show(table.render())

    config = bench_config()
    by_key = {}
    for ratio, _index, query, approach, sl in table.rows:
        by_key[(ratio, query, approach)] = sl

    for ratio in config.ratio_multipliers:
        ivqp_values = []
        warehouse_values = []
        for (r, query, approach), sl in by_key.items():
            if r != ratio:
                continue
            if approach == "ivqp":
                ivqp_values.append((query, sl))
            else:
                warehouse_values.append((query, sl))
        assert len(ivqp_values) == 15
        for query, sl in ivqp_values:
            assert sl <= by_key[(ratio, query, "warehouse")] + 1e-6, (
                ratio, query,
            )

    # DW synchronization latency shrinks as syncs speed up.
    def warehouse_mean(ratio: str) -> float:
        values = [
            sl for (r, _q, approach), sl in by_key.items()
            if r == ratio and approach == "warehouse"
        ]
        return sum(values) / len(values)

    assert warehouse_mean("1:20") < warehouse_mean("1:1")
