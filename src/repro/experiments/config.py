"""Shared experiment setups (Section 4.1's "General Setup").

Two data sets drive the evaluation:

* **TPC-H** — 12 tables (LineItem split into 5 partitions), 22 queries;
  5 randomly chosen tables are replicated for IVQP, none for Federation,
  all for Data Warehouse.
* **Synthetic** — 10–300 random tables, 120 random queries touching 1–10
  tables, 50 random replicas, uniform or skewed table placement.

The query arrival frequency Fq and synchronization frequency Fs are driven
by exponential streams; the ratio Fq:Fs varies from 1:0.1 to 1:20.  Fs is a
*system-wide* synchronization budget (one replica refreshed per sync event)
— see DESIGN.md for why this interpretation reproduces the paper's Figure 5
crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.value import DiscountRates
from repro.data.placement import skewed_placement, uniform_placement
from repro.data.synthetic import SyntheticInstance, generate_synthetic
from repro.data.tpch import TpchInstance, generate_tpch
from repro.errors import ConfigError
from repro.federation.system import SystemConfig, TableSpec
from repro.sim.rng import RandomSource
from repro.workload.query import DSSQuery
from repro.workload.tpch_queries import tpch_queries

__all__ = [
    "QUERY_MEAN_INTERARRIVAL",
    "FQ_FS_RATIOS",
    "LAMBDA_COMBOS",
    "TpchSetup",
    "SyntheticSetup",
    "sync_interval_for_ratio",
]

#: Mean minutes between query arrivals (Fq = 1 / this).
QUERY_MEAN_INTERARRIVAL = 10.0

#: The paper's Fq:Fs sweep (Figure 5): label -> Fs/Fq multiplier.
FQ_FS_RATIOS: dict[str, float] = {
    "1:0.1": 0.1,
    "1:1": 1.0,
    "1:10": 10.0,
    "1:20": 20.0,
}

#: The paper's four (λ_SL, λ_CL) combinations (Figure 5 x-axis groups).
LAMBDA_COMBOS: list[tuple[float, float]] = [
    (0.01, 0.01),
    (0.01, 0.05),
    (0.05, 0.01),
    (0.05, 0.05),
]


def sync_interval_for_ratio(ratio: float) -> float:
    """System-wide mean minutes between sync events for one Fq:Fs ratio."""
    if ratio <= 0:
        raise ConfigError(f"Fq:Fs ratio multiplier must be > 0, got {ratio}")
    return QUERY_MEAN_INTERARRIVAL / ratio


@dataclass
class TpchSetup:
    """The TPC-H experiment environment (Sections 4.2 / Figures 5–7)."""

    scale: float = 0.002
    seed: int = 7
    num_sites: int = 4
    replicated_count: int = 5

    _instance: TpchInstance | None = field(default=None, repr=False)

    @property
    def instance(self) -> TpchInstance:
        """The generated (cached) TPC-H micro-instance."""
        if self._instance is None:
            self._instance = generate_tpch(scale=self.scale, seed=self.seed)
        return self._instance

    def table_specs(self) -> list[TableSpec]:
        """Physical tables placed round-robin over the remote sites."""
        instance = self.instance
        return [
            TableSpec(
                name,
                site=index % self.num_sites,
                row_count=instance.row_counts[name],
                row_bytes=instance.database.table(name).schema.row_width_bytes,
            )
            for index, name in enumerate(instance.table_names)
        ]

    def replicated_for_ivqp(self) -> list[str]:
        """The 5 randomly selected replicated tables (Section 4.2)."""
        rng = RandomSource(self.seed, "tpch-replication")
        return sorted(
            rng.spawn("pick").sample(self.instance.table_names,
                                     self.replicated_count)
        )

    def queries(self) -> list[DSSQuery]:
        """The 22 TPC-H queries."""
        return tpch_queries(self.instance)

    def system_config(
        self,
        approach: str,
        rates: DiscountRates,
        sync_mean_interval: float,
        sync_mode: str = "shared",
        seed: int = 1,
    ) -> SystemConfig:
        """A :class:`SystemConfig` for one approach.

        ``approach`` ∈ {"ivqp", "ivqp-partial", "federation", "warehouse"}.

        Federation replicates nothing and the Data Warehouse replicates
        every table (Section 4.1).  For IVQP two infrastructures exist:

        * ``"ivqp"`` — full replication, differing from the baselines in
          *routing* only.  This is the reading under which the paper's
          "IVQP always obtains the biggest information values" claim is
          structurally possible (IVQP's plan space then subsumes both
          baselines'); see EXPERIMENTS.md.
        * ``"ivqp-partial"`` — the paper-literal Section 4.2 replication
          plan ("randomly select 5 out of 12 tables"), reported as an
          additional variant.
        """
        if approach == "ivqp":
            replicated = list(self.instance.table_names)
        elif approach == "ivqp-partial":
            replicated = self.replicated_for_ivqp()
        elif approach == "federation":
            replicated = []
        elif approach == "warehouse":
            replicated = list(self.instance.table_names)
        else:
            raise ConfigError(f"unknown approach {approach!r}")
        return SystemConfig(
            tables=self.table_specs(),
            replicated=replicated,
            sync_mode=sync_mode,
            sync_mean_interval=sync_mean_interval,
            rates=rates,
            engine_db=self.instance.database,
            seed=seed,
        )


@dataclass
class SyntheticSetup:
    """The synthetic experiment environment (Sections 4.3–4.4)."""

    num_tables: int = 100
    num_sites: int = 6
    replicated_count: int = 50
    placement: str = "uniform"  # uniform | skewed
    rows_range: tuple[int, int] = (200, 2000)
    seed: int = 11

    _instance: SyntheticInstance | None = field(default=None, repr=False)

    @property
    def instance(self) -> SyntheticInstance:
        """The generated (cached) synthetic instance (schema only)."""
        if self._instance is None:
            self._instance = generate_synthetic(
                num_tables=self.num_tables,
                rows_range=self.rows_range,
                seed=self.seed,
                materialize_rows=False,
            )
        return self._instance

    def placement_map(self) -> dict[str, int]:
        """Table → site under the configured placement policy."""
        rng = RandomSource(self.seed, "placement")
        if self.placement == "uniform":
            return uniform_placement(
                self.instance.table_names, self.num_sites, rng.spawn("uniform")
            )
        if self.placement == "skewed":
            return skewed_placement(
                self.instance.table_names, self.num_sites, rng.spawn("skewed")
            )
        raise ConfigError(f"unknown placement {self.placement!r}")

    def table_specs(self) -> list[TableSpec]:
        """Physical tables under the configured placement."""
        placement = self.placement_map()
        instance = self.instance
        return [
            TableSpec(
                name,
                site=placement[name],
                row_count=instance.row_counts[name],
            )
            for name in instance.table_names
        ]

    def replicated_for_ivqp(self) -> list[str]:
        """The 50 randomly selected replicas (Section 4.3)."""
        rng = RandomSource(self.seed, "synthetic-replication")
        count = min(self.replicated_count, self.num_tables)
        return sorted(rng.spawn("pick").sample(self.instance.table_names, count))

    def system_config(
        self,
        approach: str,
        rates: DiscountRates,
        sync_mean_interval: float,
        sync_mode: str = "shared",
        seed: int = 1,
    ) -> SystemConfig:
        """A :class:`SystemConfig` for one approach.

        For the synthetic experiments IVQP uses the paper's partial
        replication ("randomly select 50 replications", Section 4.3) —
        full replication of 100 tables over one shared sync budget would be
        hopelessly stale, so partial replication IS the right hybrid
        infrastructure here and IVQP still dominates.
        """
        if approach in ("ivqp", "ivqp-partial"):
            replicated = self.replicated_for_ivqp()
        elif approach == "federation":
            replicated = []
        elif approach == "warehouse":
            replicated = list(self.instance.table_names)
        else:
            raise ConfigError(f"unknown approach {approach!r}")
        return SystemConfig(
            tables=self.table_specs(),
            replicated=replicated,
            sync_mode=sync_mode,
            sync_mean_interval=sync_mean_interval,
            rates=rates,
            seed=seed,
        )
