"""Query plans over table versions (paper Sections 2–3.1).

A plan fixes, for every table a query reads, *which version* is read —
the remote **base** table or the local **replica** — and *when* execution
starts.  Starting later than submission is the paper's "delayed execution":
it waits for a scheduled synchronization so replicas are fresher.

Freshness bookkeeping follows Section 2:

* a base table read by a plan starting at ``t_s`` has freshness ``t_s``
  (the data may change as soon as execution starts, so the synchronization
  latency of a remote read equals the time from execution start to result
  receipt);
* a replica has the freshness of its last completed synchronization at
  ``t_s``.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass

from repro.core.value import DiscountRates, information_value
from repro.errors import PlanError

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.costmodel import ComboCost
    from repro.workload.query import DSSQuery

__all__ = ["VersionKind", "TableVersion", "QueryPlan"]


class VersionKind(str, enum.Enum):
    """Which copy of a table a plan reads."""

    BASE = "base"
    REPLICA = "replica"


@dataclass(frozen=True)
class TableVersion:
    """One table's chosen version inside a plan."""

    table: str
    kind: VersionKind
    freshness: float

    def __post_init__(self) -> None:
        if self.freshness < 0:
            raise PlanError(
                f"version of {self.table!r} has negative freshness "
                f"{self.freshness}"
            )


@dataclass(frozen=True)
class QueryPlan:
    """A fully specified evaluation plan with estimated latencies and IV.

    The estimates assume an uncontended system (queuing time zero); the
    executor and the MQO evaluator account for contention separately.
    """

    query: "DSSQuery"
    versions: tuple[TableVersion, ...]
    submitted_at: float
    start_time: float
    cost: ComboCost
    rates: DiscountRates

    def __post_init__(self) -> None:
        if self.start_time < self.submitted_at:
            raise PlanError("plan cannot start before the query is submitted")
        covered = {version.table for version in self.versions}
        if covered != set(self.query.tables):
            raise PlanError(
                f"plan for {self.query.name!r} covers {sorted(covered)} but "
                f"the query reads {sorted(self.query.tables)}"
            )
        if len(covered) != len(self.versions):
            raise PlanError(f"plan for {self.query.name!r} repeats a table")

    # -- composition ------------------------------------------------------

    @property
    def remote_tables(self) -> frozenset[str]:
        """Tables read from their remote base copy."""
        return frozenset(
            version.table
            for version in self.versions
            if version.kind is VersionKind.BASE
        )

    @property
    def replica_tables(self) -> frozenset[str]:
        """Tables read from local replicas."""
        return frozenset(
            version.table
            for version in self.versions
            if version.kind is VersionKind.REPLICA
        )

    @property
    def delayed(self) -> bool:
        """Whether the plan waits for a future synchronization point."""
        return self.start_time > self.submitted_at

    # -- latency estimates ---------------------------------------------------

    @property
    def completion_time(self) -> float:
        """Estimated result receipt time (no contention)."""
        return self.start_time + self.cost.processing + self.cost.transmission

    @property
    def oldest_freshness(self) -> float:
        """Freshness of the stalest version read — this decides SL."""
        return min(version.freshness for version in self.versions)

    @property
    def computational_latency(self) -> float:
        """Estimated CL: submission to result receipt (includes waiting)."""
        return self.completion_time - self.submitted_at

    @property
    def synchronization_latency(self) -> float:
        """Estimated SL: stalest version's sync point to result receipt."""
        return max(0.0, self.completion_time - self.oldest_freshness)

    @property
    def information_value(self) -> float:
        """Estimated IV of this plan's report."""
        return information_value(
            self.query.business_value,
            self.computational_latency,
            self.synchronization_latency,
            self.rates,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        marks = ",".join(
            f"{v.table}{'[R]' if v.kind is VersionKind.REPLICA else '[T]'}"
            for v in sorted(self.versions, key=lambda v: v.table)
        )
        delay = f" delayed->{self.start_time:.2f}" if self.delayed else ""
        return (
            f"{self.query.name}: {marks}{delay} "
            f"CL={self.computational_latency:.2f} "
            f"SL={self.synchronization_latency:.2f} "
            f"IV={self.information_value:.4f}"
        )
