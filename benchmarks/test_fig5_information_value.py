"""Figure 5 — information value vs synchronization frequency (TPC-H).

Reduced-size regeneration (smaller TPC-H scale, one round per cell); the
full-size sweep is ``python -m repro fig5``.  Asserts the paper's shapes:

* IVQP obtains the highest information values in every cell;
* Data Warehouse improves as synchronization gets more frequent and
  overtakes Federation at Fq:Fs = 1:20.
"""

from __future__ import annotations

from repro.experiments.config import TpchSetup
from repro.experiments.fig5 import Fig5Config, run_fig5


def bench_config() -> Fig5Config:
    return Fig5Config(
        setup=TpchSetup(scale=0.001, seed=7),
        rounds=1,
    )


def _cell(table, ratio, lambdas, approach):
    for row in table.rows:
        if (row[0], (row[1], row[2]), row[3]) == (ratio, lambdas, approach):
            return row[4]
    raise AssertionError(f"missing cell {ratio}/{lambdas}/{approach}")


def test_fig5_information_value(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_fig5(bench_config()), rounds=1, iterations=1
    )
    show(table.render())

    config = bench_config()
    for ratio in config.ratios:
        for lambdas in config.lambdas:
            ivqp = _cell(table, ratio, lambdas, "ivqp")
            fed = _cell(table, ratio, lambdas, "federation")
            wh = _cell(table, ratio, lambdas, "warehouse")
            # IVQP always obtains the biggest information values.
            assert ivqp >= fed - 5e-3, (ratio, lambdas)
            assert ivqp >= wh - 5e-3, (ratio, lambdas)

    # Data Warehouse improves with sync frequency ...
    for lambdas in config.lambdas:
        slow = _cell(table, "1:0.1", lambdas, "warehouse")
        fast = _cell(table, "1:20", lambdas, "warehouse")
        assert fast > slow, lambdas
    # ... and overtakes Federation at 1:20 (symmetric-λ cells).
    for lambdas in ((0.01, 0.01), (0.05, 0.05)):
        assert _cell(table, "1:20", lambdas, "warehouse") > _cell(
            table, "1:20", lambdas, "federation"
        )
        # ... while losing badly when syncs are rare.
        assert _cell(table, "1:0.1", lambdas, "warehouse") < _cell(
            table, "1:0.1", lambdas, "federation"
        )
