"""Precalculated routing for registered queries (paper Section 3.1).

"If all queries are registered in advance and a QoS aware replication
manager is deployed to ensure updates to a table propagated to its replica
in DSS within a pre-defined time frame, information values of all queries
can be pre-calculated for routing."

A :class:`RoutingTable` exploits the structure of the plan space: between
two consecutive synchronization completions of a query's replicas, the
optimizer's decision depends only on the *current freshness vector* of
those replicas — which is constant on that interval up to a uniform time
shift.  The table therefore precomputes, for every registered query and
every sync interval inside a horizon, the chosen plan *shape* (remote set +
which sync point, if any, to delay to), and answers routing requests with a
dictionary lookup plus one plan materialisation.

Because the trade-off can flip *within* an interval (delaying gets cheaper
as the next sync approaches), a lookup does not blindly reuse the
interval's shape: it materialises every *distinct* shape the table learned
for the query (a handful) at the actual submission instant and returns the
best.  That keeps routing a constant-size evaluation — no time-line walk,
no bound search — while staying exact whenever the optimal shape occurs
anywhere in the table.  Equivalence and lookup speed are covered by the
routing tests and the ABL4 benchmark.
"""

from __future__ import annotations

import bisect
import typing
from dataclasses import dataclass

from repro.core.enumeration import CostProvider, make_plan, split_tables
from repro.core.optimizer import IVQPOptimizer
from repro.core.plan import QueryPlan
from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery

__all__ = ["PlanShape", "RoutingTable", "PrecomputedRouter"]


@dataclass(frozen=True)
class PlanShape:
    """The reusable part of a routing decision.

    Attributes
    ----------
    remote_tables:
        Which tables the chosen plan reads remotely.
    delay_syncs:
        How many of the query's upcoming sync completions to wait for
        before starting (0 = execute immediately).
    """

    remote_tables: frozenset[str]
    delay_syncs: int


@dataclass
class RoutingStats:
    """Hit/miss accounting of a routing table."""

    lookups: int = 0
    hits: int = 0
    fallbacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the table."""
        return self.hits / self.lookups if self.lookups else 0.0


class RoutingTable:
    """Precomputed plan shapes for a registered query set."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
        horizon: float,
        start: float = 0.0,
    ) -> None:
        if horizon <= start:
            raise OptimizationError("routing horizon must exceed its start")
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates
        self.start = float(start)
        self.horizon = float(horizon)
        self.stats = RoutingStats()
        self._optimizer = IVQPOptimizer(catalog, cost_provider, default_rates)
        # query -> (interval start times, shape per interval, distinct shapes)
        self._entries: dict[
            "DSSQuery", tuple[list[float], list[PlanShape], list[PlanShape]]
        ] = {}

    # -- registration --------------------------------------------------------

    def register(self, query: "DSSQuery") -> int:
        """Precompute routing decisions for one query; returns #intervals."""
        self.catalog.validate_query_tables(query.tables)
        boundaries = self._interval_starts(query)
        shapes = [
            self._shape_of(self._optimizer.choose_plan(query, at), query, at)
            for at in boundaries
        ]
        # Candidate pool for lookups: every observed shape, plus the same
        # remote set one sync shallower/deeper (a submission falling just
        # after a completion shifts which sync is worth waiting for by one).
        pool: dict[PlanShape, None] = {}
        for shape in shapes:
            for delay in (
                max(shape.delay_syncs - 1, 0),
                shape.delay_syncs,
                shape.delay_syncs + 1,
            ):
                pool[PlanShape(shape.remote_tables, delay)] = None
        # The scatter incumbent (all base tables, immediately) is always a
        # candidate: mid-interval, when every replica has gone stale, it can
        # beat every boundary-observed shape.
        pool[PlanShape(frozenset(query.tables), 0)] = None
        self._entries[query] = (boundaries, shapes, list(pool))
        return len(boundaries)

    def register_all(self, queries) -> int:
        """Register many queries; returns the total interval count."""
        return sum(self.register(query) for query in queries)

    @property
    def registered(self) -> int:
        """Number of registered queries."""
        return len(self._entries)

    def _interval_starts(self, query: "DSSQuery") -> list[float]:
        replicated, _ = split_tables(query, self.catalog)
        points = {self.start}
        for name in replicated:
            replica = self.catalog.replica(name)
            points.update(
                replica.schedule.completions_between(self.start, self.horizon)
            )
        return sorted(points)

    def _shape_of(
        self, plan: QueryPlan, query: "DSSQuery", submitted_at: float
    ) -> PlanShape:
        if not plan.delayed:
            return PlanShape(plan.remote_tables, 0)
        # Count the sync completions between submission and the start.
        replicated, _ = split_tables(query, self.catalog)
        count = 0
        time_line = submitted_at
        while time_line < plan.start_time - 1e-9:
            time_line = min(
                self.catalog.replica(name).next_sync_after(time_line)
                for name in replicated
            )
            count += 1
        return PlanShape(plan.remote_tables, count)

    # -- routing -----------------------------------------------------------------

    def route(self, query: "DSSQuery", submitted_at: float) -> QueryPlan:
        """A plan for ``query`` at ``submitted_at`` via table lookup.

        Falls back to a live optimizer run for unregistered queries or
        submissions outside the precomputed horizon (counted in
        :attr:`stats`).
        """
        self.stats.lookups += 1
        entry = self._entries.get(query)
        if entry is None or not self.start <= submitted_at <= self.horizon:
            self.stats.fallbacks += 1
            return self._optimizer.choose_plan(query, submitted_at)
        boundaries, shapes, distinct = entry
        index = max(bisect.bisect_right(boundaries, submitted_at) - 1, 0)
        self.stats.hits += 1
        candidates = [shapes[index]]
        candidates.extend(s for s in distinct if s != shapes[index])
        best: QueryPlan | None = None
        for shape in candidates:
            plan = self._materialise(query, submitted_at, shape)
            if best is None or plan.information_value > best.information_value:
                best = plan
        assert best is not None
        return best

    def _materialise(
        self, query: "DSSQuery", submitted_at: float, shape: PlanShape
    ) -> QueryPlan:
        rates = (
            query.rates if query.rates is not None else self.default_rates
        )
        start_time = submitted_at
        if shape.delay_syncs:
            replicated, _ = split_tables(query, self.catalog)
            for _ in range(shape.delay_syncs):
                start_time = min(
                    self.catalog.replica(name).next_sync_after(start_time)
                    for name in replicated
                )
        return make_plan(
            query,
            self.catalog,
            self.cost_provider,
            rates,
            submitted_at=submitted_at,
            start_time=start_time,
            remote_tables=shape.remote_tables,
        )


class PrecomputedRouter:
    """A drop-in :class:`~repro.federation.system.Router` over a table."""

    def __init__(self, table: RoutingTable) -> None:
        self.table = table

    def choose_plan(self, query: "DSSQuery", submitted_at: float) -> QueryPlan:
        """Route via the precomputed table (live fallback when missing)."""
        return self.table.route(query, submitted_at)
