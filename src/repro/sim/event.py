"""Events — the unit of scheduling in the discrete-event kernel.

An :class:`Event` starts *pending*, is *triggered* exactly once (with a value
or an exception) and is then *processed* by the simulator, which invokes its
callbacks.  Processes wait on events by ``yield``-ing them.
"""

from __future__ import annotations

import typing
from collections.abc import Callable, Sequence

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Simulator

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]

_UNSET = object()


class Event:
    """A one-shot occurrence other simulation entities can wait on."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: object = _UNSET
        self._pending_value: object = None
        self._exception: BaseException | None = None
        self._defused = False
        self._processed = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has been given a value or an exception."""
        return self._value is not _UNSET or self._exception is not None

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self):
        """The success value; raises if the event failed or is pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is _UNSET:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or ``None``."""
        return self._exception

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    @property
    def defused(self) -> bool:
        """Whether a failure has been acknowledged via :meth:`defuse`."""
        return self._defused

    # -- triggering ----------------------------------------------------

    def succeed(self, value=None) -> "Event":
        """Trigger the event successfully and schedule callback delivery."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self.sim.schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail needs an exception instance")
        self._exception = exception
        self.sim.schedule_event(self)
        return self

    def _deliver(self) -> None:
        """Run callbacks; called by the simulator when the event fires."""
        if self._processed:
            return
        if not self.triggered:
            # Events scheduled with a delay (timeouts) trigger at delivery.
            self._value = self._pending_value
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused:
            raise self._exception

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or type(self).__name__
        return f"<{label} triggered={self.triggered}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` minutes."""

    def __init__(self, sim: "Simulator", delay: float, value=None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim, name=f"Timeout({delay:g})")
        self.delay = float(delay)
        self._pending_value = value
        sim.schedule_event(self, delay=delay)


class _Condition(Event):
    """Base for events composed of several child events."""

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim, name=type(self).__name__)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from two simulators")
        self._pending = sum(1 for event in self.events if not event.triggered)
        if self._satisfied():
            self.succeed(self._collect())
        else:
            for event in self.events:
                if not event.triggered:
                    event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self):
        return {event: event.value for event in self.events if event.ok}


class AllOf(_Condition):
    """Fires when *all* child events have fired."""

    def _satisfied(self) -> bool:
        return self._pending == 0


class AnyOf(_Condition):
    """Fires as soon as *any* child event has fired."""

    def _satisfied(self) -> bool:
        return self._pending < len(self.events)
