"""Figure 8 — Information value vs number of sites.

Synthetic data set, 100 tables, 50 random replicas, 120 random queries each
touching up to 10 tables.  The number of remote sites varies from 2 to 22;
tables are distributed either **skewed** (half on site 0, a quarter on
site 1, ...) or **uniform**.

Expected shape: IVQP wins everywhere.  Under uniform placement, more sites
mean a query's tables are spread over more nodes, so communication overhead
reduces the information value gained by IVQP and Federation; under skewed
placement most tables stay on a few sites and the curves are nearly flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.value import DiscountRates
from repro.experiments.config import QUERY_MEAN_INTERARRIVAL, SyntheticSetup
from repro.experiments.runner import run_stream
from repro.federation.costmodel import CostParameters
from repro.federation.network import NetworkModel
from repro.reporting.tables import ResultTable
from repro.workload.generator import random_queries

__all__ = ["Fig8Config", "run_fig8"]


@dataclass
class Fig8Config:
    """Parameters of the Figure 8 sweep."""

    site_counts: tuple[int, ...] = (2, 6, 10, 14, 18, 22)
    placements: tuple[str, ...] = ("skewed", "uniform")
    num_tables: int = 100
    replicated_count: int = 50
    query_count: int = 120
    max_tables_per_query: int = 10
    lambda_both: float = 0.05
    #: System-wide mean minutes between sync events (one replica per event).
    sync_mean_interval: float = 0.2
    #: Heavier cross-site coordination than the TPC-H experiments — this is
    #: the knob Figure 8 studies (calibrated in EXPERIMENTS.md).
    network: NetworkModel = field(
        default_factory=lambda: NetworkModel(coordination_overhead=1.5)
    )
    cost_params: CostParameters = field(
        default_factory=lambda: CostParameters(assembly_per_site=0.3)
    )
    approaches: tuple[str, ...] = ("ivqp", "federation", "warehouse")
    seed: int = 11
    workload_seed: int = 23
    arrival_seed: int = 3


def run_fig8(config: Fig8Config | None = None) -> ResultTable:
    """Run the Figure 8 sweep and return its result table."""
    config = config or Fig8Config()
    rates = DiscountRates.symmetric(config.lambda_both)
    table = ResultTable(
        title="Figure 8: mean information value vs number of sites",
        headers=["placement", "sites", "approach", "mean_iv"],
    )
    for placement in config.placements:
        for sites in config.site_counts:
            setup = SyntheticSetup(
                num_tables=config.num_tables,
                num_sites=sites,
                replicated_count=config.replicated_count,
                placement=placement,
                seed=config.seed,
            )
            queries = random_queries(
                setup.instance,
                count=config.query_count,
                max_tables=config.max_tables_per_query,
                seed=config.workload_seed,
            )
            for approach in config.approaches:
                system_config = setup.system_config(
                    approach=approach,
                    rates=rates,
                    sync_mean_interval=config.sync_mean_interval,
                )
                system_config.network = config.network
                system_config.cost_params = config.cost_params
                result = run_stream(
                    system_config,
                    approach,
                    queries,
                    mean_interarrival=QUERY_MEAN_INTERARRIVAL,
                    rounds=1,
                    arrival_seed=config.arrival_seed,
                )
                table.add(placement, sites, approach, result.mean_iv)
    return table
