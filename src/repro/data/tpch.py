"""TPC-H-shaped data generator.

The paper evaluates on "TPC-H benchmark data set: 6GB data and 22 queries"
and, for the synchronization experiments, "split[s] LineItem table into 5
partitions, therefore there are totally 12 tables".  We reproduce the schema
shape and relative table sizes at a configurable micro scale (the absolute
6 GB is irrelevant to the simulated latencies; only *relative* costs matter,
and those come from row counts and join shapes).

Dates are stored as integer day offsets from 1992-01-01; TPC-H's date range
spans about 7 years (0..2555).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.planner import Database
from repro.engine.schema import Column, DType, TableSchema
from repro.engine.table import Table
from repro.engine.views import UnionTable
from repro.errors import ConfigError
from repro.sim.rng import RandomSource

__all__ = [
    "TPCH_SCHEMAS",
    "LINEITEM_PARTITIONS",
    "TpchInstance",
    "generate_tpch",
    "lineitem_partition_names",
]

#: Number of LineItem partitions used by the paper's Section 4.2 setup.
LINEITEM_PARTITIONS = 5

#: TPC-H date domain in integer days.
DATE_MIN, DATE_MAX = 0, 2555

_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
_BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
_TYPES = (
    "STANDARD ANODIZED TIN",
    "SMALL PLATED COPPER",
    "MEDIUM BURNISHED NICKEL",
    "LARGE BRUSHED STEEL",
    "ECONOMY POLISHED BRASS",
    "PROMO ANODIZED STEEL",
)
_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)


def _schema(name: str, *cols: tuple[str, str], pk: tuple[str, ...] = ()) -> TableSchema:
    return TableSchema(
        name,
        tuple(Column(cname, ctype) for cname, ctype in cols),
        primary_key=pk,
    )


_LINEITEM_COLUMNS = (
    ("l_orderkey", DType.INT),
    ("l_partkey", DType.INT),
    ("l_suppkey", DType.INT),
    ("l_linenumber", DType.INT),
    ("l_quantity", DType.FLOAT),
    ("l_extendedprice", DType.FLOAT),
    ("l_discount", DType.FLOAT),
    ("l_tax", DType.FLOAT),
    ("l_returnflag", DType.STR),
    ("l_linestatus", DType.STR),
    ("l_shipdate", DType.DATE),
)

#: The 8 logical TPC-H tables (lineitem listed once; partitions derive).
TPCH_SCHEMAS: dict[str, TableSchema] = {
    "region": _schema(
        "region",
        ("r_regionkey", DType.INT), ("r_name", DType.STR),
        pk=("r_regionkey",),
    ),
    "nation": _schema(
        "nation",
        ("n_nationkey", DType.INT), ("n_name", DType.STR),
        ("n_regionkey", DType.INT),
        pk=("n_nationkey",),
    ),
    "supplier": _schema(
        "supplier",
        ("s_suppkey", DType.INT), ("s_name", DType.STR),
        ("s_nationkey", DType.INT), ("s_acctbal", DType.FLOAT),
        pk=("s_suppkey",),
    ),
    "customer": _schema(
        "customer",
        ("c_custkey", DType.INT), ("c_name", DType.STR),
        ("c_nationkey", DType.INT), ("c_acctbal", DType.FLOAT),
        ("c_mktsegment", DType.STR),
        pk=("c_custkey",),
    ),
    "part": _schema(
        "part",
        ("p_partkey", DType.INT), ("p_name", DType.STR),
        ("p_brand", DType.STR), ("p_type", DType.STR),
        ("p_size", DType.INT), ("p_retailprice", DType.FLOAT),
        pk=("p_partkey",),
    ),
    "partsupp": _schema(
        "partsupp",
        ("ps_partkey", DType.INT), ("ps_suppkey", DType.INT),
        ("ps_availqty", DType.INT), ("ps_supplycost", DType.FLOAT),
        pk=("ps_partkey", "ps_suppkey"),
    ),
    "orders": _schema(
        "orders",
        ("o_orderkey", DType.INT), ("o_custkey", DType.INT),
        ("o_orderstatus", DType.STR), ("o_totalprice", DType.FLOAT),
        ("o_orderdate", DType.DATE), ("o_orderpriority", DType.STR),
        pk=("o_orderkey",),
    ),
    "lineitem": _schema("lineitem", *_LINEITEM_COLUMNS, pk=()),
}


def lineitem_partition_names(partitions: int = LINEITEM_PARTITIONS) -> list[str]:
    """Names of the LineItem partitions (``lineitem_p1`` .. ``lineitem_pK``)."""
    return [f"lineitem_p{i + 1}" for i in range(partitions)]


@dataclass
class TpchInstance:
    """A generated TPC-H micro-instance.

    Attributes
    ----------
    database:
        All tables, with LineItem stored only as its partitions.
    table_names:
        The 7 + ``partitions`` physical table names (the paper's "12 tables"
        for the default 5-way split).
    scale:
        The micro scale factor used.
    """

    database: Database
    table_names: list[str]
    scale: float
    partitions: int = LINEITEM_PARTITIONS
    row_counts: dict[str, int] = field(default_factory=dict)

    @property
    def lineitem_partitions(self) -> list[str]:
        """Names of the LineItem partitions."""
        return lineitem_partition_names(self.partitions)


def _row_counts(scale: float) -> dict[str, int]:
    """Scaled TPC-H row counts (floors keep tiny scales usable)."""
    return {
        "region": 5,
        "nation": 25,
        "supplier": max(10, int(10_000 * scale)),
        "customer": max(30, int(150_000 * scale)),
        "part": max(40, int(200_000 * scale)),
        "partsupp": max(80, int(800_000 * scale)),
        "orders": max(150, int(1_500_000 * scale)),
        "lineitem": max(600, int(6_000_000 * scale)),
    }


def generate_tpch(
    scale: float = 0.002,
    seed: int = 7,
    partitions: int = LINEITEM_PARTITIONS,
) -> TpchInstance:
    """Generate a deterministic TPC-H micro-instance.

    Parameters
    ----------
    scale:
        Fraction of the TPC-H SF1 row counts (0.002 → ~12k lineitem rows).
    seed:
        Root seed; identical seeds generate identical instances.
    partitions:
        How many LineItem partitions to create (the paper uses 5).
    """
    if scale <= 0:
        raise ConfigError(f"scale must be > 0, got {scale}")
    if partitions < 1:
        raise ConfigError(f"partitions must be >= 1, got {partitions}")

    source = RandomSource(seed, "tpch")
    counts = _row_counts(scale)
    database = Database()

    region = Table(TPCH_SCHEMAS["region"])
    for key, name in enumerate(_REGIONS):
        region.insert((key, name))
    database.add(region)

    nation = Table(TPCH_SCHEMAS["nation"])
    for key, (name, regionkey) in enumerate(_NATIONS):
        nation.insert((key, name, regionkey))
    database.add(nation)

    rng = source.spawn("supplier")
    supplier = Table(TPCH_SCHEMAS["supplier"])
    for key in range(counts["supplier"]):
        supplier.insert((
            key,
            f"Supplier#{key:06d}",
            rng.randint(0, len(_NATIONS) - 1),
            round(rng.uniform(-999.0, 9999.0), 2),
        ))
    database.add(supplier)

    rng = source.spawn("customer")
    customer = Table(TPCH_SCHEMAS["customer"])
    for key in range(counts["customer"]):
        customer.insert((
            key,
            f"Customer#{key:06d}",
            rng.randint(0, len(_NATIONS) - 1),
            round(rng.uniform(-999.0, 9999.0), 2),
            rng.choice(_SEGMENTS),
        ))
    database.add(customer)

    rng = source.spawn("part")
    part = Table(TPCH_SCHEMAS["part"])
    for key in range(counts["part"]):
        part.insert((
            key,
            f"Part#{key:06d}",
            rng.choice(_BRANDS),
            rng.choice(_TYPES),
            rng.randint(1, 50),
            round(900.0 + (key % 1000) + rng.uniform(0, 100.0), 2),
        ))
    database.add(part)

    rng = source.spawn("partsupp")
    partsupp = Table(TPCH_SCHEMAS["partsupp"])
    per_part = max(1, counts["partsupp"] // max(counts["part"], 1))
    for partkey in range(counts["part"]):
        for i in range(per_part):
            partsupp.insert((
                partkey,
                (partkey + i * 7) % counts["supplier"],
                rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2),
            ))
    database.add(partsupp)

    rng = source.spawn("orders")
    orders = Table(TPCH_SCHEMAS["orders"])
    for key in range(counts["orders"]):
        orders.insert((
            key,
            rng.randint(0, counts["customer"] - 1),
            rng.choice(("O", "F", "P")),
            round(rng.uniform(850.0, 500_000.0), 2),
            rng.randint(DATE_MIN, DATE_MAX),
            rng.choice(_PRIORITIES),
        ))
    database.add(orders)

    rng = source.spawn("lineitem")
    partition_tables = [
        Table(TPCH_SCHEMAS["lineitem"].rename(name))
        for name in lineitem_partition_names(partitions)
    ]
    lines_per_order = max(1, counts["lineitem"] // max(counts["orders"], 1))
    for orderkey in range(counts["orders"]):
        for line in range(rng.randint(1, 2 * lines_per_order - 1)):
            quantity = float(rng.randint(1, 50))
            price = round(quantity * rng.uniform(900.0, 2000.0), 2)
            row = (
                orderkey,
                rng.randint(0, counts["part"] - 1),
                rng.randint(0, counts["supplier"] - 1),
                line + 1,
                quantity,
                price,
                round(rng.uniform(0.0, 0.10), 2),
                round(rng.uniform(0.0, 0.08), 2),
                rng.choice(("A", "N", "R")),
                rng.choice(("O", "F")),
                rng.randint(DATE_MIN, DATE_MAX),
            )
            # Hash-partition by order key so joins stay partition-local-ish.
            partition_tables[orderkey % partitions].insert(row)
    for table in partition_tables:
        database.add(table)

    # A combined logical "lineitem" is registered as a union-all view over
    # the partitions (no row copies) so engine-level query definitions can
    # reference it directly; the DSS layer always works with the physical
    # partitions.
    database.add(UnionTable(TPCH_SCHEMAS["lineitem"], partition_tables))

    table_names = [
        "region", "nation", "supplier", "customer",
        "part", "partsupp", "orders",
    ] + lineitem_partition_names(partitions)
    row_counts = {name: database.table(name).row_count for name in table_names}
    return TpchInstance(
        database=database,
        table_names=table_names,
        scale=scale,
        partitions=partitions,
        row_counts=row_counts,
    )
