"""EXT3 — graceful degradation under injected faults (outage-rate sweep).

The paper assumes its replication precondition away (§3.1: "a QoS aware
replication manager is deployed to ensure updates ... within a pre-defined
time frame") and never asks what happens when sites fail.  This extension
injects deterministic faults — site outages, skipped/slipped syncs — into
the TPC-H stream and sweeps the outage rate, comparing approaches under
two execution policies:

* **retry** — the fault-tolerant runtime: retry with backoff, failover of
  lost legs onto replicas, availability-aware planning for IVQP;
* **none** — a brittle baseline (no retries, no failover) whose queries
  die with their sites.

The claim under test: IVQP with the fault-tolerant runtime degrades
gracefully (IV declines with the outage rate, no query is lost while a
replica exists), whereas the no-retry baseline loses whole queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.value import DiscountRates
from repro.experiments.config import TpchSetup, sync_interval_for_ratio
from repro.experiments.runner import APPROACHES, _build, reissue_stream
from repro.federation.executor import ExecutionPolicy
from repro.federation.faults import FaultPlan
from repro.reporting.tables import ResultTable
from repro.workload.arrival import poisson_arrivals
from repro.workload.query import DSSQuery, Workload

__all__ = ["FaultSweepConfig", "run_fault_sweep"]

#: The resilient execution policy used by the sweep's "retry" rows.
RETRY_POLICY = ExecutionPolicy(max_retries=3, retry_backoff=0.5, failover=True)

#: The brittle baseline: first failure kills the query.
NO_RETRY_POLICY = ExecutionPolicy(max_retries=0, retry_backoff=0.0, failover=False)


@dataclass
class FaultSweepConfig:
    """Parameters of the EXT3 sweep."""

    setup: TpchSetup = field(default_factory=TpchSetup)
    #: Outages per minute per site, mildest first (0.0 = fault-free).
    outage_rates: tuple[float, ...] = (0.0, 0.002, 0.005, 0.01)
    outage_mean_duration: float = 8.0
    sync_skip_prob: float = 0.05
    sync_delay_prob: float = 0.10
    sync_delay_mean: float = 2.0
    lambda_both: float = 0.05
    ratio_multiplier: float = 10.0  # Fq:Fs = 1:10
    approaches: tuple[str, ...] = ("ivqp", "federation", "warehouse")
    policies: tuple[str, ...] = ("retry", "none")
    mean_interarrival: float = 10.0
    rounds: int = 1
    arrival_seed: int = 3
    system_seed: int = 1
    fault_seed: int = 17
    #: How far the pre-scheduled fault timelines extend (minutes); must
    #: cover the whole run.
    fault_horizon: float = 4_000.0


def _policy(name: str) -> ExecutionPolicy:
    if name == "retry":
        return RETRY_POLICY
    if name == "none":
        return NO_RETRY_POLICY
    raise ValueError(f"unknown policy {name!r} (retry | none)")


def run_fault_sweep(config: FaultSweepConfig | None = None) -> ResultTable:
    """Sweep the outage rate and report realized IV and fault handling."""
    config = config or FaultSweepConfig()
    rates = DiscountRates.symmetric(config.lambda_both)
    interval = sync_interval_for_ratio(config.ratio_multiplier)
    queries = config.setup.queries()
    site_ids = sorted({spec.site for spec in config.setup.table_specs()})
    table = ResultTable(
        title="EXT3: graceful degradation under injected faults (TPC-H)",
        headers=[
            "outage_rate", "approach", "policy", "mean_iv",
            "failed", "degraded", "retries", "failovers",
            "syncs_skipped", "syncs_delayed",
        ],
    )
    for outage_rate in config.outage_rates:
        for approach in config.approaches:
            if approach not in APPROACHES:
                raise ValueError(f"unknown approach {approach!r}")
            for policy_name in config.policies:
                # A fresh plan per run keeps runs independent; identical
                # seeds guarantee identical fault timelines across cells.
                fault_plan = FaultPlan.generate(
                    seed=config.fault_seed,
                    horizon=config.fault_horizon,
                    site_ids=site_ids,
                    outage_rate=outage_rate,
                    outage_mean_duration=config.outage_mean_duration,
                    sync_skip_prob=config.sync_skip_prob,
                    sync_delay_prob=config.sync_delay_prob,
                    sync_delay_mean=config.sync_delay_mean,
                )
                system_config = config.setup.system_config(
                    approach=approach,
                    rates=rates,
                    sync_mean_interval=interval,
                    seed=config.system_seed,
                )
                system_config.fault_plan = fault_plan
                system_config.execution_policy = _policy(policy_name)
                system = _build(system_config, approach)
                stream = reissue_stream(queries, config.rounds)
                arrivals = poisson_arrivals(
                    config.mean_interarrival, len(stream),
                    seed=config.arrival_seed,
                )
                system.submit_workload(
                    Workload.from_queries(stream, arrivals=arrivals)
                )
                system.run()
                table.add(
                    outage_rate,
                    approach,
                    policy_name,
                    system.mean_information_value,
                    system.failed_count,
                    system.degraded_count,
                    system.total_retries,
                    system.total_failovers,
                    system.replication.syncs_skipped,
                    system.replication.syncs_delayed,
                )
    return table
