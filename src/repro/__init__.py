"""repro — Information Value-driven Near Real-Time Decision Support Systems.

A full reproduction of Yan, Li and Xu's ICDCS 2009 paper: the information
value model, IVQP plan selection (scatter-and-gather), GA-based multi-query
optimization, the hybrid federation substrate with synchronized replicas,
a discrete-event simulation kernel, a mini relational engine, TPC-H-shaped
and synthetic data/workloads, the Federation and Data Warehouse baselines,
and harnesses regenerating every figure of the paper's evaluation.

Quick start::

    from repro import quickstart_system
    system, queries = quickstart_system()
    for query in queries[:3]:
        system.submit(query, at=10.0 * query.query_id)
    system.run()
    for outcome in system.outcomes:
        print(outcome.describe())
"""

from repro._version import __version__
from repro.core import (
    AgingPolicy,
    DiscountRates,
    IVQPOptimizer,
    PlacementAdvisor,
    QueryPlan,
    information_value,
)
from repro.errors import ReproError
from repro.federation import (
    Catalog,
    CostModel,
    FederatedSystem,
    NetworkModel,
    SystemConfig,
    TableSpec,
    build_system,
)
from repro.mqo import GAConfig, WorkloadScheduler
from repro.workload import DSSQuery, Workload, tpch_queries

__all__ = [
    "AgingPolicy",
    "Catalog",
    "CostModel",
    "DSSQuery",
    "DiscountRates",
    "FederatedSystem",
    "GAConfig",
    "IVQPOptimizer",
    "NetworkModel",
    "PlacementAdvisor",
    "QueryPlan",
    "ReproError",
    "SystemConfig",
    "TableSpec",
    "Workload",
    "WorkloadScheduler",
    "__version__",
    "build_system",
    "information_value",
    "quickstart_system",
    "tpch_queries",
]


def quickstart_system(scale: float = 0.002, sync_mean_interval: float = 1.0):
    """A ready-to-run TPC-H federated DSS with the IVQP router.

    Returns ``(system, queries)``: a built
    :class:`~repro.federation.system.FederatedSystem` and the 22 TPC-H
    queries, so a first experiment is three lines of code.
    """
    from repro.baselines import ivqp_router
    from repro.experiments.config import TpchSetup

    setup = TpchSetup(scale=scale)
    config = setup.system_config(
        approach="ivqp",
        rates=DiscountRates(0.01, 0.01),
        sync_mean_interval=sync_mean_interval,
    )
    system = build_system(config, ivqp_router)
    return system, setup.queries()
