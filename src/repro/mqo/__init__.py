"""Multi-query optimization: conflict grouping, GA, workload scheduling."""

from repro.mqo.chromosome import (
    order_crossover,
    random_permutation,
    swap_mutation,
    validate_permutation,
)
from repro.mqo.conflict import ExecutionRange, conflict_groups, execution_ranges
from repro.mqo.evaluator import (
    Assignment,
    EvaluationResult,
    EvaluatorStats,
    WorkloadEvaluator,
)
from repro.mqo.ga import GAConfig, GAResult, GeneticAlgorithm
from repro.mqo.online import (
    OnlineConfig,
    OnlineDecision,
    OnlineMQOScheduler,
    OnlineStats,
    WindowRecord,
)
from repro.mqo.scheduler import ScheduleDecision, WorkloadScheduler
from repro.mqo.search_baselines import SearchResult, hill_climb, random_search

__all__ = [
    "Assignment",
    "EvaluationResult",
    "EvaluatorStats",
    "ExecutionRange",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "OnlineConfig",
    "OnlineDecision",
    "OnlineMQOScheduler",
    "OnlineStats",
    "ScheduleDecision",
    "WindowRecord",
    "SearchResult",
    "WorkloadEvaluator",
    "WorkloadScheduler",
    "conflict_groups",
    "hill_climb",
    "random_search",
    "execution_ranges",
    "order_crossover",
    "random_permutation",
    "swap_mutation",
    "validate_permutation",
]
