"""Hybrid federation substrate: catalog, sites, sync, cost model, executor."""

from repro.federation.catalog import (
    Catalog,
    FixedSyncSchedule,
    Replica,
    SharedSyncFeed,
    StreamSyncSchedule,
    SyncSchedule,
    TableDef,
)
from repro.federation.costmodel import (
    ComboCost,
    CostModel,
    CostParameters,
    StaticCostProvider,
)
from repro.federation.executor import ExecutionPolicy, PlanExecutor, QueryOutcome
from repro.federation.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    LinkDegradation,
)
from repro.federation.network import NetworkModel, SiteLink
from repro.federation.qos import (
    StalenessAudit,
    audit_staleness,
    schedules_for_staleness_bounds,
)
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.federation.sync import ReplicationManager, build_schedules
from repro.federation.system import (
    FederatedSystem,
    Router,
    SystemConfig,
    TableSpec,
    build_system,
)

__all__ = [
    "Catalog",
    "ComboCost",
    "CostModel",
    "CostParameters",
    "ExecutionPolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FederatedSystem",
    "FixedSyncSchedule",
    "LinkDegradation",
    "LOCAL_SITE_ID",
    "NetworkModel",
    "PlanExecutor",
    "QueryOutcome",
    "Replica",
    "ReplicationManager",
    "Router",
    "SharedSyncFeed",
    "Site",
    "SiteLink",
    "StalenessAudit",
    "StaticCostProvider",
    "StreamSyncSchedule",
    "SyncSchedule",
    "SystemConfig",
    "TableDef",
    "TableSpec",
    "audit_staleness",
    "build_schedules",
    "build_system",
    "schedules_for_staleness_bounds",
]
