"""Fleet telemetry tests: spools, the collector merge, cross-shard rules.

Covers the full shard-to-fleet path: D1-framed spool round-trips (with
strict torn-tail detection), the collector's stable global merge and
chrome-trace export, each cross-shard checker rule firing on constructed
bad input, and a small end-to-end sharded run that must be checker-clean,
bit-exact in its IV conservation, and — with telemetry off — identical
to the untraced sweep.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import SimulationError
from repro.obs.checker import TraceChecker
from repro.obs.fleet import (
    FLEET_PID_BASE,
    FleetCollector,
    ShardSpoolWriter,
    ShardTelemetry,
    read_spool,
)
from repro.core.value import DiscountRates
from repro.obs.ledger import completion_ledger
from repro.obs.live import LiveRegistry, TableSyncState
from repro.sim.trace import TraceRecord, Tracer


def ledger_detail(qid: int, submitted: float, completed: float) -> dict:
    entry = completion_ledger(
        f"q{qid}", qid, business_value=1.0,
        rates=DiscountRates(0.02, 0.02),
        submitted_at=submitted, begin=submitted, completed_at=completed,
        data_timestamp=submitted,
    )
    return entry.to_dict()


def shard_records(shard: int, qid: int, base: float) -> list[TraceRecord]:
    """A minimal checker-clean lifecycle for one query, tagged ``shard``."""
    detail = ledger_detail(qid, submitted=base, completed=base + 1.0)
    iv = detail["reported_iv"]
    records = [
        TraceRecord(base, "submit", f"q{qid}", {"qid": qid}),
        TraceRecord(base, "plan", f"q{qid}", {"qid": qid, "est_iv": 1.0}),
        TraceRecord(base, "exec.start", f"q{qid}", {"qid": qid, "begin": base}),
        TraceRecord(base + 1.0, "complete", f"q{qid}",
                    {"qid": qid, "iv": iv, "cl": 1.0, "sl": 1.0}),
        TraceRecord(base + 1.0, "ledger", f"q{qid}", detail),
    ]
    for record in records:
        record.detail["shard"] = shard
    return records


def telemetry_of(shard: int, qid: int, base: float) -> ShardTelemetry:
    records = shard_records(shard, qid, base)
    ledger = [r for r in records if r.kind == "ledger"][0].detail
    return ShardTelemetry(
        shard=shard,
        records=records,
        summary={
            "total_iv": ledger["reported_iv"],
            "dropped_events": 0,
        },
    )


class TestSpoolRoundTrip:
    def test_header_records_registry_summary_round_trip(self, tmp_path):
        path = str(tmp_path / "shard0.spool")
        tracer = Tracer(lambda: 0.0)
        registry = LiveRegistry()
        with ShardSpoolWriter(path, shard=3, meta={"schedule": "t"}) as spool:
            spool.attach(tracer)
            registry.attach(tracer)
            tracer.emit("submit", "q0", qid=0)
            tracer.emit("complete", "q0", qid=0, iv=0.5, cl=1.0, sl=0.0)
            spool.registry(registry)
            spool.summary(total_iv=0.5, dropped_events=tracer.dropped)

        telemetry = read_spool(path)
        assert telemetry.shard == 3
        assert telemetry.meta == {"schedule": "t"}
        assert [r.kind for r in telemetry.records] == ["submit", "complete"]
        # Every record comes back tagged with the spool's shard index.
        assert all(r.detail["shard"] == 3 for r in telemetry.records)
        assert telemetry.summary["total_iv"] == 0.5
        assert telemetry.dropped_events == 0
        assert telemetry.registry is not None
        assert telemetry.registry.counters["query.submitted"] == 1.0

    def test_negative_shard_index_rejected(self, tmp_path):
        with pytest.raises(SimulationError):
            ShardSpoolWriter(str(tmp_path / "bad.spool"), shard=-1)

    def test_torn_tail_raises_instead_of_half_parsing(self, tmp_path):
        path = str(tmp_path / "torn.spool")
        with ShardSpoolWriter(path, shard=0) as spool:
            for record in shard_records(0, qid=0, base=1.0):
                spool.record(record)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        with pytest.raises(Exception):
            read_spool(path)

    def test_spool_without_header_rejected(self, tmp_path):
        from repro.durable.journal import JournalWriter

        path = str(tmp_path / "headerless.spool")
        writer = JournalWriter(path, fsync_every=1)
        writer.append({"kind": "fleet.trace", "record": {
            "time": 0.0, "kind": "submit", "subject": "q0", "detail": {},
        }})
        writer.close()
        with pytest.raises(SimulationError, match="fleet.header"):
            read_spool(path)


class TestFleetCollector:
    def test_merge_is_globally_time_ordered_and_tie_stable(self):
        # Shard 1's records interleave with shard 0's; equal timestamps
        # must keep shard-index order.
        a = telemetry_of(0, qid=0, base=1.0)
        b = telemetry_of(1, qid=1, base=1.0)
        collector = FleetCollector([b, a])  # construction order irrelevant
        merged = collector.records
        times = [record.time for record in merged]
        assert times == sorted(times)
        first_at_1 = [r.detail["shard"] for r in merged if r.time == 1.0]
        assert first_at_1 == sorted(first_at_1)

    def test_duplicate_shard_indices_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            FleetCollector([telemetry_of(0, 0, 1.0), telemetry_of(0, 1, 2.0)])

    def test_empty_fleet_rejected(self):
        with pytest.raises(SimulationError):
            FleetCollector([])

    def test_snapshot_totals_are_left_to_right_sums(self):
        collector = FleetCollector(
            [telemetry_of(0, 0, 1.0), telemetry_of(1, 1, 2.0)]
        )
        snapshot = collector.snapshot()
        fleet = snapshot["fleet"]
        panels = snapshot["shards"]
        assert fleet["ledger_iv"] == panels[0]["ledger_iv"] + panels[1]["ledger_iv"]
        assert fleet["total_iv"] == panels[0]["ledger_iv"] + panels[1]["ledger_iv"]
        assert fleet["records"] == sum(p["records"] for p in panels)

    def test_chrome_trace_uses_one_pid_per_shard_and_parses_ledgers(self):
        # The exporter's LEDGER handling goes through the *strict*
        # IVLedgerEntry.from_dict — the shard tag must not leak into it.
        collector = FleetCollector(
            [telemetry_of(0, 0, 1.0), telemetry_of(1, 1, 2.0)]
        )
        trace = collector.chrome_trace()
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert pids == {FLEET_PID_BASE, FLEET_PID_BASE + 1}
        payload = json.dumps(trace)  # must be JSON-serializable end to end
        assert "shard 1" in payload

    def test_clean_constructed_fleet_passes_check(self):
        collector = FleetCollector(
            [telemetry_of(0, 0, 1.0), telemetry_of(1, 1, 2.0)]
        )
        assert collector.check() == []


def rules_of(violations) -> set[str]:
    return {violation.rule for violation in violations}


class TestCrossShardRules:
    def checker(self) -> TraceChecker:
        return TraceChecker()

    def test_malformed_shard_tag_flagged(self):
        collector = FleetCollector([telemetry_of(0, 0, 1.0)])
        records = list(collector.records)
        bad = TraceRecord(5.0, "submit", "q9", {"qid": 9, "shard": "zero"})
        violations = self.checker().check_fleet(
            records + [bad], collector.snapshot()
        )
        assert "shard-tag" in rules_of(violations)

    def test_query_owned_by_two_shards_flagged(self):
        a = telemetry_of(0, qid=7, base=1.0)
        b = telemetry_of(1, qid=7, base=2.0)  # same qid on both shards
        collector = FleetCollector([a, b])
        violations = self.checker().check_fleet(
            collector.records, collector.snapshot()
        )
        assert "shard-ownership" in rules_of(violations)

    def test_missing_dropped_counter_flagged(self):
        collector = FleetCollector(
            [telemetry_of(0, 0, 1.0), telemetry_of(1, 1, 2.0)]
        )
        snapshot = collector.snapshot()
        snapshot["shards"] = snapshot["shards"][:1]  # drop shard 1's panel
        violations = self.checker().check_fleet(collector.records, snapshot)
        assert "fleet-dropped-surfaced" in rules_of(violations)

    def test_tampered_iv_sum_flagged_bit_exactly(self):
        collector = FleetCollector(
            [telemetry_of(0, 0, 1.0), telemetry_of(1, 1, 2.0)]
        )
        snapshot = collector.snapshot()
        # One ulp of drift must be enough to fire the conservation rule.
        snapshot["fleet"]["ledger_iv"] += 1e-12
        violations = self.checker().check_fleet(collector.records, snapshot)
        assert "fleet-iv-conservation" in rules_of(violations)

    def test_tampered_cl_sum_flagged(self):
        collector = FleetCollector(
            [telemetry_of(0, 0, 1.0), telemetry_of(1, 1, 2.0)]
        )
        snapshot = collector.snapshot()
        snapshot["shards"][0]["ledger_cl"] *= 2.0
        violations = self.checker().check_fleet(collector.records, snapshot)
        assert "fleet-cl-conservation" in rules_of(violations)


class TestShardedSweepEndToEnd:
    """The real EXT5 path: run_schedule with telemetry on, serial shards."""

    def run_traced(self, on_fleet=None):
        from repro.experiments.scale import ScaleConfig, ScheduleSpec, run_schedule

        spec = ScheduleSpec("steady", queries=160, arrival="poisson",
                            interarrival=1.0)
        config = ScaleConfig(
            shards=2, executor="serial", schedules=(spec,),
            trace=True, fleet_metrics=True,
        )
        return run_schedule(config, spec, on_fleet=on_fleet)

    def test_traced_run_is_checker_clean_and_bit_exact(self):
        captured = {}

        def on_fleet(name, collector, violations):
            captured["collector"] = collector
            captured["violations"] = violations

        metrics = self.run_traced(on_fleet)
        assert captured["violations"] == []
        fleet = metrics["fleet"]
        assert fleet["violations"] == 0
        assert fleet["dropped_events"] == 0
        assert fleet["ledger_entries"] == 160
        # Conservation, bit-for-bit: the merged ledger's fleet IV equals
        # the scheduler's online total, which equals the shard-order sum.
        shard_ivs = [
            value for key, value in metrics["total_iv"].items()
            if key != "online"
        ]
        total = 0.0
        for value in shard_ivs:
            total += value
        assert metrics["total_iv"]["online"] == total
        assert fleet["total_iv"] == metrics["total_iv"]["online"]
        # The merged registry agrees with the scheduler's own counts.
        registry = captured["collector"].registry
        assert registry.counters["ledger.entries"] == 160.0
        assert registry.counters["query.completed"] == 160.0

    def test_telemetry_changes_no_scheduling_decision(self):
        from repro.experiments.scale import ScaleConfig, ScheduleSpec, run_schedule

        spec = ScheduleSpec("steady", queries=160, arrival="poisson",
                            interarrival=1.0)
        base = ScaleConfig(shards=2, executor="serial", schedules=(spec,))
        plain = run_schedule(base, spec)
        traced = self.run_traced()
        for key in ("queries", "dispatched", "shed", "deferred", "windows",
                    "ga_runs", "total_iv"):
            assert traced[key] == plain[key], key
        assert "fleet" not in plain

    def test_explicit_spool_dir_keeps_readable_spools(self, tmp_path):
        # A caller-provided spool dir survives the run (for inspection);
        # only the auto-created temp dir is cleaned up.
        from repro.experiments.scale import ScaleConfig, ScheduleSpec, run_schedule

        spool_dir = str(tmp_path / "spools")
        spec = ScheduleSpec("steady", queries=40, arrival="poisson",
                            interarrival=1.0)
        config = ScaleConfig(
            shards=2, executor="serial", schedules=(spec,),
            trace=True, spool_dir=spool_dir,
        )
        run_schedule(config, spec)
        spools = sorted(os.listdir(spool_dir))
        assert spools == ["steady-shard0.spool", "steady-shard1.spool"]
        telemetry = read_spool(os.path.join(spool_dir, spools[0]))
        assert telemetry.shard == 0
        assert telemetry.records


class TestFleetDashboards:
    def snapshot(self) -> dict:
        collector = FleetCollector(
            [telemetry_of(0, 0, 1.0), telemetry_of(1, 1, 2.0)]
        )
        return collector.snapshot()

    def test_terminal_dashboard_renders_panels_and_totals(self):
        from repro.reporting.dashboard import render_fleet_dashboard

        text = render_fleet_dashboard(self.snapshot(), title="unit")
        assert "fleet dashboard: unit (2 shards)" in text
        assert "shard panels" in text
        assert "fleet totals" in text
        assert "total_iv" in text

    def test_html_report_is_self_contained(self):
        from repro.reporting.dashboard import fleet_report_html

        html = fleet_report_html(self.snapshot(), title="Fleet unit")
        assert html.startswith("<!doctype html>")
        assert "Fleet unit" in html
        assert "shard" in html


class TestPerTableGauges:
    def test_table_sync_state_gauges(self):
        state = TableSyncState(half_life=10.0)
        state.apply(now=5.0, at=4.0, gap=1.0)
        state.publish(scheduled=7.0)
        gauges = state.gauges(now=8.0)
        assert gauges["sync.table.staleness"] == pytest.approx(4.0)  # 8 - 4
        assert gauges["sync.table.divergence"] == pytest.approx(3.0)  # 7 - 4
        assert gauges["sync.table.syncs"] == 1
        assert gauges["sync.table.last_gap"] == pytest.approx(1.0)

    def test_registry_from_system_exports_table_and_site_gauges(self):
        from repro.obs.metrics import registry_from_system
        from tests.test_obs_checker import traced_system

        system = traced_system(num_queries=3)
        gauges = registry_from_system(system).snapshot()["gauges"]
        table_keys = [k for k in gauges if k.startswith("sync.table.staleness.")]
        assert table_keys, sorted(gauges)
        site_keys = [k for k in gauges if k.startswith("site.available.")]
        assert site_keys, sorted(gauges)
