"""EXT4 — online vs. batch MQO on a sustained Poisson query stream.

The paper's MQO (Section 3.2) holds the whole workload in hand before it
optimizes; its premise — near real-time BI — means queries really arrive
over time.  This extension replays the same sustained Poisson stream
through three disciplines on the contended Figure-9 infrastructure:

* **fifo** — arrival order, individually-optimal plans (the paper's
  "without MQO" baseline);
* **batch** — the clairvoyant upper reference: the batch scheduler sees
  the entire stream up front (an oracle no live system has);
* **online** — the rolling-window scheduler of :mod:`repro.mqo.online`:
  bounded admission queue, IV-floor shedding, windowed GA re-optimization
  warm-started across windows.

The claim under test: online MQO recovers (most of) the batch ordering
gain over FIFO *without* clairvoyance, at a re-optimization cost measured
here (and tracked point-in-time by ``make bench-online`` →
``BENCH_online.json``).  ``total_iv`` counts shed queries as zero — the
stream is the stream; shedding has to pay for itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.experiments.fig9 import Fig9Config, build_mqo_scheduler
from repro.experiments.runner import reissue_stream
from repro.mqo.evaluator import EvaluationResult
from repro.mqo.ga import GAConfig
from repro.mqo.online import OnlineConfig, OnlineMQOScheduler, OnlineStats
from repro.reporting.tables import ResultTable
from repro.workload.arrival import poisson_arrivals
from repro.workload.generator import random_queries
from repro.workload.query import Workload

__all__ = ["StreamMqoConfig", "run_stream_mqo"]


@dataclass
class StreamMqoConfig:
    """Parameters of the EXT4 comparison."""

    #: The contended synthetic infrastructure (fig9's calibration).
    base: Fig9Config = field(default_factory=Fig9Config)
    #: Distinct query templates drawn from the synthetic instance.
    query_count: int = 10
    #: Passes over the templates forming the stream.
    rounds: int = 2
    #: Mean interarrival sweep (minutes), heaviest load first.
    interarrivals: tuple[float, ...] = (0.5, 1.0, 2.0)
    online: OnlineConfig = field(
        default_factory=lambda: OnlineConfig(
            window=4.0, max_pending=16, iv_floor=0.02, eager_start=True
        )
    )
    #: Smaller GA per window than the batch reference — re-optimization
    #: must fit inside the stream, and warm starts make up the difference.
    online_ga: GAConfig = field(
        default_factory=lambda: GAConfig(generations=20)
    )
    arrival_seed: int = 7
    workload_seed: int = 23

    def __post_init__(self) -> None:
        if self.query_count < 1 or self.rounds < 1:
            raise ConfigError("query_count and rounds must be >= 1")
        if not self.interarrivals:
            raise ConfigError("interarrivals must not be empty")


def _p95_latency(result: EvaluationResult) -> float:
    """95th-percentile realized CL (nearest-rank) over the assignments."""
    latencies = sorted(a.computational_latency for a in result.assignments)
    if not latencies:
        return 0.0
    rank = max(0, int(round(0.95 * len(latencies))) - 1)
    return latencies[rank]


def run_stream_mqo(config: StreamMqoConfig | None = None) -> ResultTable:
    """Sweep stream pressure; compare fifo / online / batch disciplines."""
    config = config or StreamMqoConfig()
    scheduler, setup = build_mqo_scheduler(config.base)
    templates = random_queries(
        setup.instance, count=config.query_count, seed=config.workload_seed
    )
    stream = reissue_stream(templates, rounds=config.rounds)
    table = ResultTable(
        title="EXT4: online vs batch MQO on a sustained Poisson stream",
        headers=[
            "interarrival", "approach", "total_iv", "mean_iv",
            "p95_cl", "max_wait", "shed", "windows", "ga_runs",
        ],
    )
    online_totals = OnlineStats()
    for interarrival in config.interarrivals:
        arrivals = poisson_arrivals(
            interarrival, len(stream), seed=config.arrival_seed
        )
        workload = Workload.from_queries(stream, arrivals=arrivals)

        fifo = scheduler.fifo(workload)
        _add_row(table, interarrival, "fifo", fifo, len(stream))

        online = OnlineMQOScheduler(
            scheduler.catalog,
            scheduler.cost_provider,
            scheduler.default_rates,
            ga_config=config.online_ga,
            seed=config.base.seed,
            config=config.online,
        )
        decision = online.run(workload)
        _add_row(
            table, interarrival, "online", decision.result, len(stream),
            shed=decision.stats.shed,
            windows=decision.stats.windows,
            ga_runs=decision.stats.ga_runs,
        )
        _merge_stats(online_totals, decision.stats)

        batch = scheduler.schedule(workload)
        _add_row(table, interarrival, "batch", batch.result, len(stream))
    table.add_footnote(
        "total_iv spans the whole stream (shed queries count 0); "
        "batch is a clairvoyant reference seeing all arrivals up front"
    )
    table.add_footnote(
        "online totals: "
        f"admitted={online_totals.admitted} shed={online_totals.shed} "
        f"requeued={online_totals.requeued} "
        f"windows={online_totals.windows} ga_runs={online_totals.ga_runs} "
        f"warm_seeds={online_totals.warm_seeds}; wall-clock re-optimization "
        "overhead is tracked by `make bench-online` (BENCH_online.json)"
    )
    return table


def _add_row(
    table: ResultTable,
    interarrival: float,
    approach: str,
    result: EvaluationResult,
    stream_size: int,
    shed: int = 0,
    windows: int = 0,
    ga_runs: int = 0,
) -> None:
    total = result.total_information_value
    table.add(
        interarrival,
        approach,
        total,
        total / stream_size,  # shed queries count as zero
        _p95_latency(result),
        result.max_wait,
        shed,
        windows,
        ga_runs,
    )


def _merge_stats(totals: OnlineStats, stats: OnlineStats) -> None:
    totals.submitted += stats.submitted
    totals.admitted += stats.admitted
    totals.shed += stats.shed
    totals.deferred += stats.deferred
    totals.requeued += stats.requeued
    totals.dispatched += stats.dispatched
    totals.windows += stats.windows
    totals.ga_runs += stats.ga_runs
    totals.warm_seeds += stats.warm_seeds
    totals.reopt_seconds += stats.reopt_seconds
