"""Machine-readable export of result tables (CSV and JSON).

The CLI's ``--format``/``--output`` options use these so experiment results
can feed plotting scripts or regression dashboards directly.
"""

from __future__ import annotations

import csv
import io
import json

from repro.errors import ConfigError
from repro.reporting.tables import ResultTable

__all__ = ["to_csv", "to_json", "render"]


def to_csv(table: ResultTable) -> str:
    """The table as CSV text (header row included)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.headers)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def to_json(table: ResultTable, indent: int | None = 2) -> str:
    """The table as a JSON document: title plus a list of row objects."""
    payload = {
        "title": table.title,
        "rows": [dict(zip(table.headers, row)) for row in table.rows],
    }
    return json.dumps(payload, indent=indent, default=str)


def render(table: ResultTable, fmt: str = "text") -> str:
    """Render a table in one of ``text``, ``csv`` or ``json``."""
    if fmt == "text":
        return table.render()
    if fmt == "csv":
        return to_csv(table)
    if fmt == "json":
        return to_json(table)
    raise ConfigError(f"unknown output format {fmt!r} (text | csv | json)")
