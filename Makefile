# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-mqo experiments check examples all

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-mqo:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_mqo_perf.py benchmarks/test_fig9_mqo.py --benchmark-only
	PYTHONPATH=src $(PYTHON) benchmarks/mqo_snapshot.py BENCH_mqo.json

experiments:
	$(PYTHON) -m repro all

check:
	$(PYTHON) -m repro check

examples:
	@for example in examples/*.py; do \
		echo "== $$example =="; \
		$(PYTHON) $$example || exit 1; \
	done

all: test bench check
