"""Statistics collection for simulation runs.

:class:`Monitor` accumulates sample statistics online (Welford's algorithm);
:class:`TimeWeightedMonitor` integrates a piecewise-constant signal such as a
queue length over simulated time.  Both are what the experiment harness uses
to report mean information values and latencies.

Memory semantics: a monitor's aggregates (count, mean, variance, extrema)
are always O(1).  Raw-sample retention is **opt-in** (``keep_values=True``)
because a long run observing every query would otherwise grow without
bound; retention can additionally be capped (``cap=N``), in which case the
buffer is thinned deterministically — every second retained sample is
dropped and the sampling stride doubles — so it holds an evenly-spaced
subsample of at most ``N`` observations forever.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError

__all__ = ["Monitor", "TimeWeightedMonitor", "Tally"]


class Monitor:
    """Online mean / variance / extrema of observed samples.

    Parameters
    ----------
    name:
        Label used in reports and ``repr``.
    keep_values:
        Whether to retain raw samples (needed by :meth:`percentile`).
        Off by default: retention turns a million-observation run into a
        million-float list.
    cap:
        With ``keep_values=True``, bound the buffer to at most ``cap``
        retained samples via deterministic stride doubling.  ``None``
        retains everything.
    """

    def __init__(
        self,
        name: str = "",
        keep_values: bool = False,
        cap: int | None = None,
    ) -> None:
        if cap is not None and cap < 2:
            raise SimulationError(f"monitor cap must be >= 2 or None, got {cap}")
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._values: list[float] = []
        self.keep_values = keep_values
        self.cap = cap
        #: Only every ``stride``-th observation is retained (grows under a cap).
        self._stride = 1

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if self.keep_values and (self.count - 1) % self._stride == 0:
            self._values.append(value)
            if self.cap is not None and len(self._values) > self.cap:
                self._thin()

    def _thin(self) -> None:
        # Keep every other retained sample (observation indices that are
        # multiples of the doubled stride), halving the buffer in place.
        del self._values[1::2]
        self._stride *= 2

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._mean * self.count

    @property
    def values(self) -> list[float]:
        """The retained samples (copies), if retention is enabled.

        Under a ``cap`` this is an evenly-spaced subsample, not every
        observation.
        """
        return list(self._values)

    @property
    def retained(self) -> int:
        """How many raw samples are currently buffered."""
        return len(self._values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of retained samples.

        Exact when every sample is retained; an estimate over the
        evenly-spaced subsample once a ``cap`` has forced thinning.
        """
        if not self.keep_values:
            raise SimulationError("percentile needs keep_values=True")
        if not self._values:
            raise SimulationError("percentile of an empty monitor")
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile q must be in [0, 100], got {q}")
        data = sorted(self._values)
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        return data[low] * (1 - frac) + data[high] * frac

    def merge(self, other: "Monitor") -> None:
        """Fold another monitor's samples into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self._values = list(other._values) if self.keep_values else []
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        if self.keep_values and other.keep_values:
            self._values.extend(other._values)
            if self.cap is not None:
                while len(self._values) > self.cap:
                    self._thin()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Monitor({self.name!r}, n={self.count}, mean={self.mean:.4f})"


class TimeWeightedMonitor:
    """Time-integral of a piecewise-constant signal (e.g. queue length)."""

    def __init__(self, sim_now, initial: float = 0.0, name: str = "") -> None:
        """``sim_now`` is a zero-argument callable returning current time."""
        self.name = name
        self._now = sim_now
        self._level = float(initial)
        self._last_change = self._now()
        self._area = 0.0
        self._start = self._last_change
        self.maximum = float(initial)

    @property
    def level(self) -> float:
        """Current signal level."""
        return self._level

    def set(self, level: float) -> None:
        """Change the signal level at the current simulation time."""
        now = self._now()
        self._area += self._level * (now - self._last_change)
        self._last_change = now
        self._level = float(level)
        self.maximum = max(self.maximum, self._level)

    def add(self, delta: float) -> None:
        """Shift the signal level by ``delta``."""
        self.set(self._level + delta)

    def time_average(self) -> float:
        """Time-weighted mean of the signal since creation."""
        now = self._now()
        elapsed = now - self._start
        if elapsed <= 0:
            return self._level
        area = self._area + self._level * (now - self._last_change)
        return area / elapsed


class Tally:
    """A named bag of counters for discrete outcomes."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def hit(self, key: str, times: int = 1) -> None:
        """Increment ``key`` by ``times``."""
        self._counts[key] = self._counts.get(key, 0) + times

    def count(self, key: str) -> int:
        """Current count for ``key`` (0 if never hit)."""
        return self._counts.get(key, 0)

    def as_dict(self) -> dict[str, int]:
        """A copy of all counters."""
        return dict(self._counts)

    @property
    def total(self) -> int:
        """Sum over all keys."""
        return sum(self._counts.values())
