"""Append-only journal: length-prefixed, checksummed JSONL records.

The durable layer's storage discipline follows duro's event-sourced
ledger: every record the scheduler acts on — arrivals, popped events,
decisions, window passes, IV ledger entries, session snapshots — is
appended to one file and **never rewritten**.  Each record is framed as::

    D1 <length> <crc32-hex> <payload-json>\\n

where ``length`` is the byte length of the UTF-8 payload and the CRC32
covers exactly those bytes.  The frame makes torn writes *detectable at
the byte where they happened*: a crash mid-record leaves a tail whose
length or checksum cannot validate, and :func:`scan_journal` reports the
offset of the first bad byte so recovery can truncate to the last valid
record instead of silently loading half a decision.

Floats round-trip losslessly (``json`` encodes them via ``repr``), so a
replayed journal reproduces the exact IVs the live run reported —
bit-equal, the same contract the ledger and trace layers already hold.

``fsync_every`` bounds the window of records a power loss can take (1 =
every record reaches the platter before the write returns).
``crash_after_bytes`` is the fault injector behind the crash/resume
equivalence harness: the writer stops mid-record at an arbitrary byte
offset, exactly like a torn write, and raises :class:`InjectedCrash`.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.errors import DurabilityError, ReproError

__all__ = [
    "SCHEMA_VERSION",
    "InjectedCrash",
    "JournalWriter",
    "encode_record",
    "scan_journal",
    "read_journal",
]

#: Journal schema version, written into the mandatory header record.
#: Bump only with a migration path — the golden journal fixture pins it.
SCHEMA_VERSION = 1

_MARKER = b"D1"


class InjectedCrash(ReproError):
    """The writer hit its configured crash point (fault injection)."""


def encode_record(payload: dict) -> bytes:
    """Frame one JSON-safe payload as a journal record."""
    body = json.dumps(
        payload, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%s %d %08x %s\n" % (_MARKER, len(body), crc, body)


class JournalWriter:
    """Appends framed records to a journal file, fsync'd on a cadence.

    Parameters
    ----------
    path:
        Journal file (created if missing).
    fsync_every:
        Force records to stable storage every N appends (1 = each one).
        Data is always flushed to the OS per append, so a *process* crash
        loses nothing; the cadence only bounds power-loss exposure.
    crash_after_bytes:
        Fault injection: once the file would exceed this many bytes, the
        writer emits only the bytes up to the limit — a torn write — and
        raises :class:`InjectedCrash`.  ``None`` disables injection.
    truncate_to:
        Drop an invalid tail before appending (recovery passes the valid
        byte count from :func:`scan_journal`).
    """

    def __init__(
        self,
        path: str | Path,
        fsync_every: int = 1,
        crash_after_bytes: int | None = None,
        truncate_to: int | None = None,
    ) -> None:
        if fsync_every < 1:
            raise DurabilityError(
                f"fsync_every must be >= 1, got {fsync_every}"
            )
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.crash_after_bytes = crash_after_bytes
        self._crashed = False
        self._closed = False
        self._appends = 0
        if truncate_to is not None and self.path.exists():
            with open(self.path, "rb+") as handle:
                handle.truncate(truncate_to)
        self._file = open(self.path, "ab")
        self.bytes_written = self._file.tell()

    def append(self, payload: dict) -> int:
        """Append one record; returns its byte offset in the file."""
        if self._crashed:
            raise InjectedCrash(
                f"journal writer already crashed at byte "
                f"{self.crash_after_bytes}"
            )
        if self._closed:
            raise DurabilityError("journal writer is closed")
        record = encode_record(payload)
        offset = self.bytes_written
        if (
            self.crash_after_bytes is not None
            and offset + len(record) > self.crash_after_bytes
        ):
            torn = record[: max(0, self.crash_after_bytes - offset)]
            self._file.write(torn)
            self._file.flush()
            self.bytes_written += len(torn)
            self._crashed = True
            self._file.close()
            raise InjectedCrash(
                f"injected crash at byte {self.crash_after_bytes} "
                f"(mid-record at offset {offset})"
            )
        self._file.write(record)
        self._file.flush()
        self.bytes_written += len(record)
        self._appends += 1
        if self._appends % self.fsync_every == 0:
            os.fsync(self._file.fileno())
        return offset

    @property
    def closed(self) -> bool:
        """Whether this writer can no longer accept appends."""
        return self._closed or self._crashed

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        if not self._crashed and not self._closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush, fsync and close the journal."""
        if self._crashed or self._closed:
            return
        self.sync()
        self._file.close()
        self._closed = True


def scan_journal(
    path: str | Path,
) -> tuple[list[tuple[dict, int]], int, DurabilityError | None]:
    """Tolerantly scan a journal; stop at the first invalid byte.

    Returns ``(records, valid_bytes, tail_error)`` where ``records`` is a
    list of ``(payload, offset)`` pairs for every record that validates,
    ``valid_bytes`` is the offset of the first byte that does not (== the
    file size for a clean journal), and ``tail_error`` is the
    :class:`~repro.errors.DurabilityError` describing the bad tail
    (``None`` when the whole file validates).  Recovery truncates to
    ``valid_bytes`` and resumes from the last valid record — a torn or
    corrupted tail is *expected* after a crash, never an exception here.
    """
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise DurabilityError(f"cannot read journal {path}: {exc}")
    records: list[tuple[dict, int]] = []
    offset = 0
    size = len(data)
    while offset < size:
        error = _parse_at(data, offset)
        if isinstance(error, DurabilityError):
            return records, offset, error
        payload, next_offset = error
        records.append((payload, offset))
        offset = next_offset
    return records, offset, None


def _parse_at(
    data: bytes, offset: int
) -> tuple[dict, int] | DurabilityError:
    """Parse one record at ``offset``; a frame violation returns the error."""
    end = data.find(b"\n", offset)
    if end == -1:
        return DurabilityError(
            f"truncated record at offset {offset} "
            f"({len(data) - offset} trailing bytes, no terminator)",
            offset=offset,
        )
    line = data[offset:end]
    parts = line.split(b" ", 3)
    if len(parts) != 4 or parts[0] != _MARKER:
        return DurabilityError(
            f"bad record marker at offset {offset}", offset=offset
        )
    try:
        length = int(parts[1])
    except ValueError:
        return DurabilityError(
            f"bad length field at offset {offset}", offset=offset
        )
    body = parts[3]
    if len(body) != length:
        return DurabilityError(
            f"record at offset {offset} declares {length} payload bytes "
            f"but carries {len(body)}",
            offset=offset,
        )
    try:
        declared_crc = int(parts[2], 16)
    except ValueError:
        return DurabilityError(
            f"bad checksum field at offset {offset}", offset=offset
        )
    actual_crc = zlib.crc32(body) & 0xFFFFFFFF
    if actual_crc != declared_crc:
        return DurabilityError(
            f"checksum mismatch at offset {offset} "
            f"(declared {declared_crc:08x}, computed {actual_crc:08x})",
            offset=offset,
        )
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        return DurabilityError(
            f"unparseable payload at offset {offset}: {exc}", offset=offset
        )
    if not isinstance(payload, dict) or "kind" not in payload:
        return DurabilityError(
            f"record at offset {offset} is not a kinded object",
            offset=offset,
        )
    return payload, end + 1


def read_journal(path: str | Path) -> list[tuple[dict, int]]:
    """Strictly read a journal: any invalid byte raises.

    The strict counterpart of :func:`scan_journal`, for callers that
    expect a *clean* journal (the golden-fixture regression, audits) —
    the raised :class:`~repro.errors.DurabilityError` names the offset of
    the first bad record.
    """
    records, _valid_bytes, tail_error = scan_journal(path)
    if tail_error is not None:
        raise tail_error
    return records
