"""The Federation baseline (Section 4.1).

"In the federation approach, all tables are stored at the remote servers
and no replicas are present at the DSS server, and all queries are
decomposed and executed at remote servers."  The router therefore always
produces the all-base, immediate plan, regardless of any replicas that may
exist in the catalog.
"""

from __future__ import annotations

import typing

from repro.core.enumeration import CostProvider, make_plan
from repro.core.plan import QueryPlan
from repro.core.value import DiscountRates
from repro.federation.catalog import Catalog

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery

__all__ = ["FederationRouter", "federation_router"]


class FederationRouter:
    """Always execute immediately against the remote base tables."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
    ) -> None:
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates

    def choose_plan(self, query: "DSSQuery", submitted_at: float) -> QueryPlan:
        """All tables remote, start now."""
        rates = query.rates if query.rates is not None else self.default_rates
        return make_plan(
            query,
            self.catalog,
            self.cost_provider,
            rates,
            submitted_at=submitted_at,
            start_time=submitted_at,
            remote_tables=frozenset(query.tables),
        )


def federation_router(catalog, cost_model, rates) -> FederationRouter:
    """Router factory for :func:`repro.federation.system.build_system`."""
    return FederationRouter(catalog, cost_model, rates)
