"""The public API surface: imports, __all__ consistency, quickstart."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.core",
    "repro.data",
    "repro.engine",
    "repro.experiments",
    "repro.federation",
    "repro.mqo",
    "repro.reporting",
    "repro.sim",
    "repro.workload",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_exports_resolve(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} needs a module docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


def test_version_is_exposed():
    import repro

    assert repro.__version__.count(".") == 2


def test_quickstart_system_runs():
    from repro import quickstart_system

    system, queries = quickstart_system(scale=0.0005)
    assert len(queries) == 22
    system.submit(queries[0], at=5.0)
    system.run()
    assert len(system.outcomes) == 1
    assert 0.0 < system.outcomes[0].information_value <= 1.0


def test_top_level_error_hierarchy():
    import repro
    from repro.errors import (
        CatalogError,
        ConfigError,
        EngineError,
        OptimizationError,
        PlanError,
        ProcessError,
        SchedulingError,
        SimulationError,
        WorkloadError,
    )

    for error in (
        CatalogError, ConfigError, EngineError, OptimizationError,
        PlanError, ProcessError, SchedulingError, SimulationError,
        WorkloadError,
    ):
        assert issubclass(error, repro.ReproError)


def test_public_docstrings_on_core_entry_points():
    from repro import (
        DSSQuery,
        DiscountRates,
        FederatedSystem,
        IVQPOptimizer,
        WorkloadScheduler,
        build_system,
        information_value,
    )

    for obj in (
        DSSQuery, DiscountRates, FederatedSystem, IVQPOptimizer,
        WorkloadScheduler, build_system, information_value,
    ):
        assert obj.__doc__, f"{obj!r} is missing a docstring"
