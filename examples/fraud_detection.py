"""Insurance fraud detection — a domain scenario from the paper's intro.

An insurer runs claims processing at three regional branches; the fraud
team at headquarters queries across branches.  Fraud reports are extremely
sensitive to *data staleness* (a claim filed minutes ago must be visible),
so their synchronization discount λ_SL is much larger than λ_CL, while the
monthly exposure summary tolerates stale data but is wanted fast.

The example shows how those preferences flip the IVQP routing decision per
report: the fraud screen reads remote base tables (or waits for a sync),
the exposure summary reads local replicas — exactly the Figure 1 trade-off.

Run:  python examples/fraud_detection.py
"""

from __future__ import annotations

from repro import DSSQuery, DiscountRates, SystemConfig, TableSpec, build_system
from repro.baselines import ivqp_router
from repro.federation import CostParameters

#: Claims tables per branch, plus shared reference tables.
TABLES = [
    TableSpec("claims_east", site=0, row_count=40_000, row_bytes=96),
    TableSpec("claims_central", site=1, row_count=55_000, row_bytes=96),
    TableSpec("claims_west", site=2, row_count=35_000, row_bytes=96),
    TableSpec("policies", site=1, row_count=120_000, row_bytes=80),
    TableSpec("customers", site=0, row_count=90_000, row_bytes=64),
    TableSpec("adjusters", site=2, row_count=800, row_bytes=48),
]

#: HQ replicates the big reference tables and one busy claims table.
REPLICATED = ["policies", "customers", "claims_central"]


def build_reports() -> list[DSSQuery]:
    """The fraud team's report portfolio with per-report preferences."""
    fraud_rates = DiscountRates(computational=0.02, synchronization=0.20)
    summary_rates = DiscountRates(computational=0.15, synchronization=0.01)
    return [
        DSSQuery(
            query_id=1,
            name="fraud-screen-east",
            tables=("claims_east", "policies", "customers"),
            business_value=10.0,  # a missed fraud costs real money
            rates=fraud_rates,
        ),
        DSSQuery(
            query_id=2,
            name="fraud-screen-central",
            tables=("claims_central", "policies", "customers"),
            business_value=10.0,
            rates=fraud_rates,
        ),
        DSSQuery(
            query_id=3,
            name="exposure-summary",
            tables=(
                "claims_east", "claims_central", "claims_west", "policies",
            ),
            business_value=5.0,
            rates=summary_rates,
        ),
        DSSQuery(
            query_id=4,
            name="adjuster-caseload",
            tables=("adjusters", "claims_west"),
            business_value=2.0,
            rates=DiscountRates(computational=0.05, synchronization=0.05),
        ),
    ]


def main() -> None:
    config = SystemConfig(
        tables=TABLES,
        replicated=REPLICATED,
        sync_mode="periodic",
        sync_mean_interval=15.0,  # replicas refresh every 15 minutes
        rates=DiscountRates(0.05, 0.05),
        # Throughputs sized to these tables: a full cross-branch scan should
        # land in the paper's 2-30 minute near-real-time band.
        cost_params=CostParameters(
            local_throughput=120_000.0, remote_throughput=40_000.0
        ),
        seed=42,
    )
    system = build_system(config, ivqp_router)

    for report in build_reports():
        system.submit(report, at=20.0)
    system.run()

    print("Fraud-desk reports and the routes IVQP chose:")
    for outcome in sorted(system.outcomes, key=lambda o: o.query.query_id):
        plan = outcome.plan
        remote = sorted(plan.remote_tables)
        local = sorted(plan.replica_tables)
        print(f"\n  {outcome.query.name} "
              f"(BV={outcome.query.business_value:g}, "
              f"lambda_SL={plan.rates.synchronization}, "
              f"lambda_CL={plan.rates.computational})")
        print(f"    remote reads : {remote or '-'}")
        print(f"    replica reads: {local or '-'}"
              + ("   [delayed until a scheduled sync]" if plan.delayed else ""))
        print(f"    CL={outcome.computational_latency:.1f} min, "
              f"SL={outcome.synchronization_latency:.1f} min, "
              f"IV={outcome.information_value:.3f} "
              f"of {outcome.query.business_value:g}")

    fresh_hungry = [o for o in system.outcomes
                    if o.plan.rates.synchronization > o.plan.rates.computational]
    assert all(o.plan.remote_tables for o in fresh_hungry), (
        "fraud screens should touch base tables for freshness"
    )
    print("\nFreshness-hungry reports routed to base tables; "
          "latency-hungry ones to replicas — Figure 1's trade-off, live.")

    # Why did IVQP route the central fraud screen the way it did?
    from repro.core import explain_choice

    screen = build_reports()[1]
    comparison = explain_choice(
        screen, system.catalog, system.cost_model,
        screen.rates, submitted_at=20.0,
    )
    print()
    print(comparison.as_table().render())
    print(f"margin over all-remote: "
          f"{comparison.margin_over('all-remote'):+.3f} IV")


if __name__ == "__main__":
    main()
