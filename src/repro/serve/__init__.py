"""The wall-clock serving runtime: live queries over HTTP.

Everything below :mod:`repro.serve` runs the *same* online-MQO machinery
as the simulations — :class:`~repro.mqo.online.OnlineSession` driven
through the :class:`~repro.sim.clocks.Clock` seam — but under real time
and a real network:

* :mod:`repro.serve.service` — :class:`QueryService`: the asyncio event
  loop popping a :class:`~repro.sim.clocks.WallClock`, admitting/shedding
  live submissions, tracing a checker-clean lifecycle with IV ledger
  entries, and recording the arrival trace for deterministic replay;
* :mod:`repro.serve.httpd` — a stdlib-only HTTP/1.1 front end
  (``/submit``, ``/result``, ``/metrics``, ``/status``, ``/shutdown``);
* :mod:`repro.serve.bench` — the concurrent load generator behind
  ``python -m repro serve-bench`` / ``serve-smoke`` and the committed
  ``BENCH_serve.json`` numbers.
"""

from repro.serve.service import ServeConfig, QueryService
from repro.serve.httpd import HTTPServer, http_request

__all__ = ["ServeConfig", "QueryService", "HTTPServer", "http_request"]
